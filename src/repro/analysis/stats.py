"""Campaign statistics (paper §IV-D).

The paper's protocol: a campaign is 100 experiments; its SDC rate is one
random sample; campaigns are run until (1) the sample distribution is
normal or near normal and (2) the t-based margin of error at 95% confidence
is within ±3 percentage points.  These helpers implement that machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps


def margin_of_error(samples, confidence: float = 0.95) -> float:
    """t-based margin of error of the sample mean.

    ``t* · s / sqrt(n)`` with ``s`` the sample standard deviation — the
    "standard t-value based formula where the sample size and the standard
    error of the sample distribution is known" [paper §IV-D, ref 25].
    """
    x = np.asarray(list(samples), dtype=float)
    n = x.size
    if n < 2:
        return math.inf
    s = x.std(ddof=1)
    if s == 0.0:
        return 0.0
    t_star = sps.t.ppf(0.5 + confidence / 2.0, df=n - 1)
    return float(t_star * s / math.sqrt(n))


def confidence_interval(samples, confidence: float = 0.95) -> tuple[float, float]:
    x = np.asarray(list(samples), dtype=float)
    moe = margin_of_error(x, confidence)
    m = float(x.mean())
    return (m - moe, m + moe)


def is_near_normal(samples, alpha: float = 0.05) -> bool:
    """Shapiro-Wilk normality check; degenerate (constant) samples count as
    normal (a zero-variance estimate needs no distributional caveats)."""
    x = np.asarray(list(samples), dtype=float)
    if x.size < 3 or np.allclose(x, x[0]):
        return True
    _w, p = sps.shapiro(x)
    return bool(p > alpha)


@dataclass
class RateEstimate:
    """A rate (e.g. SDC rate) with its campaign-level uncertainty."""

    mean: float
    margin: float
    samples: list[float]
    confidence: float = 0.95

    @property
    def interval(self) -> tuple[float, float]:
        return (self.mean - self.margin, self.mean + self.margin)

    def __str__(self) -> str:
        return f"{100 * self.mean:.1f}% ± {100 * self.margin:.1f}"


def estimate_rate(samples, confidence: float = 0.95) -> RateEstimate:
    x = [float(v) for v in samples]
    mean = float(np.mean(x)) if x else float("nan")
    return RateEstimate(mean, margin_of_error(x, confidence), x, confidence)


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a single pooled proportion — used for the
    micro-benchmark study, which pools experiments rather than campaigns."""
    if trials == 0:
        return (0.0, 1.0)
    z = sps.norm.ppf(0.5 + confidence / 2.0)
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, centre - half), min(1.0, centre + half))
