"""Static instruction-mix analysis for Fig. 10.

The paper plots, per benchmark and ISA, the composition of *scalar* vs
*vector* instructions among the instructions hosting fault sites of each
category (pure-data / control / address).  A vector instruction is one with
at least one vector operand or a vector result (§II-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sites import CATEGORIES, enumerate_module_sites
from ..ir.module import Module


@dataclass
class MixEntry:
    scalar: int = 0
    vector: int = 0

    @property
    def total(self) -> int:
        return self.scalar + self.vector

    @property
    def vector_fraction(self) -> float:
        return self.vector / self.total if self.total else float("nan")


def instruction_mix(
    module: Module, functions: list[str] | None = None
) -> dict[str, MixEntry]:
    """Per-category scalar/vector instruction counts.

    An instruction is counted once per category it hosts sites in (matching
    Fig. 10, where the same static instruction can appear under several
    fault-site categories).
    """
    sites = enumerate_module_sites(module, functions)
    seen: dict[str, set[int]] = {c: set() for c in CATEGORIES}
    mix = {c: MixEntry() for c in CATEGORIES}
    for site in sites:
        for cat in site.categories:
            if id(site.instr) in seen[cat]:
                continue
            seen[cat].add(id(site.instr))
            if site.instr.is_vector_instruction:
                mix[cat].vector += 1
            else:
                mix[cat].scalar += 1
    return mix
