"""Statistics and reporting for fault-injection studies."""

from .instmix import MixEntry, instruction_mix
from .report import pct, render_table
from .stats import (
    RateEstimate,
    confidence_interval,
    estimate_rate,
    is_near_normal,
    margin_of_error,
    wilson_interval,
)

__all__ = [
    "MixEntry",
    "instruction_mix",
    "pct",
    "render_table",
    "RateEstimate",
    "confidence_interval",
    "estimate_rate",
    "is_near_normal",
    "margin_of_error",
    "wilson_interval",
]
