"""ASCII table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None
) -> str:
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(r) for r in str_rows)
    return "\n".join(parts)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def pct(x: float) -> str:
    """Render a fraction as a percentage string."""
    if x != x:  # NaN
        return "-"
    return f"{100 * x:.1f}%"
