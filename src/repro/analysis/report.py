"""ASCII table rendering for experiment reports, and report *rebuilds*:
regenerating any stored experiment's tables purely from a campaign store,
without executing a single injection (see :func:`rebuild_report`)."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None
) -> str:
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(r) for r in str_rows)
    return "\n".join(parts)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def pct(x: float) -> str:
    """Render a fraction as a percentage string."""
    if x != x:  # NaN
        return "-"
    return f"{100 * x:.1f}%"


# -- rebuilding reports from a campaign store ----------------------------------


def rebuild_report(store, name: str):
    """Regenerate experiment ``name``'s report purely from ``store``.

    No experiment executes: campaign rows are re-aggregated from the
    journaled injection records (bit-exact, so the rows equal a live run's),
    and memoized cells replay verbatim.  Manifests iterate in recording
    order, which is the drivers' cell order, so row order matches too.
    Incomplete campaign cells are skipped with a note — ``resume`` them
    first for the full table.
    """
    from ..experiments.common import ExperimentReport

    builders = {
        "fig11": _rebuild_fig11,
        "fig12": _rebuild_fig12,
        "vecdiff": _rebuild_vecdiff,
    }
    builder = builders.get(name, _rebuild_cells)
    rows, notes, scales = builder(store, name)
    report = ExperimentReport(
        name=name,
        scale="/".join(sorted(scales)) or "custom",
        headers=_driver_headers(name),
        rows=rows,
    )
    report.notes.append(f"rebuilt from {store.root} without executing experiments")
    report.notes.extend(notes)
    return report


def _driver_headers(name: str) -> list[str]:
    import importlib

    driver = importlib.import_module(f"repro.experiments.{name}")
    return list(getattr(driver, "HEADERS"))


def _campaign_records(store, manifest, notes):
    """A completed manifest's decoded results in schedule order, else None."""
    records = store.experiments_for(manifest["campaign_key"])
    cell = "/".join(str(v) for v in manifest["cell"].values())
    if not manifest["completed"]:
        notes.append(
            f"skipped incomplete cell {cell} ({len(records)} of "
            f"{manifest['planned']} planned experiments stored) — resume to finish"
        )
        return None
    if len(records) != manifest["executed"] or any(
        r["seq"] != i for i, r in enumerate(records)
    ):
        notes.append(
            f"skipped cell {cell}: stored records do not cover the executed "
            f"schedule ({len(records)} records, {manifest['executed']} executed)"
        )
        return None
    from ..store.records import decode_result

    return [decode_result(r["result"]) for r in records]


def _rebuild_fig11(store, name: str):
    from ..analysis.stats import estimate_rate
    from ..core.campaign import CampaignStats

    rows, notes, scales = [], [], set()
    for manifest in store.manifests("fig11"):
        results = _campaign_records(store, manifest, notes)
        if results is None:
            continue
        scales.add(manifest["scale"])
        per = manifest["config"]["experiments_per_campaign"]
        campaigns = []
        for start in range(0, len(results), per):
            stats = CampaignStats()
            for result in results[start : start + per]:
                stats.add(result)
            campaigns.append(stats)
        totals = CampaignStats()
        for c in campaigns:
            totals.merge(c)
        sdc_estimate = estimate_rate(
            [c.rate("sdc") for c in campaigns], manifest["config"]["confidence"]
        )
        rows.append(
            {
                "benchmark": manifest["cell"]["benchmark"],
                "target": manifest["cell"]["target"],
                "category": manifest["cell"]["category"],
                "experiments": totals.total,
                "campaigns": len(campaigns),
                "sdc": totals.rate("sdc"),
                "benign": totals.rate("benign"),
                "crash": totals.rate("crash"),
                "sdc_moe": sdc_estimate.margin,
                "converged": manifest["converged"],
                "crash_kinds": dict(totals.crash_kinds),
                "static_sites": manifest["extras"].get("static_sites"),
            }
        )
    return rows, notes, scales


def _rebuild_vecdiff(store, name: str):
    """vecdiff rows re-aggregate exactly like fig11's, plus the cell's
    kernel/form coordinates (older manifests without them fall back to
    parsing the form workload's name)."""
    from ..analysis.stats import estimate_rate
    from ..core.campaign import CampaignStats

    rows, notes, scales = [], [], set()
    for manifest in store.manifests("vecdiff"):
        results = _campaign_records(store, manifest, notes)
        if results is None:
            continue
        scales.add(manifest["scale"])
        per = manifest["config"]["experiments_per_campaign"]
        campaigns = []
        for start in range(0, len(results), per):
            stats = CampaignStats()
            for result in results[start : start + per]:
                stats.add(result)
            campaigns.append(stats)
        totals = CampaignStats()
        for c in campaigns:
            totals.merge(c)
        sdc_estimate = estimate_rate(
            [c.rate("sdc") for c in campaigns], manifest["config"]["confidence"]
        )
        cell = manifest["cell"]
        name_ = cell["benchmark"]
        form = cell.get("form") or ("auto" if name_.endswith("-auto") else "handvec")
        kernel = cell.get("kernel") or name_.removesuffix("-auto")
        rows.append(
            {
                "benchmark": name_,
                "kernel": kernel,
                "form": form,
                "target": cell["target"],
                "category": cell["category"],
                "experiments": totals.total,
                "campaigns": len(campaigns),
                "sdc": totals.rate("sdc"),
                "benign": totals.rate("benign"),
                "crash": totals.rate("crash"),
                "sdc_moe": sdc_estimate.margin,
                "converged": manifest["converged"],
                "crash_kinds": dict(totals.crash_kinds),
                "static_sites": manifest["extras"].get("static_sites"),
            }
        )
    return rows, notes, scales


def _rebuild_fig12(store, name: str):
    from ..core.campaign import CampaignStats
    from ..experiments.fig12 import PAPER_FIG12

    rows, notes, scales = [], [], set()
    for manifest in store.manifests("fig12"):
        results = _campaign_records(store, manifest, notes)
        if results is None:
            continue
        scales.add(manifest["scale"])
        stats = CampaignStats()
        for result in results:
            stats.add(result)
        benchmark = manifest["cell"]["benchmark"]
        category = manifest["cell"]["category"]
        paper = PAPER_FIG12.get((benchmark, category))
        rows.append(
            {
                "benchmark": benchmark,
                "category": category,
                "experiments": stats.total,
                "sdc": stats.rate("sdc"),
                "crash": stats.rate("crash"),
                "detection_rate": stats.sdc_detection_rate,
                "detected_sdc": stats.detected_sdc,
                "paper_sdc": paper[0] if paper else None,
                "paper_detection": paper[1] if paper else None,
                "overhead": manifest["extras"].get("overhead"),
                "paper_overhead": manifest["extras"].get("paper_overhead"),
            }
        )
    return rows, notes, scales


def _rebuild_cells(store, name: str):
    rows, scales = [], set()
    for cell in store.cells(name):
        rows.extend(cell["rows"])
        scales.add(cell["scale"])
    return rows, [], scales
