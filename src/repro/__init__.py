"""repro: reproduction of "Towards Resiliency Evaluation of Vector Programs".

Public entry points:

* :mod:`repro.ir`        — vector-aware LLVM-like SSA IR
* :mod:`repro.vm`        — bit-accurate IR interpreter (the simulated CPU)
* :mod:`repro.passes`    — mid-end passes (mem2reg, DCE, const-fold, simplifycfg)
* :mod:`repro.frontend`  — MiniISPC SPMD compiler (AVX/SSE targets)
* :mod:`repro.core`      — VULFI: the vector-oriented fault injector
* :mod:`repro.detectors` — compiler-invariant error detectors
* :mod:`repro.workloads` — the paper's nine benchmarks + micro-benchmarks
* :mod:`repro.analysis`  — campaign statistics and report rendering
* :mod:`repro.experiments` — regeneration drivers for Table I, Figs 10-12
"""

__version__ = "1.0.0"
