"""The service's wire vocabulary: submissions, status rows, SSE events.

One schema serves three consumers — the daemon's HTTP endpoints, the SSE
progress stream, and the CLI's ``--json`` output for ``status``/``report``
— so external tooling can consume a live stream and an offline store dump
interchangeably.

A *submission* names one campaign cell by content, never by location:
workload (registry name), target ISA, site category, engine, scale (or an
explicit config), and seed.  The daemon derives the campaign's
content-address — the same :func:`repro.store.keys.campaign_identity`
digest the store files experiments under — so identical submissions from
different tenants collapse onto one campaign, and a submission whose
campaign is already journaled is served from the store without executing
anything.  That cross-tenant sharing is sound *because* the key is a
content hash: two tenants naming the same (module IR, engine, category,
step limit, masks, seed, config) are asking for the same deterministic
experiment stream, bit for bit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..core.campaign import CampaignConfig, CampaignStats
from ..core.injector import ENGINES
from ..core.parallel import EngineSpec
from ..errors import ReproError

#: Step budget for service campaigns — the fig11 driver's value, so a
#: submission's campaign key matches the cell a CLI ``fig11 --store`` run
#: would record (warm store hits across the two entry points).
STEP_LIMIT = 2_000_000

PRIORITY_MIN, PRIORITY_MAX = 1, 16

#: Experiment label service campaigns are manifested under.  Submissions
#: are fig11-shaped cells (benchmark x target x category campaigns to
#: convergence), so they reuse fig11's report builder and seeds.
EXPERIMENT = "fig11"


class BadSubmission(ReproError):
    """A submission payload that cannot be turned into a campaign."""


@dataclass(frozen=True)
class Submission:
    """One validated campaign submission."""

    workload: str
    target: str
    category: str
    engine: str
    scale: str
    seed: int
    tenant: str
    priority: int
    config: dict  # asdict(CampaignConfig) — part of the campaign identity

    @property
    def cell(self) -> dict:
        return {
            "benchmark": self.workload,
            "target": self.target,
            "category": self.category,
        }


def default_seed(workload: str, target: str, category: str) -> int:
    """The fig11 driver's seed for this cell (CLI/service parity)."""
    from ..experiments.common import cell_seed

    return cell_seed(EXPERIMENT, workload, target, category)


def normalize_submission(payload: dict) -> Submission:
    """Validate a raw JSON payload into a :class:`Submission`.

    Raises :class:`BadSubmission` with a message safe to return to the
    client; never touches the filesystem beyond the (cached) workload
    registry.
    """
    from ..experiments.common import CATEGORIES, SCALES, TARGETS
    from ..workloads.registry import all_workloads

    if not isinstance(payload, dict):
        raise BadSubmission("submission must be a JSON object")
    known = {
        "workload", "benchmark", "target", "category", "engine", "scale",
        "seed", "tenant", "priority",
    }
    unknown = set(payload) - known
    if unknown:
        raise BadSubmission(f"unknown submission fields: {sorted(unknown)}")

    workload = payload.get("workload", payload.get("benchmark"))
    names = {w.name for w in all_workloads()}
    if workload not in names:
        raise BadSubmission(
            f"unknown workload {workload!r}; available: {sorted(names)}"
        )
    target = payload.get("target", "avx")
    if target not in TARGETS:
        raise BadSubmission(f"target must be one of {TARGETS}, got {target!r}")
    category = payload.get("category", "pure-data")
    if category not in CATEGORIES:
        raise BadSubmission(
            f"category must be one of {CATEGORIES}, got {category!r}"
        )
    engine = payload.get("engine", "direct")
    if engine not in ENGINES:
        raise BadSubmission(f"engine must be one of {ENGINES}, got {engine!r}")
    scale = payload.get("scale", "smoke")
    if scale not in SCALES:
        raise BadSubmission(
            f"scale must be one of {tuple(SCALES)}, got {scale!r}"
        )
    seed = payload.get("seed")
    if seed is None:
        seed = default_seed(workload, target, category)
    elif not isinstance(seed, int) or isinstance(seed, bool):
        raise BadSubmission(f"seed must be an integer, got {seed!r}")
    tenant = payload.get("tenant", "anonymous")
    if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
        raise BadSubmission("tenant must be a non-empty string (<= 64 chars)")
    priority = payload.get("priority", 1)
    if (
        not isinstance(priority, int)
        or isinstance(priority, bool)
        or not PRIORITY_MIN <= priority <= PRIORITY_MAX
    ):
        raise BadSubmission(
            f"priority must be an integer in "
            f"[{PRIORITY_MIN}, {PRIORITY_MAX}], got {priority!r}"
        )
    return Submission(
        workload=workload,
        target=target,
        category=category,
        engine=engine,
        scale=scale,
        seed=seed,
        tenant=tenant,
        priority=priority,
        config=asdict(SCALES[scale]),
    )


def spec_of(sub: Submission) -> EngineSpec:
    """The by-name engine recipe workers (and the parent cache) key on."""
    return EngineSpec(
        workload=sub.workload,
        target=sub.target,
        category=sub.category,
        engine=sub.engine,
        step_limit=STEP_LIMIT,
    )


def config_of(sub: Submission) -> CampaignConfig:
    return CampaignConfig(**sub.config)


def campaign_key_for(sub: Submission) -> str:
    """The submission's content address — identical to the store's.

    Composed without building an injector: the module fingerprint comes
    from the (cached) compiled workload, everything else from the
    submission itself.  Matches ``digest(campaign_identity(...))`` for the
    injector the runner will eventually build.
    """
    from ..store.keys import digest, module_fingerprint
    from ..workloads.registry import get_workload

    module = get_workload(sub.workload).compile(sub.target)
    identity = {
        "module": module_fingerprint(module),
        "engine": sub.engine,
        "category": sub.category,
        "step_limit": STEP_LIMIT,
        "respect_masks": True,
        "seed": sub.seed,
        "config": sub.config,
    }
    return digest(identity)


def build_manifest(sub: Submission, campaign_key: str) -> dict:
    """The accept-time campaign manifest for a submission.

    Field-identical to what :meth:`CampaignStore.recorder` would write
    when the campaign starts (minus run-time extras like ``static_sites``,
    which fold in later via the store's extras merge), so the daemon can
    land — and fsync — the manifest *before* acknowledging the submission:
    an accepted campaign survives ``kill -9`` even if it never started.
    """
    from ..store.keys import module_fingerprint
    from ..workloads.registry import (
        REGISTRY_VERSION,
        get_workload,
        registry_fingerprint,
    )

    module = get_workload(sub.workload).compile(sub.target)
    config = config_of(sub)
    return {
        "kind": "campaign",
        "campaign_key": campaign_key,
        "experiment": EXPERIMENT,
        "cell": sub.cell,
        "scale": sub.scale,
        "module": module_fingerprint(module),
        "engine": sub.engine,
        "category": sub.category,
        "step_limit": STEP_LIMIT,
        "respect_masks": True,
        "seed": sub.seed,
        "config": sub.config,
        "registry_version": REGISTRY_VERSION,
        "registry_fingerprint": registry_fingerprint(),
        "planned": config.max_campaigns * config.experiments_per_campaign,
        "extras": {"tenant": sub.tenant, "priority": sub.priority},
        "completed": False,
        "executed": None,
        "converged": None,
    }


def submission_from_manifest(manifest: dict) -> Submission | None:
    """Reconstruct a submission from a stored manifest (crash recovery).

    Returns ``None`` for manifests the service cannot re-run (non-fig11
    experiments, or cells missing the fig11 coordinates).
    """
    if manifest.get("experiment") != EXPERIMENT:
        return None
    cell = manifest.get("cell", {})
    if not {"benchmark", "target", "category"} <= set(cell):
        return None
    extras = manifest.get("extras", {})
    return Submission(
        workload=cell["benchmark"],
        target=cell["target"],
        category=cell["category"],
        engine=manifest["engine"],
        scale=manifest["scale"],
        seed=manifest["seed"],
        tenant=extras.get("tenant", "recovery"),
        priority=extras.get("priority", 1),
        config=dict(manifest["config"]),
    )


# -- status rows (shared by `status --json`, /v1/status, and SSE) --------------


def totals_dict(stats: CampaignStats) -> dict:
    """Outcome totals in the one shape every consumer reads."""
    return {
        "sdc": stats.sdc,
        "benign": stats.benign,
        "crash": stats.crash,
        "detected": stats.detected_total,
        "total": stats.total,
    }


def campaign_row(store, manifest: dict, live: dict | None = None) -> dict:
    """One campaign cell's machine-readable status row.

    Aggregates outcome totals from the journaled records (bit-exact — the
    store holds the full result stream), so an offline ``status --json``
    reports exactly what the SSE stream's final event carried.  ``live``
    (the daemon's in-memory view: state, hit/miss counters) overlays the
    store-derived fields when present.
    """
    from ..store.records import decode_result

    key = manifest["campaign_key"]
    records = store.experiments_for(key)
    stats = CampaignStats()
    for record in records:
        stats.add(decode_result(record["result"]))
    if manifest["completed"]:
        state = "complete"
    elif records:
        state = "partial"
    else:
        state = "pending"
    row = {
        "campaign": key,
        "experiment": manifest["experiment"],
        "cell": dict(manifest["cell"]),
        "scale": manifest["scale"],
        "engine": manifest["engine"],
        "seed": manifest["seed"],
        "state": state,
        "done": len(records),
        "planned": manifest["planned"],
        "executed": manifest["executed"],
        "converged": manifest["converged"],
        "totals": totals_dict(stats),
        "tenant": manifest.get("extras", {}).get("tenant"),
        "priority": manifest.get("extras", {}).get("priority"),
    }
    if live:
        row.update(live)
    return row


def status_payload(store, live_states: dict | None = None) -> dict:
    """The whole store as status rows — `status --json` and /v1/status."""
    live_states = live_states or {}
    rows = [
        campaign_row(store, manifest, live_states.get(manifest["campaign_key"]))
        for manifest in store.manifests()
    ]
    cells = store.cells()
    return {
        "store": str(store.root),
        "schema": SCHEMA_VERSION,
        "campaigns": rows,
        "memoized_cells": len(cells),
    }


#: Bumped when the row/event shapes change incompatibly; clients check it.
SCHEMA_VERSION = 1
