"""The service load generator: N concurrent clients x M campaigns each.

Measures the three numbers the campaign service exists to improve and
that ``benchmarks/test_perf_campaign.py`` floors:

* **warm campaigns/sec** — distinct micro-workload campaigns completed
  per second through one warm daemon (shared forked pool, warm parent
  engines, primed golden caches);
* **cold campaigns/sec** — the same campaigns run the pre-service way:
  one fresh CLI process per campaign (``submit --local`` in a pristine
  store), at the same client concurrency.  Every run pays interpreter
  start-up, module compilation, and golden-cache misses from zero — the
  costs the daemon amortises;
* **p99 submission-to-first-result** — wall time from POSTing a
  submission to the first SSE progress event carrying a result.

Campaigns are distinct (unique seeds), so nothing is served from the
memoization cache — the warm numbers measure warm *execution*, not
cache hits.  A non-measured warm-up round builds each spec's engine
first, so the timed phase sees the steady state a long-running daemon
lives in.
"""

from __future__ import annotations

import statistics
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from .client import ServiceClient
from .server import CampaignService

#: Micro workloads: tiny vectors, instant campaigns — the bench measures
#: service overhead and warm-engine reuse, not injection throughput.
MICRO_WORKLOADS = ("vcopy", "dot_product", "vector_sum")


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _submissions(clients: int, per_client: int, scale: str) -> list[list[dict]]:
    """Each client's distinct submissions (unique seeds; cycled specs)."""
    plans = []
    for c in range(clients):
        plan = []
        for m in range(per_client):
            i = c * per_client + m
            plan.append(
                {
                    "workload": MICRO_WORKLOADS[i % len(MICRO_WORKLOADS)],
                    "category": "pure-data",
                    "engine": "direct",
                    "scale": scale,
                    "seed": 77_000 + i,
                }
            )
        plans.append(plan)
    return plans


def _run_cold(submissions: list[dict], clients: int, root: Path) -> dict:
    """The baseline: every campaign in its own fresh CLI process + store."""
    src = str(Path(__file__).resolve().parents[2])

    def one(i_sub):
        i, sub = i_sub
        store = root / f"cold{i}"
        t0 = time.monotonic()
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments", "submit", "--local",
                "--workload", sub["workload"],
                "--category", sub["category"],
                "--seed", str(sub["seed"]),
                "--scale", sub["scale"],
                "--store", str(store),
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        if proc.returncode != 0:
            raise RuntimeError(f"cold run failed: {proc.stderr[-500:]}")
        return time.monotonic() - t0

    t0 = time.monotonic()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        latencies = list(pool.map(one, enumerate(submissions)))
    elapsed = time.monotonic() - t0
    return {
        "campaigns": len(submissions),
        "elapsed_s": elapsed,
        "campaigns_per_sec": len(submissions) / elapsed,
        "mean_latency_s": statistics.fmean(latencies),
    }


def service_bench(
    clients: int = 8,
    campaigns_per_client: int = 4,
    scale: str = "smoke",
    jobs: int = 0,
    cold_sample: int | None = None,
    max_concurrent: int = 8,
) -> dict:
    """Run the full warm-vs-cold load test; returns the results dict.

    ``jobs=0`` (default) runs daemon campaigns serially on their runner
    threads — for micro workloads the forked pool's IPC costs more than
    the experiments, and the bench's contract is about service overhead.
    ``cold_sample`` bounds how many cold CLI runs the baseline pays for
    (default: one per client); the cold rate extrapolates per campaign.
    """
    plans = _submissions(clients, campaigns_per_client, scale)
    flat = [sub for plan in plans for sub in plan]
    with tempfile.TemporaryDirectory(prefix="service-bench-") as tmp:
        root = Path(tmp)

        # -- cold baseline: fresh process + fresh store per campaign -----------
        sample = flat[: (cold_sample or clients)]
        cold = _run_cold(sample, clients, root)

        # -- warm service ------------------------------------------------------
        service = CampaignService(
            root / "store",
            port=0,
            jobs=jobs,
            max_concurrent=max_concurrent,
            max_pending=max(256, len(flat) + clients),
            durable=True,
        )
        thread = threading.Thread(
            target=service.serve_forever, kwargs={"quiet": True}, daemon=True
        )
        thread.start()
        if not service.ready.wait(timeout=30):
            raise RuntimeError("campaign service failed to start")
        try:
            warmup_client = ServiceClient(
                port=service.port, tenant="warmup", timeout=120
            )
            warmup_client.wait_ready()

            # Warm-up, not timed: one concurrent campaign per client slot,
            # cycling the specs — builds enough parent engines that the
            # timed phase's concurrent campaigns all find a warm one.
            def warm_one(i: int):
                warmup_client.run(
                    workload=MICRO_WORKLOADS[i % len(MICRO_WORKLOADS)],
                    category="pure-data", scale=scale, seed=76_000 + i,
                )

            with ThreadPoolExecutor(max_workers=clients) as pool:
                list(pool.map(warm_one, range(clients)))

            first_result: list[float] = []
            lock = threading.Lock()

            def client_run(index: int) -> int:
                client = ServiceClient(
                    port=service.port, tenant=f"client{index}", timeout=120
                )
                done = 0
                for sub in plans[index]:
                    outcome = client.run(**sub)
                    with lock:
                        first_result.append(outcome["first_result_latency"])
                    done += 1
                return done

            t0 = time.monotonic()
            with ThreadPoolExecutor(max_workers=clients) as pool:
                completed = sum(pool.map(client_run, range(clients)))
            warm_elapsed = time.monotonic() - t0
            engine_stats = service.engines.stats()
        finally:
            service.request_stop()
            thread.join(timeout=30)

    warm_rate = completed / warm_elapsed
    return {
        "clients": clients,
        "campaigns_per_client": campaigns_per_client,
        "scale": scale,
        "pool_jobs": jobs,
        "warm": {
            "campaigns": completed,
            "elapsed_s": warm_elapsed,
            "campaigns_per_sec": warm_rate,
            "p50_first_result_s": _percentile(first_result, 0.50),
            "p99_first_result_s": _percentile(first_result, 0.99),
            "engine_builds": engine_stats["builds"],
            "engine_reuses": engine_stats["reuses"],
        },
        "cold": cold,
        "warm_vs_cold_speedup": warm_rate / cold["campaigns_per_sec"],
    }
