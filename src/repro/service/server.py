"""The campaign daemon: an asyncio HTTP/JSON front end over one store.

Pure stdlib — a hand-rolled HTTP/1.1 server on ``asyncio.start_server``
(one request per connection; SSE responses stream until the campaign
finishes).  The moving parts:

* **accept path** (event loop): validate the submission, derive its
  content key, dedupe against running jobs and the store (a completed
  campaign is served without executing — cross-tenant memoization),
  reserve a scheduler slot (429 on backpressure), land the manifest
  durably (fsync), *then* acknowledge with 202.  The ack therefore
  promises durability: kill the daemon at any later instant and a restart
  re-discovers the campaign from its manifest and resumes it through the
  store's claim/replay/record protocol to a byte-identical journal.
* **dispatcher** (one asyncio task): pops the weighted-fair scheduler and
  runs campaigns on executor threads, at most ``max_concurrent`` at once.
  All campaigns share one :class:`ServicePool` of forked workers (created
  before any thread starts, while the process is still single-threaded)
  and one :class:`EngineCache` of warm parent engines.
* **event fan-out**: runner threads emit progress through
  ``loop.call_soon_threadsafe``; each job keeps an append-only event list
  plus a swap-on-publish :class:`asyncio.Event`, so any number of SSE
  readers tail it from any offset without coordination.

Endpoints (all JSON unless noted)::

    GET  /v1/health                    liveness + pool/cache/scheduler stats
    POST /v1/campaigns                 submit; 202 accepted / 200 cached /
                                       400 invalid / 429 backpressure
    GET  /v1/campaigns                 status rows for every stored campaign
    GET  /v1/campaigns/<key>           one campaign's status row
    GET  /v1/campaigns/<key>/events    SSE progress stream (snapshot first)
    GET  /v1/status                    alias of GET /v1/campaigns
    GET  /v1/report?name=fig11         report rebuilt from the journal;
                                       format=json (default) or text
"""

from __future__ import annotations

import asyncio
import json
import threading

from ..core.parallel import ServicePool
from ..store import CampaignStore
from .protocol import (
    BadSubmission,
    SCHEMA_VERSION,
    Submission,
    build_manifest,
    campaign_key_for,
    campaign_row,
    normalize_submission,
    status_payload,
    submission_from_manifest,
)
from .scheduler import Backpressure, FairScheduler
from .workers import EngineCache, execute_submission

MAX_BODY = 1 << 20


class _Job:
    """One accepted submission's in-daemon lifecycle."""

    __slots__ = ("submission", "key", "state", "events", "update", "error")

    def __init__(self, submission: Submission, key: str):
        self.submission = submission
        self.key = key
        self.state = "queued"  # queued | running | complete | failed
        self.events: list[dict] = []
        self.update = asyncio.Event()
        self.error: str | None = None

    @property
    def finished(self) -> bool:
        return self.state in ("complete", "failed")

    def live_row(self) -> dict | None:
        """In-flight status overlay, reconstructed from the event tail."""
        if self.finished:
            return None
        row = {"state": self.state}
        for event in reversed(self.events):
            if event.get("event") == "progress":
                row.update(
                    done=event["done"], hits=event["hits"],
                    misses=event["misses"], totals=event["totals"],
                )
                break
        return row


class CampaignService:
    """The long-running multi-tenant campaign daemon.

    ``serve_forever`` is the blocking entry point (the ``serve`` CLI
    verb); tests drive the async pieces directly via ``start``/``stop``
    inside their own event loop.
    """

    def __init__(
        self,
        store_root,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 0,
        max_concurrent: int = 4,
        max_pending: int = 256,
        durable: bool = True,
        resume: bool = True,
        progress_every: int = 1,
    ):
        self.store = CampaignStore(store_root, durable=durable)
        self.host, self.port = host, port
        # The forked pool MUST exist before any thread starts: forking a
        # multi-threaded process can inherit held locks.  jobs=0 runs
        # campaigns serially on their runner thread (still concurrent
        # across campaigns) — the right mode for micro workloads where
        # fork+IPC costs more than the experiments.
        self.pool = ServicePool(jobs) if jobs > 0 else None
        self.engines = EngineCache()
        self.scheduler = FairScheduler(max_pending=max_pending)
        self.max_concurrent = max(1, max_concurrent)
        self.resume_on_start = resume
        self.progress_every = progress_every
        self.jobs: dict[str, _Job] = {}
        self._work = None  # asyncio.Event, created on start
        self._server = None
        self._loop = None
        self._dispatcher = None
        self._runners: set = set()
        self._stopping = False
        self._stopped = None  # asyncio.Event; set by request_stop()
        self.ready = threading.Event()  # set once the port is bound

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        if self.resume_on_start:
            self._resume_incomplete()
        self.ready.set()

    async def stop(self) -> None:
        self._stopping = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._runners):
            try:
                await task
            except Exception:
                pass
        self.store.flush()
        if self.pool is not None:
            self.pool.close()

    def serve_forever(self, quiet: bool = False) -> None:
        async def _main():
            await self.start()
            if not quiet:
                print(
                    f"campaign service on http://{self.host}:{self.port} "
                    f"(store: {self.store.root})",
                    flush=True,
                )
            try:
                await self._stopped.wait()
            finally:
                await self.stop()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass

    def request_stop(self) -> None:
        """Ask a ``serve_forever`` loop (any thread) to shut down cleanly."""
        if self._loop is not None and self._stopped is not None:
            self._loop.call_soon_threadsafe(self._stopped.set)

    def _resume_incomplete(self) -> None:
        """Re-enqueue every manifested-but-incomplete campaign (crash
        recovery: the accept-time manifest is the durable submission)."""
        for manifest in self.store.manifests():
            if manifest["completed"]:
                continue
            sub = submission_from_manifest(manifest)
            if sub is None:
                continue
            try:
                self._accept(sub, manifest["campaign_key"], manifested=True)
            except Backpressure:
                break  # remaining ones stay manifested; next restart retries

    # -- accept / dispatch -----------------------------------------------------

    def _accept(
        self, sub: Submission, key: str, manifested: bool = False
    ) -> _Job:
        """Reserve, manifest, enqueue.  Caller handles Backpressure."""
        job = _Job(sub, key)
        self.scheduler.push(sub.tenant, sub.priority, key)
        self.jobs[key] = job
        if not manifested:
            # Durable ack: the manifest (fsynced — the store's manifests
            # journal flushes every append) IS the accepted submission.
            self.store.add_manifest(build_manifest(sub, key))
        self._publish(key, {"event": "accepted", "campaign": key})
        self._work.set()
        return job

    async def _dispatch_loop(self) -> None:
        slots = asyncio.Semaphore(self.max_concurrent)
        while True:
            await self._work.wait()
            popped = self.scheduler.pop()
            if popped is None:
                self._work.clear()
                continue
            _, key = popped
            await slots.acquire()
            task = asyncio.ensure_future(self._run_job(self.jobs[key]))
            self._runners.add(task)
            task.add_done_callback(
                lambda t: (slots.release(), self._runners.discard(t))
            )

    async def _run_job(self, job: _Job) -> None:
        job.state = "running"
        self._publish(job.key, {"event": "started", "campaign": job.key})
        loop = asyncio.get_running_loop()

        def emit(event: dict) -> None:
            loop.call_soon_threadsafe(self._publish, job.key, event)

        def run():
            return execute_submission(
                self.store, job.submission, self.pool, self.engines, emit,
                progress_every=self.progress_every,
            )

        try:
            await loop.run_in_executor(None, run)
        except Exception as exc:  # surfaced to SSE readers, not the console
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            self._publish(
                job.key,
                {"event": "failed", "campaign": job.key, "error": job.error},
            )
        else:
            job.state = "complete"
            # The StreamingRecorder's finish() already emitted the final
            # "complete" event with totals; nothing more to add here.

    def _publish(self, key: str, event: dict) -> None:
        job = self.jobs.get(key)
        if job is None:
            return
        job.events.append(event)
        if event.get("event") in ("complete", "failed"):
            job.state = (
                "failed" if event["event"] == "failed" else "complete"
            )
        waiters, job.update = job.update, asyncio.Event()
        waiters.set()

    def _live_states(self) -> dict:
        out = {}
        for key, job in self.jobs.items():
            row = job.live_row()
            if row is not None:
                out[key] = row
        return out

    # -- HTTP ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            method, path, query, body = await _read_request(reader)
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            writer.close()
            return
        try:
            await self._route(method, path, query, body, writer)
        except ConnectionError:
            pass
        except Exception as exc:
            try:
                await _respond_json(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _route(self, method, path, query, body, writer) -> None:
        parts = [p for p in path.split("/") if p]
        if parts[:1] != ["v1"]:
            return await _respond_json(writer, 404, {"error": "not found"})
        rest = parts[1:]
        if method == "GET" and rest == ["health"]:
            return await _respond_json(writer, 200, self._health())
        if method == "POST" and rest == ["campaigns"]:
            return await self._handle_submit(body, writer)
        if method == "GET" and rest in (["campaigns"], ["status"]):
            payload = status_payload(self.store, self._live_states())
            payload["tenants"] = self.scheduler.snapshot()
            return await _respond_json(writer, 200, payload)
        if method == "GET" and len(rest) == 2 and rest[0] == "campaigns":
            return await self._handle_campaign(rest[1], writer)
        if (
            method == "GET"
            and len(rest) == 3
            and rest[0] == "campaigns"
            and rest[2] == "events"
        ):
            return await self._handle_events(rest[1], writer)
        if method == "GET" and rest == ["report"]:
            return await self._handle_report(query, writer)
        return await _respond_json(writer, 404, {"error": "not found"})

    def _health(self) -> dict:
        return {
            "ok": True,
            "schema": SCHEMA_VERSION,
            "store": str(self.store.root),
            "pool_jobs": self.pool.jobs if self.pool is not None else 0,
            "engines": self.engines.stats(),
            "tenants": self.scheduler.snapshot(),
            "pending": len(self.scheduler),
            "jobs": {
                state: sum(1 for j in self.jobs.values() if j.state == state)
                for state in ("queued", "running", "complete", "failed")
            },
        }

    async def _handle_submit(self, body: bytes, writer) -> None:
        try:
            payload = json.loads(body or b"{}")
            sub = normalize_submission(payload)
        except (json.JSONDecodeError, BadSubmission) as exc:
            return await _respond_json(writer, 400, {"error": str(exc)})
        key = campaign_key_for(sub)
        manifest = next(
            (
                m
                for m in self.store.manifests()
                if m["campaign_key"] == key and m["completed"]
            ),
            None,
        )
        if manifest is not None:
            # Memoized across tenants: the campaign is content-addressed,
            # so whoever ran it first ran *this* submission, bit for bit.
            return await _respond_json(
                writer, 200,
                {"campaign": key, "state": "complete", "cached": True,
                 "row": campaign_row(self.store, manifest)},
            )
        existing = self.jobs.get(key)
        if existing is not None and not existing.finished:
            return await _respond_json(
                writer, 202,
                {"campaign": key, "state": existing.state, "cached": False,
                 "deduplicated": True},
            )
        try:
            job = self._accept(sub, key)
        except Backpressure as exc:
            return await _respond_json(
                writer, 429, {"error": str(exc), "retry_after": 1}
            )
        return await _respond_json(
            writer, 202,
            {"campaign": key, "state": job.state, "cached": False,
             "events": f"/v1/campaigns/{key}/events"},
        )

    async def _handle_campaign(self, key: str, writer) -> None:
        manifest = next(
            (m for m in self.store.manifests() if m["campaign_key"] == key),
            None,
        )
        if manifest is None:
            return await _respond_json(
                writer, 404, {"error": f"unknown campaign {key!r}"}
            )
        live = self._live_states().get(key)
        return await _respond_json(
            writer, 200, campaign_row(self.store, manifest, live)
        )

    async def _handle_events(self, key: str, writer) -> None:
        job = self.jobs.get(key)
        if job is None:
            manifest = next(
                (m for m in self.store.manifests() if m["campaign_key"] == key),
                None,
            )
            if manifest is None:
                return await _respond_json(
                    writer, 404, {"error": f"unknown campaign {key!r}"}
                )
            # Finished before this daemon instance (or served from cache):
            # a single snapshot event, then EOF.
            await _start_sse(writer)
            await _send_sse(
                writer, "snapshot", campaign_row(self.store, manifest)
            )
            return
        await _start_sse(writer)
        manifest = next(
            (m for m in self.store.manifests() if m["campaign_key"] == key),
            None,
        )
        if manifest is not None:
            await _send_sse(
                writer, "snapshot",
                campaign_row(self.store, manifest, self._live_states().get(key)),
            )
        cursor = 0
        while True:
            while cursor < len(job.events):
                event = job.events[cursor]
                cursor += 1
                await _send_sse(writer, event.get("event", "progress"), event)
            if job.finished and cursor >= len(job.events):
                return
            update = job.update
            await update.wait()

    async def _handle_report(self, query: dict, writer) -> None:
        from ..analysis.report import rebuild_report

        name = query.get("name", ["fig11"])[0]
        fmt = query.get("format", ["json"])[0]
        names = self.store.stored_experiments()
        if name not in names:
            return await _respond_json(
                writer, 404,
                {"error": f"no {name!r} in store; stored: {names}"},
            )
        report = rebuild_report(self.store, name)
        if fmt == "text":
            from ..experiments import EXPERIMENTS

            text = EXPERIMENTS[name].render(report)
            return await _respond(
                writer, 200, text.encode() + b"\n", "text/plain; charset=utf-8"
            )
        return await _respond(
            writer, 200, report.to_json().encode() + b"\n", "application/json"
        )


# -- minimal HTTP plumbing -----------------------------------------------------


async def _read_request(reader):
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    method, target, _ = lines[0].split(" ", 2)
    headers = {}
    for line in lines[1:]:
        if ":" in line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    path, _, raw_query = target.partition("?")
    query: dict[str, list[str]] = {}
    if raw_query:
        from urllib.parse import parse_qs

        query = parse_qs(raw_query)
    length = int(headers.get("content-length", "0"))
    if length > MAX_BODY:
        raise ValueError("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, query, body


async def _respond(writer, status: int, body: bytes, content_type: str):
    reason = {
        200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
        429: "Too Many Requests", 500: "Internal Server Error",
    }.get(status, "OK")
    writer.write(
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n".encode() + body
    )
    await writer.drain()


async def _respond_json(writer, status: int, payload: dict):
    body = json.dumps(payload, sort_keys=True).encode() + b"\n"
    await _respond(writer, status, body, "application/json")


async def _start_sse(writer):
    writer.write(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/event-stream\r\n"
        b"Cache-Control: no-cache\r\n"
        b"Connection: close\r\n\r\n"
    )
    await writer.drain()


async def _send_sse(writer, event: str, data: dict):
    payload = json.dumps(data, sort_keys=True)
    writer.write(f"event: {event}\ndata: {payload}\n\n".encode())
    await writer.drain()
