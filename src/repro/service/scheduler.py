"""Weighted-fair campaign scheduling across tenants.

Classic stride scheduling (Waldspurger & Weihl): every tenant holds a
*pass* value; each time one of its campaigns is dispatched the pass
advances by ``STRIDE / weight``; the next dispatch goes to the backlogged
tenant with the smallest pass.  Over any window, tenant throughput is
proportional to weight (here: submission ``priority``), yet a lone tenant
still gets the whole pool — fairness only bites under contention.

Two refinements matter for a long-running daemon:

* **pass catch-up** — a tenant that went idle re-enters at the global
  minimum pass rather than its stale (tiny) pass, so it cannot monopolise
  the pool to "repay" time it spent away;
* **bounded backlog** — the scheduler refuses pushes past ``max_pending``
  (global) or ``max_per_tenant``; the daemon maps the refusal to HTTP 429
  so backpressure reaches the submitting client instead of growing an
  unbounded in-memory queue in front of the worker pool.

The structure is a plain synchronized container — no asyncio, no threads
of its own — so it is directly unit-testable for its fairness properties.
"""

from __future__ import annotations

import threading
from collections import deque

from ..errors import ReproError

#: Stride numerator.  Large so integer passes stay exact for any weight
#: in the priority range (all weights divide it evenly enough; exactness
#: only needs determinism, which integers give us for free).
STRIDE = 1 << 20


class Backpressure(ReproError):
    """The scheduler's backlog is full; the client should retry later."""


class _Tenant:
    __slots__ = ("name", "weight", "pass_value", "queue")

    def __init__(self, name: str, weight: int, pass_value: int):
        self.name = name
        self.weight = weight
        self.pass_value = pass_value
        self.queue: deque = deque()


class FairScheduler:
    """A multi-tenant run queue with stride-scheduled dispatch.

    ``push(tenant, weight, item)`` enqueues; ``pop()`` returns the next
    ``(tenant, item)`` honouring weighted fairness, or ``None`` when
    empty.  Thread-safe: the daemon's accept path (event loop) and its
    dispatcher threads share one instance.
    """

    def __init__(self, max_pending: int = 256, max_per_tenant: int = 64):
        self.max_pending = max_pending
        self.max_per_tenant = max_per_tenant
        self._tenants: dict[str, _Tenant] = {}
        self._size = 0
        #: Global virtual time: the pass of the last dispatched item.  New
        #: and re-entering tenants start here, not at zero — otherwise a
        #: latecomer would starve everyone until its pass "caught up".
        self._global_pass = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def pending(self, tenant: str) -> int:
        with self._lock:
            entry = self._tenants.get(tenant)
            return len(entry.queue) if entry else 0

    def push(self, tenant: str, weight: int, item) -> None:
        weight = max(1, int(weight))
        with self._lock:
            if self._size >= self.max_pending:
                raise Backpressure(
                    f"scheduler backlog full ({self.max_pending} pending)"
                )
            entry = self._tenants.get(tenant)
            if entry is None:
                entry = _Tenant(tenant, weight, self._global_pass)
                self._tenants[tenant] = entry
            elif not entry.queue:
                # Re-entering after idling: catch the pass up so time
                # spent away doesn't convert into a burst of dispatches.
                entry.pass_value = max(entry.pass_value, self._global_pass)
            if len(entry.queue) >= self.max_per_tenant:
                raise Backpressure(
                    f"tenant {tenant!r} backlog full "
                    f"({self.max_per_tenant} pending)"
                )
            entry.weight = weight  # latest submission's priority wins
            entry.queue.append(item)
            self._size += 1

    def pop(self):
        """Dispatch the next item as ``(tenant, item)``, or ``None``."""
        with self._lock:
            backlogged = [t for t in self._tenants.values() if t.queue]
            if not backlogged:
                return None
            entry = min(backlogged, key=lambda t: (t.pass_value, t.name))
            item = entry.queue.popleft()
            self._global_pass = entry.pass_value
            entry.pass_value += STRIDE // entry.weight
            self._size -= 1
            return entry.name, item

    def snapshot(self) -> dict:
        """Per-tenant backlog/pass view for the status endpoint."""
        with self._lock:
            return {
                name: {
                    "pending": len(t.queue),
                    "weight": t.weight,
                    "pass": t.pass_value,
                }
                for name, t in self._tenants.items()
            }
