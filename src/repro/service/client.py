"""A blocking client for the campaign daemon (stdlib ``http.client``).

Used by the ``submit`` / ``watch`` CLI verbs, the load generator, and the
tests.  One method per endpoint; :meth:`ServiceClient.events` turns the
SSE stream into a generator of ``(event_name, payload)`` pairs, and
:meth:`ServiceClient.run` is the submit-and-wait convenience the load
generator times.
"""

from __future__ import annotations

import http.client
import json
import socket
import time

from ..errors import ReproError


class ServiceUnavailable(ReproError):
    """The daemon is unreachable, or it refused the request (429/5xx)."""

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """One tenant's view of a campaign daemon at ``host:port``.

    Each request opens a fresh connection (the daemon serves one request
    per connection), so a client object is safe to share across threads.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        tenant: str = "anonymous",
        timeout: float = 60.0,
    ):
        self.host, self.port = host, port
        self.tenant = tenant
        self.timeout = timeout

    # -- raw HTTP --------------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
        except (ConnectionError, socket.timeout, OSError) as exc:
            conn.close()
            raise ServiceUnavailable(
                f"campaign service at {self.host}:{self.port} unreachable: "
                f"{exc}"
            ) from exc
        conn.close()
        if response.status >= 500:
            raise ServiceUnavailable(
                data.decode(errors="replace"), status=response.status
            )
        try:
            decoded = json.loads(data)
        except json.JSONDecodeError:
            decoded = {"raw": data.decode(errors="replace")}
        return response.status, decoded

    # -- endpoints -------------------------------------------------------------

    def health(self) -> dict:
        status, payload = self._request("GET", "/v1/health")
        if status != 200:
            raise ServiceUnavailable(str(payload), status=status)
        return payload

    def submit(self, **submission) -> dict:
        """Submit one campaign; returns the ack payload.

        Raises :class:`ServiceUnavailable` on backpressure (429) with
        ``status`` set, and ``ValueError`` on a rejected submission (400).
        """
        submission.setdefault("tenant", self.tenant)
        status, payload = self._request("POST", "/v1/campaigns", submission)
        if status == 429:
            raise ServiceUnavailable(payload.get("error", "backpressure"), 429)
        if status == 400:
            raise ValueError(payload.get("error", "bad submission"))
        return payload

    def status(self) -> dict:
        status, payload = self._request("GET", "/v1/status")
        if status != 200:
            raise ServiceUnavailable(str(payload), status=status)
        return payload

    def campaign(self, key: str) -> dict:
        status, payload = self._request("GET", f"/v1/campaigns/{key}")
        if status == 404:
            raise KeyError(key)
        return payload

    def report(self, name: str = "fig11", format: str = "json") -> str:
        """The rebuilt report, as raw text (JSON or rendered table)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/v1/report?name={name}&format={format}")
            response = conn.getresponse()
            data = response.read()
        finally:
            conn.close()
        if response.status != 200:
            raise ServiceUnavailable(
                data.decode(errors="replace"), status=response.status
            )
        return data.decode()

    def events(self, key: str, timeout: float | None = None):
        """Stream one campaign's SSE events as ``(name, payload)`` pairs.

        The generator ends when the daemon closes the stream (campaign
        finished, or it was already complete — a lone ``snapshot``).
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            conn.request("GET", f"/v1/campaigns/{key}/events")
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceUnavailable(
                    response.read().decode(errors="replace"),
                    status=response.status,
                )
            name, data_lines = None, []
            for raw in response:
                line = raw.decode().rstrip("\n").rstrip("\r")
                if line.startswith("event:"):
                    name = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                elif not line and (name or data_lines):
                    yield name or "message", json.loads(
                        "\n".join(data_lines) or "{}"
                    )
                    name, data_lines = None, []
        finally:
            conn.close()

    # -- conveniences ----------------------------------------------------------

    def run(self, poll: float = 0.02, **submission) -> dict:
        """Submit and wait for completion; returns the final status row.

        Also records ``first_result_latency``: seconds from submission to
        the first progress/complete event — the p99 the load generator
        floors.  Retries submission on backpressure with linear backoff.
        """
        t0 = time.monotonic()
        while True:
            try:
                ack = self.submit(**submission)
                break
            except ServiceUnavailable as exc:
                if exc.status != 429:
                    raise
                time.sleep(poll)
        key = ack["campaign"]
        first_result = None
        final: dict = {}
        if ack.get("cached"):
            first_result = time.monotonic() - t0
            final = ack.get("row", {})
        else:
            for name, payload in self.events(key):
                if name in ("progress", "complete", "snapshot"):
                    if first_result is None and (
                        payload.get("done") or name == "complete"
                    ):
                        first_result = time.monotonic() - t0
                if name == "failed":
                    raise ReproError(
                        f"campaign {key[:12]} failed: {payload.get('error')}"
                    )
                if name == "complete":
                    final = payload
            if first_result is None:
                first_result = time.monotonic() - t0
        return {
            "campaign": key,
            "cached": bool(ack.get("cached")),
            "elapsed": time.monotonic() - t0,
            "first_result_latency": first_result,
            "final": final,
        }

    def wait_ready(self, timeout: float = 10.0, poll: float = 0.05) -> dict:
        """Block until the daemon answers ``/v1/health`` (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceUnavailable:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)
