"""The campaign service: a long-running, multi-tenant injection daemon.

The campaign store made sweeps durable and resumable; this package makes
them *servable*.  A single asyncio HTTP/JSON daemon accepts campaign
submissions from many concurrent tenants, schedules them with weighted
fairness onto one persistent forked worker pool (engines compiled once
per worker and kept warm across campaigns — any tenant, any seed), streams
live progress over Server-Sent Events, and serves reports rebuilt straight
from the journal without executing anything.  Every accepted submission is
manifested durably (fsync) before it is acknowledged, so a ``kill -9`` of
the daemon loses nothing: restart resumes in-flight campaigns through the
store's claim/replay/record protocol to a byte-identical journal.

Entry points: :class:`CampaignService` (the daemon),
:class:`ServiceClient` (blocking client library), :func:`service_bench`
(the load-generator benchmark), and the ``serve`` / ``submit`` / ``watch``
CLI verbs in :mod:`repro.experiments.__main__`.
"""

from .client import ServiceClient, ServiceUnavailable
from .loadgen import service_bench
from .protocol import (
    BadSubmission,
    Submission,
    build_manifest,
    campaign_key_for,
    campaign_row,
    config_of,
    normalize_submission,
    spec_of,
    status_payload,
    submission_from_manifest,
)
from .scheduler import Backpressure, FairScheduler
from .server import CampaignService
from .workers import EngineCache, StreamingRecorder, execute_submission

__all__ = [
    "BadSubmission",
    "Backpressure",
    "CampaignService",
    "EngineCache",
    "FairScheduler",
    "ServiceClient",
    "ServiceUnavailable",
    "StreamingRecorder",
    "Submission",
    "build_manifest",
    "campaign_key_for",
    "campaign_row",
    "config_of",
    "execute_submission",
    "normalize_submission",
    "service_bench",
    "spec_of",
    "status_payload",
    "submission_from_manifest",
]
