"""Campaign execution for the service: warm engines, streamed progress.

The daemon runs each scheduled campaign on a runner thread; the forked
:class:`~repro.core.parallel.ServicePool` executes the faulty halves.  The
pieces here keep that path warm and observable:

* :class:`EngineCache` pools parent-side :class:`FaultInjector` instances
  by :class:`EngineSpec`.  An injector carries the decoded/compiled module
  and its :class:`GoldenCache`, so returning one to the pool hands the
  next campaign — any tenant — a warm engine and a primed golden cache.
  Specs are by-name content recipes, so the sharing is sound: two tenants
  with the same spec are running the same module, bit for bit.
* :class:`StreamingRecorder` wraps the store's
  :class:`~repro.store.recorder.CampaignRecorder`, forwarding the
  claim/replay/record protocol unchanged (journal bytes are untouched)
  while emitting progress events — done counts, recorder hit/miss,
  outcome totals — to a callback the daemon fans out over SSE.
* :func:`execute_submission` ties it together: acquire engine, open the
  recorder (folding run-time extras into the accept-time manifest), run
  the campaigns, release the engine warm.
"""

from __future__ import annotations

import threading

from ..core.campaign import CampaignStats, CampaignSummary, run_campaigns
from ..core.injector import FaultInjector
from ..core.parallel import EngineSpec, ServicePool
from .protocol import (
    EXPERIMENT,
    Submission,
    config_of,
    spec_of,
    totals_dict,
)


class EngineCache:
    """A pool of warm parent-side engines, keyed by :class:`EngineSpec`.

    ``acquire`` pops a free warm injector for the spec or builds (and
    warms) a fresh one; ``release`` returns it for the next campaign.
    Injectors are not thread-safe, so concurrent campaigns on the same
    spec each get their own instance — but across *sequential* campaigns
    the instance (module, compiled engine, golden cache) is reused no
    matter which tenant submitted them.
    """

    def __init__(self):
        self._free: dict[EngineSpec, list[FaultInjector]] = {}
        self._lock = threading.Lock()
        self.builds = 0
        self.reuses = 0

    def acquire(self, spec: EngineSpec) -> FaultInjector:
        with self._lock:
            free = self._free.get(spec)
            if free:
                self.reuses += 1
                return free.pop()
            self.builds += 1
        from ..workloads.registry import get_workload

        module = get_workload(spec.workload).compile(spec.target)
        injector = FaultInjector(
            module,
            category=spec.category,
            step_limit=spec.step_limit,
            engine=spec.engine,
        )
        injector.warm()
        return injector

    def release(self, spec: EngineSpec, injector: FaultInjector) -> None:
        with self._lock:
            self._free.setdefault(spec, []).append(injector)

    def stats(self) -> dict:
        with self._lock:
            return {
                "builds": self.builds,
                "reuses": self.reuses,
                "pooled": sum(len(v) for v in self._free.values()),
            }


class StreamingRecorder:
    """Forward a campaign recorder, narrating its progress as events.

    Every forwarded call is byte-for-byte what the wrapped recorder would
    have done alone — this class only *observes*, so a daemon-run campaign
    journals identically to a CLI run.  ``emit(event)`` receives dicts in
    the shared status schema: running ``done``/``hits``/``misses`` counts
    and outcome ``totals``; the daemon timestamps and fans them out.
    """

    def __init__(self, recorder, emit, every: int = 1):
        self._recorder = recorder
        self._emit = emit
        self._every = max(1, every)
        self._stats = CampaignStats()
        self.done = 0
        self.hits = 0
        self.misses = 0
        self.campaign_key = recorder.campaign_key

    # -- recorder protocol (see core.campaign) ---------------------------------

    @property
    def store(self):
        return self._recorder.store

    def claim(self, k, bit, params):
        return self._recorder.claim(k, bit, params)

    def replay(self, key):
        stored = self._recorder.replay(key)
        if stored is not None:
            self.hits += 1
            self._note(stored)
        return stored

    def record(self, key, seq, k, bit, params, result):
        self._recorder.record(key, seq, k, bit, params, result)
        self.misses += 1
        self._note(result)

    def finish(self, executed_total, converged=None):
        self._recorder.finish(executed_total, converged)
        self._emit(self.progress_event(final=True, converged=converged))

    def counters(self):
        return self._recorder.counters()

    # -- event plumbing --------------------------------------------------------

    def _note(self, result) -> None:
        self._stats.add(result)
        self.done += 1
        if self.done % self._every == 0:
            self._emit(self.progress_event())

    def progress_event(self, final: bool = False, converged=None) -> dict:
        event = {
            "event": "complete" if final else "progress",
            "campaign": self.campaign_key,
            "done": self.done,
            "hits": self.hits,
            "misses": self.misses,
            "totals": totals_dict(self._stats),
        }
        if final:
            event["converged"] = converged
        return event

    def live_row(self) -> dict:
        """The in-flight overlay for this campaign's status row."""
        return {
            "state": "running",
            "done": self.done,
            "hits": self.hits,
            "misses": self.misses,
            "totals": totals_dict(self._stats),
        }


def execute_submission(
    store,
    sub: Submission,
    pool: ServicePool | None,
    engines: EngineCache,
    emit,
    progress_every: int = 1,
) -> CampaignSummary:
    """Run one accepted submission to completion against the store.

    Seeds, schedule draws, and journal frames are identical to the fig11
    CLI path for the same cell — the recorder protocol, the RNG stream,
    and the pool's in-order imap guarantee it — so a daemon-filled store
    and a CLI-filled store are byte-interchangeable.
    """
    from ..workloads.registry import get_workload

    spec = spec_of(sub)
    workload = get_workload(sub.workload)
    injector = engines.acquire(spec)
    try:
        recorder = store.recorder(
            experiment=EXPERIMENT,
            cell=sub.cell,
            scale=sub.scale,
            injector=injector,
            seed=sub.seed,
            config=sub.config,
            planned=config_of(sub).max_campaigns
            * config_of(sub).experiments_per_campaign,
            extras={
                "static_sites": len(injector.sites),
                "tenant": sub.tenant,
                "priority": sub.priority,
            },
        )
        streaming = StreamingRecorder(recorder, emit, every=progress_every)
        summary = run_campaigns(
            injector,
            workload.runner_factory(),
            config_of(sub),
            seed=sub.seed,
            pool=pool.cell(spec) if pool is not None else None,
            recorder=streaming,
        )
    finally:
        engines.release(spec, injector)
    return summary
