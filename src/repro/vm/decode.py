"""Pre-decoded executable form of IR functions — the interpreter fast path.

The naive interpreter resolved every operand (`isinstance(o, Constant)`),
re-evaluated every constant, and walked a long ``isinstance`` chain per
*dynamic* instruction.  All of that work is invariant per *static*
instruction, so this module hoists it: each :class:`~repro.ir.module.Function`
is decoded once into per-block records where

* every operand is a pre-resolved ``(is_reg, payload)`` pair — constants are
  already Python values, registers are dictionary keys;
* every instruction is a specialised closure ``ex(vm, regs)`` built by a
  per-class handler table (no ``isinstance`` at run time);
* phi nodes become per-predecessor-edge lookup tables;
* terminators become integer-tagged records driving the block loop.

Decoded programs are cached on the module (``module._vm_decoded``) and
invalidated by :attr:`Module.version`, which every structural IR mutation
bumps.  Decoding preserves bit-exact semantics and the exact
scalar/vector/step accounting of the original interpreter loop — including
its *lazy* error behaviour: malformed instructions only raise when executed,
never at decode time.
"""

from __future__ import annotations

from ..errors import InvalidOperation, StepLimitExceeded
from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    CastOp,
    CompareOp,
    CondBranch,
    ExtractElement,
    FNeg,
    GetElementPtr,
    InsertElement,
    Load,
    Phi,
    Return,
    Select,
    ShuffleVector,
    Store,
    Unreachable,
)
from ..ir.intrinsics import get_intrinsic, is_intrinsic_name
from ..ir.module import Function, Module
from ..ir.types import VectorType
from ..ir.values import (
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ConstantVector,
    UndefValue,
)
import numpy as np

from . import ops
from .bits import VECTOR_EVENTS, round_f32

# Terminator tags.
T_BR = 0
T_CONDBR = 1
T_RET = 2
T_UNREACHABLE = 3


# -- direct fault injection ----------------------------------------------------
#
# The direct engine folds VULFI's fault sites into the decoded program
# instead of splicing ``injectFault<Ty>Ty`` calls into the IR: an
# :class:`InjectionPlan` maps site-bearing instructions to per-lane
# :class:`PlannedSite` descriptors, and the decoder wraps those
# instructions' closures so the runtime's count/inject entry points run
# inline — no interpreted extract/mask-decode/call/insert chains.
#
# Bit-identical semantics with the instrumented reference engine are the
# hard requirement.  Three invariants carry it:
#
# * dynamic sites are visited in the exact order the spliced chains would
#   execute (per group, lanes ascending, immediately after the defining
#   instruction or immediately before the store);
# * each descriptor's ``active_fn``/``to_int``/``to_ptr`` compose the very
#   :mod:`repro.vm.ops` evaluators the interpreted chain would have run
#   (sign-bit masks via bitcast+lshr, pointers via the ptrtoint/inttoptr
#   sandwich);
# * every visited lane charges the *instrumentation tax* — the dynamic
#   instruction count of the chain it replaces — to the step accounting,
#   so step budgets, timeout crashes, and ``dynamic_instructions`` totals
#   match the instrumented engine.


class PlannedSite:
    """One scalar fault-site lane, pre-resolved for direct execution."""

    __slots__ = (
        "site_id",
        "lane",
        "entry_index",
        "mask_operand_index",
        "active_fn",
        "active_bulk_fn",
        "to_int",
        "to_ptr",
        "tax_total",
        "tax_scalar",
        "tax_vector",
    )

    def __init__(
        self,
        site_id: int,
        lane: int | None,
        entry_index: int,
        mask_operand_index: int | None = None,
        active_fn=None,
        active_bulk_fn=None,
        to_int=None,
        to_ptr=None,
        tax: tuple[int, int, int] = (1, 1, 0),
    ):
        self.site_id = site_id
        self.lane = lane
        self.entry_index = entry_index
        self.mask_operand_index = mask_operand_index
        self.active_fn = active_fn
        self.active_bulk_fn = active_bulk_fn
        self.to_int = to_int
        self.to_ptr = to_ptr
        self.tax_total, self.tax_scalar, self.tax_vector = tax


class InjectionPlan:
    """All planned sites of one module, keyed by owning instruction.

    ``lvalue`` maps an instruction to the ordered lane descriptors of its
    result register; ``store`` maps a store-like instruction (plain store,
    masked store, scatter) to ``(value_operand_index, descriptors)``.  The
    plan owns its decoded-program cache — planned closures must never leak
    into the module's plain decode cache.
    """

    __slots__ = ("lvalue", "store", "_decoded", "_compiled")

    def __init__(self):
        self.lvalue: dict = {}
        self.store: dict = {}
        self._decoded: DecodedProgram | None = None
        # Compiled-program cache (:mod:`repro.vm.compile`), owned by the
        # plan for the same reason as ``_decoded``.
        self._compiled = None

    def __len__(self) -> int:
        return sum(len(g) for g in self.lvalue.values()) + sum(
            len(g) for _, g in self.store.values()
        )


def _resolve_lanes(instr, group):
    """Pre-resolve a descriptor group into flat per-lane execution tuples."""
    lanes = []
    for d in group:
        mask_spec = (
            _spec(instr.operands[d.mask_operand_index])
            if d.mask_operand_index is not None
            else None
        )
        lanes.append(
            (
                d.site_id,
                d.lane,
                d.entry_index,
                mask_spec,
                d.active_fn,
                d.to_int,
                d.to_ptr,
                d.tax_total,
                d.tax_scalar,
                d.tax_vector,
            )
        )
    return lanes


def _make_applier(instr, group, fname: str, copy_value: bool):
    """Build ``apply(vm, regs, value) -> value`` running a site group inline.

    Mirrors one spliced chain: per lane (ascending), charge the chain's
    step tax, decode the execution mask, and pass the scalar through the
    runtime entry point.  ``copy_value`` forces a fresh list before the
    first lane mutation — required when ``value`` may alias another
    register (store operands, values returned from calls); everywhere else
    the decoded builders always produce fresh lists.

    A group's lanes share one register and one mask, so its descriptors are
    uniform in type, mask convention, and tax.  The hot shapes exploit that:
    the group tax is charged in one step, and the per-run *span* advancer
    (:meth:`FaultRuntime.spans`) consumes the whole group's dynamic-site
    counts in a single call — per-lane entry dispatch only happens for the
    one group per faulty run that actually contains the target index (and
    near the step limit, where lane-exact crash accounting matters).
    """
    lanes = _resolve_lanes(instr, group)
    sid0, lane0, eidx, mask_spec, active_fn, to_int, to_ptr, tt, ts, tv = lanes[0]

    if len(lanes) == 1 and lane0 is None:
        # Scalar register fast paths — the only shapes scalar sites take.
        if mask_spec is None and to_int is None:

            def apply(vm, regs, value):
                stats = vm.stats
                stats.total += tt
                stats.scalar += ts
                stats.vector += tv
                if stats.total > vm.step_limit:
                    raise StepLimitExceeded(
                        f"@{fname}: exceeded {vm.step_limit} dynamic instructions"
                    )
                return vm.fault_entries[eidx](value, 1, sid0)

            return apply

        if mask_spec is None:

            def apply(vm, regs, value):
                stats = vm.stats
                stats.total += tt
                stats.scalar += ts
                stats.vector += tv
                if stats.total > vm.step_limit:
                    raise StepLimitExceeded(
                        f"@{fname}: exceeded {vm.step_limit} dynamic instructions"
                    )
                return to_ptr(vm.fault_entries[eidx](to_int(value), 1, sid0))

            return apply

    uniform = lane0 is not None and all(
        l[2] == eidx and l[3] == mask_spec and l[5] is to_int and l[7] == tt
        for l in lanes[1:]
    )
    if uniform and to_int is None:
        pairs = tuple((l[1], l[0]) for l in lanes)
        n = len(pairs)
        gtt, gts, gtv = tt * n, ts * n, tv * n
        slow = _generic_applier(lanes, fname, copy_value)

        if mask_spec is None:

            def apply(vm, regs, value):
                stats = vm.stats
                total = stats.total + gtt
                if total > vm.step_limit:
                    return slow(vm, regs, value)
                stats.total = total
                stats.scalar += gts
                stats.vector += gtv
                if vm.fault_spans[eidx](n):
                    return value
                # The target index lies inside this group: replay the
                # lanes through the per-lane entry (same counts, same
                # RNG-stream position as per-lane dispatch throughout).
                entry = vm.fault_entries[eidx]
                if copy_value:
                    value = list(value)
                for lane, sid in pairs:
                    value[lane] = entry(value[lane], 1, sid)
                return value

            return apply

        mr, mp = mask_spec

        def apply(vm, regs, value):
            stats = vm.stats
            total = stats.total + gtt
            if total > vm.step_limit:
                return slow(vm, regs, value)
            stats.total = total
            stats.scalar += gts
            stats.vector += gtv
            mask = regs[mp] if mr else mp
            flags = [active_fn(mask[lane]) for lane, _ in pairs]
            active = 0
            for f in flags:
                if f:
                    active += 1
            if not active or vm.fault_spans[eidx](active):
                return value
            entry = vm.fault_entries[eidx]
            if copy_value:
                value = list(value)
            for (lane, sid), f in zip(pairs, flags):
                value[lane] = entry(value[lane], f, sid)
            return value

        return apply

    return _generic_applier(lanes, fname, copy_value)


def _generic_applier(lanes, fname: str, copy_value: bool):
    """The fully general per-lane loop — handles every descriptor shape and
    raises :class:`StepLimitExceeded` at the exact lane whose chain tax
    crosses the budget (the specialised appliers defer to this near the
    limit and for pointer/mixed groups)."""

    def apply(vm, regs, value):
        stats = vm.stats
        limit = vm.step_limit
        entries = vm.fault_entries
        copied = not copy_value
        for sid, lane, eidx, mask_spec, active_fn, to_int, to_ptr, tt, ts, tv in lanes:
            stats.total += tt
            stats.scalar += ts
            stats.vector += tv
            if stats.total > limit:
                raise StepLimitExceeded(
                    f"@{fname}: exceeded {limit} dynamic instructions"
                )
            if mask_spec is None:
                active = 1
            else:
                mr, mp = mask_spec
                active = active_fn((regs[mp] if mr else mp)[lane])
            if lane is None:
                if to_int is None:
                    value = entries[eidx](value, active, sid)
                else:
                    value = to_ptr(entries[eidx](to_int(value), active, sid))
            else:
                if not copied:
                    value = list(value)
                    copied = True
                scalar = value[lane]
                if to_int is None:
                    value[lane] = entries[eidx](scalar, active, sid)
                else:
                    value[lane] = to_ptr(entries[eidx](to_int(scalar), active, sid))
        return value

    return apply


def _build_injected_store(instr, op_index: int, group, fname: str):
    """A store-like instruction with fault sites on its value operand.

    Replicates the §II-B protocol: the stored value is considered for
    injection *before* the store executes, and only the store's operand
    sees the corrupted value — the defining register is untouched.
    """
    apply = _make_applier(instr, group, fname, copy_value=True)
    if isinstance(instr, Store):
        r0, p0 = _spec(instr.operands[0])
        r1, p1 = _spec(instr.operands[1])
        ty = instr.value.type

        def ex(vm, regs):
            value = apply(vm, regs, regs[p0] if r0 else p0)
            vm.memory.write_value(ty, regs[p1] if r1 else p1, value)

        return ex

    # Masked store / scatter intrinsic call.
    info = get_intrinsic(instr.callee.name)
    specs = [_spec(o) for o in instr.operands]
    argf = _fetch_args(specs)

    def ex(vm, regs):
        args = argf(regs)
        args[op_index] = apply(vm, regs, args[op_index])
        vm._intrinsic(info, instr, args)

    return ex


def _decode_planned_step(instr, plan: InjectionPlan, fname: str):
    """The planned closure for ``instr``, or None when it bears no sites."""
    group = plan.lvalue.get(instr)
    if group is not None:
        base = _decode_step(instr)
        # Calls can return a value that aliases another live register (an
        # identity function returns its argument); everything else decodes
        # to closures that build fresh vectors, safe to corrupt in place.
        apply = _make_applier(instr, group, fname, copy_value=isinstance(instr, Call))

        def ex(vm, regs):
            base(vm, regs)
            regs[instr] = apply(vm, regs, regs[instr])

        return ex
    planned_store = plan.store.get(instr)
    if planned_store is not None:
        op_index, group = planned_store
        return _build_injected_store(instr, op_index, group, fname)
    return None


def evaluate_constant(c: Constant):
    """Evaluate an IR constant to its runtime Python value (pure)."""
    if isinstance(c, ConstantInt):
        return c.value
    if isinstance(c, ConstantFloat):
        return round_f32(c.value) if c.type.bits == 32 else c.value
    if isinstance(c, ConstantVector):
        return [evaluate_constant(e) for e in c.elements]
    if isinstance(c, ConstantPointerNull):
        return 0
    if isinstance(c, UndefValue):
        # Deterministic zero for undef: fault campaigns must be replayable.
        if isinstance(c.type, VectorType):
            return [0.0 if c.type.element.is_float() else 0] * c.type.length
        if c.type.is_float():
            return 0.0
        return 0
    raise InvalidOperation(f"cannot evaluate constant {c!r}")


def _spec(value):
    """Resolve one operand to a ``(is_reg, payload)`` pair."""
    if isinstance(value, Constant):
        return False, evaluate_constant(value)
    return True, value


def unpack_regs(regs: dict) -> None:
    """Canonicalize a register file in place for decoded execution.

    The compiled engine's batched tier leaves packed ndarray slots in the
    register dict (:mod:`repro.vm.compile`); the decoded closures here
    index, mutate, and bit-flip vector registers as canonical Python lists,
    so every fallback into decoded execution converts first.  ``tolist`` is
    the exact widening (f32 lanes quiet like ``struct.unpack('<f')``), and
    the conversion count is reported by the perf harness."""
    n = 0
    for key, value in regs.items():
        if type(value) is np.ndarray:
            regs[key] = value.tolist()
            n += 1
    if n:
        VECTOR_EVENTS["fallback_unpacks"] += n


def _raiser(message: str):
    def ex(vm, regs):
        raise InvalidOperation(message)

    return ex


# -- per-class closure builders ------------------------------------------------
#
# Each builder runs once per static instruction and returns ``ex(vm, regs)``.
# The closure writes its result straight into ``regs[instr]`` (void results
# are simply not stored — nothing can reference them).


def _build_binop(instr: BinaryOp):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])
    ty = instr.type
    if isinstance(ty, VectorType):
        fn = ops.binop_fn(instr.opcode, ty.element)

        def ex(vm, regs):
            a = regs[p0] if r0 else p0
            b = regs[p1] if r1 else p1
            regs[instr] = [fn(x, y) for x, y in zip(a, b)]

    else:
        fn = ops.binop_fn(instr.opcode, ty)

        def ex(vm, regs):
            regs[instr] = fn(regs[p0] if r0 else p0, regs[p1] if r1 else p1)

    return ex


def _build_compare(instr: CompareOp):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])
    operand_ty = instr.lhs.type
    if isinstance(operand_ty, VectorType):
        fn = ops.compare_fn(instr.opcode, instr.predicate, operand_ty.element)

        def ex(vm, regs):
            a = regs[p0] if r0 else p0
            b = regs[p1] if r1 else p1
            regs[instr] = [int(fn(x, y)) for x, y in zip(a, b)]

    else:
        fn = ops.compare_fn(instr.opcode, instr.predicate, operand_ty)

        def ex(vm, regs):
            regs[instr] = int(fn(regs[p0] if r0 else p0, regs[p1] if r1 else p1))

    return ex


def _build_select(instr: Select):
    rc, pc = _spec(instr.operands[0])
    ra, pa = _spec(instr.operands[1])
    rb, pb = _spec(instr.operands[2])
    if instr.condition.type.is_vector():

        def ex(vm, regs):
            cond = regs[pc] if rc else pc
            a = regs[pa] if ra else pa
            b = regs[pb] if rb else pb
            regs[instr] = [x if c else y for c, x, y in zip(cond, a, b)]

    else:

        def ex(vm, regs):
            regs[instr] = (
                (regs[pa] if ra else pa)
                if (regs[pc] if rc else pc)
                else (regs[pb] if rb else pb)
            )

    return ex


def _build_cast(instr: CastOp):
    r0, p0 = _spec(instr.operands[0])
    src_ty = instr.operands[0].type
    dst_ty = instr.type
    if isinstance(dst_ty, VectorType):
        fn = ops.cast_fn(instr.opcode, src_ty.scalar_type, dst_ty.element)

        def ex(vm, regs):
            regs[instr] = [fn(x) for x in (regs[p0] if r0 else p0)]

    else:
        fn = ops.cast_fn(instr.opcode, src_ty, dst_ty)

        def ex(vm, regs):
            regs[instr] = fn(regs[p0] if r0 else p0)

    return ex


def _build_gep(instr: GetElementPtr):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])
    stride = instr.base.type.pointee.store_size()
    if isinstance(instr.index.type, VectorType):

        def ex(vm, regs):
            base = regs[p0] if r0 else p0
            idx = regs[p1] if r1 else p1
            regs[instr] = [base + i * stride for i in idx]

    else:

        def ex(vm, regs):
            regs[instr] = (regs[p0] if r0 else p0) + (regs[p1] if r1 else p1) * stride

    return ex


def _build_load(instr: Load):
    r0, p0 = _spec(instr.operands[0])
    ty = instr.type

    def ex(vm, regs):
        regs[instr] = vm.memory.read_value(ty, regs[p0] if r0 else p0)

    return ex


def _build_store(instr: Store):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])
    ty = instr.value.type

    def ex(vm, regs):
        vm.memory.write_value(ty, regs[p1] if r1 else p1, regs[p0] if r0 else p0)

    return ex


def _build_alloca(instr: Alloca):
    allocated = instr.allocated_type
    count = instr.count
    label = instr.name or "alloca"

    def ex(vm, regs):
        regs[instr] = vm.memory.alloc_typed(allocated, count, label=label)

    return ex


def _build_extractelement(instr: ExtractElement):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])

    def ex(vm, regs):
        vec = regs[p0] if r0 else p0
        i = int(regs[p1] if r1 else p1)
        if not 0 <= i < len(vec):
            # LLVM: poison. Deterministic choice: wrap modulo length.
            i %= len(vec)
        regs[instr] = vec[i]

    return ex


def _build_insertelement(instr: InsertElement):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])
    r2, p2 = _spec(instr.operands[2])

    def ex(vm, regs):
        out = list(regs[p0] if r0 else p0)
        i = int(regs[p2] if r2 else p2)
        if not 0 <= i < len(out):
            i %= len(out)
        out[i] = regs[p1] if r1 else p1
        regs[instr] = out

    return ex


def _build_shufflevector(instr: ShuffleVector):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])
    mask = instr.mask

    def ex(vm, regs):
        joined = list(regs[p0] if r0 else p0) + list(regs[p1] if r1 else p1)
        regs[instr] = [joined[m] for m in mask]

    return ex


def _build_fneg(instr: FNeg):
    r0, p0 = _spec(instr.operands[0])
    if instr.type.is_vector():

        def ex(vm, regs):
            regs[instr] = [-x for x in (regs[p0] if r0 else p0)]

    else:

        def ex(vm, regs):
            regs[instr] = -(regs[p0] if r0 else p0)

    return ex


def _fetch_args(specs):
    """Generic argument-list fetcher for call-like closures."""
    if len(specs) == 2:
        (r0, p0), (r1, p1) = specs
        return lambda regs: [regs[p0] if r0 else p0, regs[p1] if r1 else p1]
    if len(specs) == 1:
        ((r0, p0),) = specs
        return lambda regs: [regs[p0] if r0 else p0]
    if len(specs) == 3:
        (r0, p0), (r1, p1), (r2, p2) = specs
        return lambda regs: [
            regs[p0] if r0 else p0,
            regs[p1] if r1 else p1,
            regs[p2] if r2 else p2,
        ]
    return lambda regs: [regs[p] if r else p for r, p in specs]


def _build_math_call(instr: Call, name: str, info):
    op = name.split(".")[1]
    fn = ops.MATH_FNS[op]
    specs = [_spec(o) for o in instr.operands]
    ty = info.function_type.return_type
    if isinstance(ty, VectorType):
        f32 = ty.element.bits == 32
        if len(specs) == 1:
            ((r0, p0),) = specs

            def ex(vm, regs):
                out = [fn(x) for x in (regs[p0] if r0 else p0)]
                regs[instr] = [round_f32(x) for x in out] if f32 else out

        else:
            (r0, p0), (r1, p1) = specs

            def ex(vm, regs):
                a = regs[p0] if r0 else p0
                b = regs[p1] if r1 else p1
                out = [fn(x, y) for x, y in zip(a, b)]
                regs[instr] = [round_f32(x) for x in out] if f32 else out

        return ex
    f32 = ty.bits == 32
    argf = _fetch_args(specs)

    def ex(vm, regs):
        r = fn(*argf(regs))
        regs[instr] = round_f32(r) if f32 else r

    return ex


def _build_call(instr: Call):
    callee = instr.callee
    name = callee.name
    specs = [_spec(o) for o in instr.operands]
    if not callee.is_declaration:
        argf = _fetch_args(specs)
        if instr.has_lvalue():

            def ex(vm, regs):
                regs[instr] = vm._exec_function(callee, argf(regs))

        else:

            def ex(vm, regs):
                vm._exec_function(callee, argf(regs))

        return ex

    if is_intrinsic_name(name):
        info = get_intrinsic(name)
        kind = info.kind
        if kind == "math":
            return _build_math_call(instr, name, info)
        if kind in ("reduce", "mask-reduce"):
            ret = info.function_type.return_type
            argf = _fetch_args(specs)

            def ex(vm, regs):
                regs[instr] = ops.reduce_intrinsic(name, ret, argf(regs))

            return ex
        argf = _fetch_args(specs)
        if instr.has_lvalue():

            def ex(vm, regs):
                regs[instr] = vm._intrinsic(info, instr, argf(regs))

        else:

            def ex(vm, regs):
                vm._intrinsic(info, instr, argf(regs))

        return ex

    # External call — the VULFI/detector runtime hot path: specialise the
    # common arities so no intermediate argument list is built.
    store = instr.has_lvalue()
    if len(specs) == 3:
        (r0, p0), (r1, p1), (r2, p2) = specs

        def ex(vm, regs):
            ext = vm.externals.get(name)
            if ext is None:
                raise InvalidOperation(f"call to unbound external @{name}")
            out = ext(
                regs[p0] if r0 else p0,
                regs[p1] if r1 else p1,
                regs[p2] if r2 else p2,
            )
            if store:
                regs[instr] = out

        return ex
    argf = _fetch_args(specs)

    def ex(vm, regs):
        ext = vm.externals.get(name)
        if ext is None:
            raise InvalidOperation(f"call to unbound external @{name}")
        out = ext(*argf(regs))
        if store:
            regs[instr] = out

    return ex


_BUILDERS = {
    BinaryOp: _build_binop,
    CompareOp: _build_compare,
    Select: _build_select,
    CastOp: _build_cast,
    GetElementPtr: _build_gep,
    Load: _build_load,
    Store: _build_store,
    Alloca: _build_alloca,
    ExtractElement: _build_extractelement,
    InsertElement: _build_insertelement,
    ShuffleVector: _build_shufflevector,
    FNeg: _build_fneg,
    Call: _build_call,
}


def _decode_step(instr):
    builder = _BUILDERS.get(type(instr))
    if builder is None:
        # Matches the interpreter's lazy behaviour: only raise if executed.
        return _raiser(f"cannot execute opcode {instr.opcode}")
    try:
        return builder(instr)
    except InvalidOperation as exc:
        return _raiser(str(exc))


class DecodedBlock:
    """One basic block, fully resolved for execution."""

    __slots__ = (
        "source",
        "phis",
        "phi_total",
        "phi_scalar",
        "phi_vector",
        "steps",
        "term",
    )

    def __init__(self, source):
        self.source = source
        # [(phi, {pred_block: (is_reg, payload)})], leading phis only.
        self.phis = []
        self.phi_total = 0
        self.phi_scalar = 0
        self.phi_vector = 0
        # [(ex, is_vector, opcode)] for non-phi, non-terminator instructions.
        self.steps = []
        # (tag, is_vector, opcode, payload) or None for unterminated blocks.
        self.term = None


#: Process-wide decode counters.  ``functions`` increments once per
#: :class:`DecodedFunction` build — tests use it to prove that pool workers
#: decode each module exactly once per process, not once per experiment.
DECODE_EVENTS = {"functions": 0}


class DecodedFunction:
    """A function decoded into :class:`DecodedBlock` records."""

    __slots__ = ("fn", "name", "entry", "blocks", "plan")

    def __init__(self, fn: Function, plan: InjectionPlan | None = None):
        DECODE_EVENTS["functions"] += 1
        self.fn = fn
        self.name = fn.name
        self.plan = plan
        self.blocks = {block: DecodedBlock(block) for block in fn.blocks}
        for block, decoded in self.blocks.items():
            self._decode_block(block, decoded)
        self.entry = self.blocks[fn.entry]

    def _decode_block(self, block, decoded: DecodedBlock) -> None:
        instructions = block.instructions
        index = 0
        n = len(instructions)

        # Leading phis evaluate in parallel against the predecessor edge.
        while index < n and isinstance(instructions[index], Phi):
            phi = instructions[index]
            table = {}
            for value, pred in phi.incoming():
                # First edge wins on duplicates, like Phi.incoming_for.
                if pred not in table:
                    table[pred] = _spec(value)
            decoded.phis.append((phi, table))
            decoded.phi_total += 1
            if phi.type.is_vector():
                decoded.phi_vector += 1
            else:
                decoded.phi_scalar += 1
            index += 1

        plan = self.plan
        while index < n:
            instr = instructions[index]
            index += 1
            if instr.is_terminator:
                decoded.term = self._decode_terminator(instr)
                break
            ex = None
            if plan is not None:
                ex = _decode_planned_step(instr, plan, self.name)
            if ex is None:
                ex = _decode_step(instr)
            decoded.steps.append((ex, instr.is_vector_instruction, instr.opcode))

    def _decode_terminator(self, instr):
        isvec = instr.is_vector_instruction
        opcode = instr.opcode
        if isinstance(instr, Branch):
            return (T_BR, isvec, opcode, self.blocks[instr.target])
        if isinstance(instr, CondBranch):
            r, p = _spec(instr.condition)
            return (
                T_CONDBR,
                isvec,
                opcode,
                (r, p, self.blocks[instr.true_target], self.blocks[instr.false_target]),
            )
        if isinstance(instr, Return):
            rv = instr.return_value
            return (T_RET, isvec, opcode, None if rv is None else _spec(rv))
        assert isinstance(instr, Unreachable)
        return (T_UNREACHABLE, isvec, opcode, None)


class DecodedProgram:
    """Lazily decoded functions of one module at one version."""

    __slots__ = ("version", "plan", "_functions")

    def __init__(self, module: Module, plan: InjectionPlan | None = None):
        self.version = module.version
        self.plan = plan
        self._functions: dict[Function, DecodedFunction] = {}

    def function(self, fn: Function) -> DecodedFunction:
        decoded = self._functions.get(fn)
        if decoded is None:
            decoded = DecodedFunction(fn, self.plan)
            self._functions[fn] = decoded
        return decoded


def decoded_program(module: Module, plan: InjectionPlan | None = None) -> DecodedProgram:
    """The module's decode cache, rebuilt whenever its version changes.

    With a ``plan``, the decoded program lives on the plan instead of the
    module: the same pristine module can serve plain execution and any
    number of direct-injection engines (one per site category) without the
    caches trampling each other.
    """
    if plan is not None:
        program = plan._decoded
        if program is None or program.version != module.version:
            program = DecodedProgram(module, plan)
            plan._decoded = program
        return program
    program = getattr(module, "_vm_decoded", None)
    if program is None or program.version != module.version:
        program = DecodedProgram(module)
        module._vm_decoded = program
    return program
