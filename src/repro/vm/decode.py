"""Pre-decoded executable form of IR functions — the interpreter fast path.

The naive interpreter resolved every operand (`isinstance(o, Constant)`),
re-evaluated every constant, and walked a long ``isinstance`` chain per
*dynamic* instruction.  All of that work is invariant per *static*
instruction, so this module hoists it: each :class:`~repro.ir.module.Function`
is decoded once into per-block records where

* every operand is a pre-resolved ``(is_reg, payload)`` pair — constants are
  already Python values, registers are dictionary keys;
* every instruction is a specialised closure ``ex(vm, regs)`` built by a
  per-class handler table (no ``isinstance`` at run time);
* phi nodes become per-predecessor-edge lookup tables;
* terminators become integer-tagged records driving the block loop.

Decoded programs are cached on the module (``module._vm_decoded``) and
invalidated by :attr:`Module.version`, which every structural IR mutation
bumps.  Decoding preserves bit-exact semantics and the exact
scalar/vector/step accounting of the original interpreter loop — including
its *lazy* error behaviour: malformed instructions only raise when executed,
never at decode time.
"""

from __future__ import annotations

from ..errors import InvalidOperation
from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    CastOp,
    CompareOp,
    CondBranch,
    ExtractElement,
    FNeg,
    GetElementPtr,
    InsertElement,
    Load,
    Phi,
    Return,
    Select,
    ShuffleVector,
    Store,
    Unreachable,
)
from ..ir.intrinsics import get_intrinsic, is_intrinsic_name
from ..ir.module import Function, Module
from ..ir.types import VectorType
from ..ir.values import (
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ConstantVector,
    UndefValue,
)
from . import ops
from .bits import round_f32

# Terminator tags.
T_BR = 0
T_CONDBR = 1
T_RET = 2
T_UNREACHABLE = 3


def evaluate_constant(c: Constant):
    """Evaluate an IR constant to its runtime Python value (pure)."""
    if isinstance(c, ConstantInt):
        return c.value
    if isinstance(c, ConstantFloat):
        return round_f32(c.value) if c.type.bits == 32 else c.value
    if isinstance(c, ConstantVector):
        return [evaluate_constant(e) for e in c.elements]
    if isinstance(c, ConstantPointerNull):
        return 0
    if isinstance(c, UndefValue):
        # Deterministic zero for undef: fault campaigns must be replayable.
        if isinstance(c.type, VectorType):
            return [0.0 if c.type.element.is_float() else 0] * c.type.length
        if c.type.is_float():
            return 0.0
        return 0
    raise InvalidOperation(f"cannot evaluate constant {c!r}")


def _spec(value):
    """Resolve one operand to a ``(is_reg, payload)`` pair."""
    if isinstance(value, Constant):
        return False, evaluate_constant(value)
    return True, value


def _raiser(message: str):
    def ex(vm, regs):
        raise InvalidOperation(message)

    return ex


# -- per-class closure builders ------------------------------------------------
#
# Each builder runs once per static instruction and returns ``ex(vm, regs)``.
# The closure writes its result straight into ``regs[instr]`` (void results
# are simply not stored — nothing can reference them).


def _build_binop(instr: BinaryOp):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])
    ty = instr.type
    if isinstance(ty, VectorType):
        fn = ops.binop_fn(instr.opcode, ty.element)

        def ex(vm, regs):
            a = regs[p0] if r0 else p0
            b = regs[p1] if r1 else p1
            regs[instr] = [fn(x, y) for x, y in zip(a, b)]

    else:
        fn = ops.binop_fn(instr.opcode, ty)

        def ex(vm, regs):
            regs[instr] = fn(regs[p0] if r0 else p0, regs[p1] if r1 else p1)

    return ex


def _build_compare(instr: CompareOp):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])
    operand_ty = instr.lhs.type
    if isinstance(operand_ty, VectorType):
        fn = ops.compare_fn(instr.opcode, instr.predicate, operand_ty.element)

        def ex(vm, regs):
            a = regs[p0] if r0 else p0
            b = regs[p1] if r1 else p1
            regs[instr] = [int(fn(x, y)) for x, y in zip(a, b)]

    else:
        fn = ops.compare_fn(instr.opcode, instr.predicate, operand_ty)

        def ex(vm, regs):
            regs[instr] = int(fn(regs[p0] if r0 else p0, regs[p1] if r1 else p1))

    return ex


def _build_select(instr: Select):
    rc, pc = _spec(instr.operands[0])
    ra, pa = _spec(instr.operands[1])
    rb, pb = _spec(instr.operands[2])
    if instr.condition.type.is_vector():

        def ex(vm, regs):
            cond = regs[pc] if rc else pc
            a = regs[pa] if ra else pa
            b = regs[pb] if rb else pb
            regs[instr] = [x if c else y for c, x, y in zip(cond, a, b)]

    else:

        def ex(vm, regs):
            regs[instr] = (
                (regs[pa] if ra else pa)
                if (regs[pc] if rc else pc)
                else (regs[pb] if rb else pb)
            )

    return ex


def _build_cast(instr: CastOp):
    r0, p0 = _spec(instr.operands[0])
    src_ty = instr.operands[0].type
    dst_ty = instr.type
    if isinstance(dst_ty, VectorType):
        fn = ops.cast_fn(instr.opcode, src_ty.scalar_type, dst_ty.element)

        def ex(vm, regs):
            regs[instr] = [fn(x) for x in (regs[p0] if r0 else p0)]

    else:
        fn = ops.cast_fn(instr.opcode, src_ty, dst_ty)

        def ex(vm, regs):
            regs[instr] = fn(regs[p0] if r0 else p0)

    return ex


def _build_gep(instr: GetElementPtr):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])
    stride = instr.base.type.pointee.store_size()
    if isinstance(instr.index.type, VectorType):

        def ex(vm, regs):
            base = regs[p0] if r0 else p0
            idx = regs[p1] if r1 else p1
            regs[instr] = [base + i * stride for i in idx]

    else:

        def ex(vm, regs):
            regs[instr] = (regs[p0] if r0 else p0) + (regs[p1] if r1 else p1) * stride

    return ex


def _build_load(instr: Load):
    r0, p0 = _spec(instr.operands[0])
    ty = instr.type

    def ex(vm, regs):
        regs[instr] = vm.memory.read_value(ty, regs[p0] if r0 else p0)

    return ex


def _build_store(instr: Store):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])
    ty = instr.value.type

    def ex(vm, regs):
        vm.memory.write_value(ty, regs[p1] if r1 else p1, regs[p0] if r0 else p0)

    return ex


def _build_alloca(instr: Alloca):
    allocated = instr.allocated_type
    count = instr.count
    label = instr.name or "alloca"

    def ex(vm, regs):
        regs[instr] = vm.memory.alloc_typed(allocated, count, label=label)

    return ex


def _build_extractelement(instr: ExtractElement):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])

    def ex(vm, regs):
        vec = regs[p0] if r0 else p0
        i = int(regs[p1] if r1 else p1)
        if not 0 <= i < len(vec):
            # LLVM: poison. Deterministic choice: wrap modulo length.
            i %= len(vec)
        regs[instr] = vec[i]

    return ex


def _build_insertelement(instr: InsertElement):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])
    r2, p2 = _spec(instr.operands[2])

    def ex(vm, regs):
        out = list(regs[p0] if r0 else p0)
        i = int(regs[p2] if r2 else p2)
        if not 0 <= i < len(out):
            i %= len(out)
        out[i] = regs[p1] if r1 else p1
        regs[instr] = out

    return ex


def _build_shufflevector(instr: ShuffleVector):
    r0, p0 = _spec(instr.operands[0])
    r1, p1 = _spec(instr.operands[1])
    mask = instr.mask

    def ex(vm, regs):
        joined = list(regs[p0] if r0 else p0) + list(regs[p1] if r1 else p1)
        regs[instr] = [joined[m] for m in mask]

    return ex


def _build_fneg(instr: FNeg):
    r0, p0 = _spec(instr.operands[0])
    if instr.type.is_vector():

        def ex(vm, regs):
            regs[instr] = [-x for x in (regs[p0] if r0 else p0)]

    else:

        def ex(vm, regs):
            regs[instr] = -(regs[p0] if r0 else p0)

    return ex


def _fetch_args(specs):
    """Generic argument-list fetcher for call-like closures."""
    if len(specs) == 2:
        (r0, p0), (r1, p1) = specs
        return lambda regs: [regs[p0] if r0 else p0, regs[p1] if r1 else p1]
    if len(specs) == 1:
        ((r0, p0),) = specs
        return lambda regs: [regs[p0] if r0 else p0]
    if len(specs) == 3:
        (r0, p0), (r1, p1), (r2, p2) = specs
        return lambda regs: [
            regs[p0] if r0 else p0,
            regs[p1] if r1 else p1,
            regs[p2] if r2 else p2,
        ]
    return lambda regs: [regs[p] if r else p for r, p in specs]


def _build_math_call(instr: Call, name: str, info):
    op = name.split(".")[1]
    fn = ops.MATH_FNS[op]
    specs = [_spec(o) for o in instr.operands]
    ty = info.function_type.return_type
    if isinstance(ty, VectorType):
        f32 = ty.element.bits == 32
        if len(specs) == 1:
            ((r0, p0),) = specs

            def ex(vm, regs):
                out = [fn(x) for x in (regs[p0] if r0 else p0)]
                regs[instr] = [round_f32(x) for x in out] if f32 else out

        else:
            (r0, p0), (r1, p1) = specs

            def ex(vm, regs):
                a = regs[p0] if r0 else p0
                b = regs[p1] if r1 else p1
                out = [fn(x, y) for x, y in zip(a, b)]
                regs[instr] = [round_f32(x) for x in out] if f32 else out

        return ex
    f32 = ty.bits == 32
    argf = _fetch_args(specs)

    def ex(vm, regs):
        r = fn(*argf(regs))
        regs[instr] = round_f32(r) if f32 else r

    return ex


def _build_call(instr: Call):
    callee = instr.callee
    name = callee.name
    specs = [_spec(o) for o in instr.operands]
    if not callee.is_declaration:
        argf = _fetch_args(specs)
        if instr.has_lvalue():

            def ex(vm, regs):
                regs[instr] = vm._exec_function(callee, argf(regs))

        else:

            def ex(vm, regs):
                vm._exec_function(callee, argf(regs))

        return ex

    if is_intrinsic_name(name):
        info = get_intrinsic(name)
        kind = info.kind
        if kind == "math":
            return _build_math_call(instr, name, info)
        if kind in ("reduce", "mask-reduce"):
            ret = info.function_type.return_type
            argf = _fetch_args(specs)

            def ex(vm, regs):
                regs[instr] = ops.reduce_intrinsic(name, ret, argf(regs))

            return ex
        argf = _fetch_args(specs)
        if instr.has_lvalue():

            def ex(vm, regs):
                regs[instr] = vm._intrinsic(info, instr, argf(regs))

        else:

            def ex(vm, regs):
                vm._intrinsic(info, instr, argf(regs))

        return ex

    # External call — the VULFI/detector runtime hot path: specialise the
    # common arities so no intermediate argument list is built.
    store = instr.has_lvalue()
    if len(specs) == 3:
        (r0, p0), (r1, p1), (r2, p2) = specs

        def ex(vm, regs):
            ext = vm.externals.get(name)
            if ext is None:
                raise InvalidOperation(f"call to unbound external @{name}")
            out = ext(
                regs[p0] if r0 else p0,
                regs[p1] if r1 else p1,
                regs[p2] if r2 else p2,
            )
            if store:
                regs[instr] = out

        return ex
    argf = _fetch_args(specs)

    def ex(vm, regs):
        ext = vm.externals.get(name)
        if ext is None:
            raise InvalidOperation(f"call to unbound external @{name}")
        out = ext(*argf(regs))
        if store:
            regs[instr] = out

    return ex


_BUILDERS = {
    BinaryOp: _build_binop,
    CompareOp: _build_compare,
    Select: _build_select,
    CastOp: _build_cast,
    GetElementPtr: _build_gep,
    Load: _build_load,
    Store: _build_store,
    Alloca: _build_alloca,
    ExtractElement: _build_extractelement,
    InsertElement: _build_insertelement,
    ShuffleVector: _build_shufflevector,
    FNeg: _build_fneg,
    Call: _build_call,
}


def _decode_step(instr):
    builder = _BUILDERS.get(type(instr))
    if builder is None:
        # Matches the interpreter's lazy behaviour: only raise if executed.
        return _raiser(f"cannot execute opcode {instr.opcode}")
    try:
        return builder(instr)
    except InvalidOperation as exc:
        return _raiser(str(exc))


class DecodedBlock:
    """One basic block, fully resolved for execution."""

    __slots__ = (
        "source",
        "phis",
        "phi_total",
        "phi_scalar",
        "phi_vector",
        "steps",
        "term",
    )

    def __init__(self, source):
        self.source = source
        # [(phi, {pred_block: (is_reg, payload)})], leading phis only.
        self.phis = []
        self.phi_total = 0
        self.phi_scalar = 0
        self.phi_vector = 0
        # [(ex, is_vector, opcode)] for non-phi, non-terminator instructions.
        self.steps = []
        # (tag, is_vector, opcode, payload) or None for unterminated blocks.
        self.term = None


class DecodedFunction:
    """A function decoded into :class:`DecodedBlock` records."""

    __slots__ = ("fn", "name", "entry", "blocks")

    def __init__(self, fn: Function):
        self.fn = fn
        self.name = fn.name
        self.blocks = {block: DecodedBlock(block) for block in fn.blocks}
        for block, decoded in self.blocks.items():
            self._decode_block(block, decoded)
        self.entry = self.blocks[fn.entry]

    def _decode_block(self, block, decoded: DecodedBlock) -> None:
        instructions = block.instructions
        index = 0
        n = len(instructions)

        # Leading phis evaluate in parallel against the predecessor edge.
        while index < n and isinstance(instructions[index], Phi):
            phi = instructions[index]
            table = {}
            for value, pred in phi.incoming():
                # First edge wins on duplicates, like Phi.incoming_for.
                if pred not in table:
                    table[pred] = _spec(value)
            decoded.phis.append((phi, table))
            decoded.phi_total += 1
            if phi.type.is_vector():
                decoded.phi_vector += 1
            else:
                decoded.phi_scalar += 1
            index += 1

        while index < n:
            instr = instructions[index]
            index += 1
            if instr.is_terminator:
                decoded.term = self._decode_terminator(instr)
                break
            decoded.steps.append(
                (_decode_step(instr), instr.is_vector_instruction, instr.opcode)
            )

    def _decode_terminator(self, instr):
        isvec = instr.is_vector_instruction
        opcode = instr.opcode
        if isinstance(instr, Branch):
            return (T_BR, isvec, opcode, self.blocks[instr.target])
        if isinstance(instr, CondBranch):
            r, p = _spec(instr.condition)
            return (
                T_CONDBR,
                isvec,
                opcode,
                (r, p, self.blocks[instr.true_target], self.blocks[instr.false_target]),
            )
        if isinstance(instr, Return):
            rv = instr.return_value
            return (T_RET, isvec, opcode, None if rv is None else _spec(rv))
        assert isinstance(instr, Unreachable)
        return (T_UNREACHABLE, isvec, opcode, None)


class DecodedProgram:
    """Lazily decoded functions of one module at one version."""

    __slots__ = ("version", "_functions")

    def __init__(self, module: Module):
        self.version = module.version
        self._functions: dict[Function, DecodedFunction] = {}

    def function(self, fn: Function) -> DecodedFunction:
        decoded = self._functions.get(fn)
        if decoded is None:
            decoded = DecodedFunction(fn)
            self._functions[fn] = decoded
        return decoded


def decoded_program(module: Module) -> DecodedProgram:
    """The module's decode cache, rebuilt whenever its version changes."""
    program = getattr(module, "_vm_decoded", None)
    if program is None or program.version != module.version:
        program = DecodedProgram(module)
        module._vm_decoded = program
    return program
