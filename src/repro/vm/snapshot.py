"""Golden-trace checkpoints: copy-on-write VM snapshots and resume state.

A *checkpoint* captures everything the interpreter needs to re-enter the
middle of a deterministic execution: the memory image, the live registers
of the (depth-1) frame, the block cursor plus the phi predecessor edge,
the :class:`~repro.vm.interpreter.ExecutionStats` counters, and the
position in the golden run's dynamic-site stream.  The fault injector
records a tape of them during the count (golden) run; every faulty run
then restores the nearest checkpoint strictly before its target site and
executes only the suffix (see DESIGN.md, "why prefix skipping is sound").

Snapshot positions depend on the engine's hook granularity: the decoded
engines snapshot at (depth-1) block boundaries, the compiled engine at
superblock-chain boundaries (:mod:`repro.vm.compile`).  Either way the
frame below restores into both executors unchanged — it names a function,
a block, and the phi predecessor edge, all of which are chain heads when
the compiled engine recorded them — so golden and faulty runs of the same
engine always agree on where snapshots and convergence checks can land.

Memory snapshots are page-granular and copy-on-write: :class:`Memory`
tracks which pages were written since the previous snapshot, so each
checkpoint copies only dirty pages and shares the rest with its
predecessor — a tape over a mostly-read working set costs little more
than one full copy.

Nothing here is picklable across processes on purpose: frames key their
registers by IR instruction objects and block cursors by IR blocks, which
are only meaningful against the parent's module object.  Parallel workers
rebuild tapes from their own golden runs instead
(:mod:`repro.core.parallel`).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from struct import pack

import numpy as np

#: Snapshot page size in bytes.  Allocations in the workloads are a few KB,
#: so 1 KiB pages keep the dirty-tracking sets tiny while still sharing
#: untouched spans of large buffers between checkpoints.
PAGE_SIZE = 1024
PAGE_SHIFT = 10


class ConvergedToGolden(Exception):
    """Control-flow signal: the faulty run's architectural state matched a
    recorded golden checkpoint after injection, so the remaining suffix is
    the golden suffix — outcome Benign, final output the golden output.

    Deliberately *not* a :class:`~repro.errors.VMTrap`: it must never be
    classified as a crash.
    """

    def __init__(self, checkpoint: "Checkpoint"):
        super().__init__(
            "faulty run re-converged with the golden trace at dynamic site "
            f"{checkpoint.dynamic_count}"
        )
        self.checkpoint = checkpoint


def split_pages(data) -> tuple:
    """A bytearray's content as a tuple of immutable page-sized chunks."""
    return tuple(
        bytes(data[i : i + PAGE_SIZE]) for i in range(0, len(data), PAGE_SIZE)
    )


class AllocationImage:
    """One allocation's snapshot: identity plus page contents."""

    __slots__ = ("base", "size", "label", "pages")

    def __init__(self, base: int, size: int, label: str, pages: tuple):
        self.base = base
        self.size = size
        self.label = label
        self.pages = pages

    def matches(self, alloc) -> bool:
        """Bitwise: does the live allocation equal this image?"""
        if alloc.base != self.base or alloc.size != self.size:
            return False
        view = memoryview(alloc.data)
        off = 0
        for page in self.pages:
            end = off + len(page)
            if view[off:end] != page:
                return False
            off = end
        return True


class MemoryImage:
    """A full :class:`~repro.vm.memory.Memory` snapshot (allocation list,
    bump pointer, page images).  Pages are shared with the previous image
    for every page not written since it was taken."""

    __slots__ = ("images", "next_base", "bytes_allocated", "_by_base")

    def __init__(self, images: list, next_base: int, bytes_allocated: int):
        self.images = images
        self.next_base = next_base
        self.bytes_allocated = bytes_allocated
        self._by_base = {img.base: img for img in images}

    def image_at(self, base: int) -> AllocationImage | None:
        return self._by_base.get(base)

    def matches(self, memory) -> bool:
        """Bitwise: does the live memory equal this image?

        Allocation identity (count, bases, sizes, the bump pointer) must
        match too — a faulty run that allocated differently has not
        re-converged even if the common bytes agree.
        """
        allocs = memory._allocations
        if len(allocs) != len(self.images) or memory._next != self.next_base:
            return False
        for alloc, img in zip(allocs, self.images):
            if not img.matches(alloc):
                return False
        return True


# -- register snapshots -----------------------------------------------------
#
# Register files map IR values (Argument / Instruction objects) to Python
# scalars, lists of scalars, or — in the compiled engine's batched tier —
# packed ndarrays (:mod:`repro.vm.bits`).  The decoded closures mutate
# vector registers in place, so snapshots (and resume copies) need depth-1
# copies of both list and ndarray values; the scalar elements themselves
# are immutable ints/floats.


def copy_regs(regs: dict) -> dict:
    """Depth-1 copy of a register file (vectors copied, scalars shared)."""
    out = {}
    for k, v in regs.items():
        t = type(v)
        out[k] = v.copy() if t is list or t is np.ndarray else v
    return out


def _scalar_matches(a, b) -> bool:
    # Type-strict throughout (1 vs 1.0 vs True are different register
    # contents), and floats compare by bit pattern: -0.0 != 0.0 and
    # NaN == same-NaN here, because a "converged" state must reproduce the
    # golden suffix *bit for bit* — value equality is not enough.
    if type(a) is not type(b):
        return False
    if type(a) is float:
        return pack("<d", a) == pack("<d", b)
    return a == b


def _vector_matches(lv, sv) -> bool:
    # Packed-vs-packed compares raw bytes (bit-identical by definition; a
    # raw-vs-quieted f32 NaN pair fails, which is merely conservative —
    # quieting is unobservable downstream, so a missed convergence only
    # delays classification, never changes it).  Mixed representations
    # canonicalize through ``tolist`` — an exact widening — and compare
    # lane-wise like two lists.
    lp = type(lv) is np.ndarray
    sp = type(sv) is np.ndarray
    if lp and sp and lv.dtype == sv.dtype:
        return lv.shape == sv.shape and lv.tobytes() == sv.tobytes()
    a = lv.tolist() if lp else lv
    b = sv.tolist() if sp else sv
    if type(a) is not list or type(b) is not list or len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if not _scalar_matches(x, y):
            return False
    return True


def regs_match(live: dict, saved: dict) -> bool:
    """Bitwise comparison of a live register file against a snapshot.

    Conservative by construction: any extra, missing, or bit-different
    register fails the match (a leftover register from a divergent control
    path counts as divergence even if it is dead).
    """
    if len(live) != len(saved):
        return False
    for key, lv in live.items():
        sv = saved.get(key, _MISSING)
        if sv is _MISSING:
            return False
        tl = type(lv)
        if tl is list or tl is np.ndarray:
            if not _vector_matches(lv, sv):
                return False
        elif not _scalar_matches(lv, sv):
            return False
    return True


_MISSING = object()


# -- checkpoints ------------------------------------------------------------


@dataclass
class FrameState:
    """The resumable state of one depth-1 interpreter frame, captured at a
    block start *before* that block's phis evaluated."""

    function_name: str
    block: object  # IR Block — the block about to execute
    prev_block: object  # IR Block | None — the phi predecessor edge
    regs: dict  # depth-1 copied register file


@dataclass
class Checkpoint:
    """One recorded golden-run state at a dynamic-site interval boundary."""

    invocation: int  # which top-level vm.run() call this frame belongs to
    dynamic_count: int  # dynamic fault sites consumed so far
    stats_total: int
    stats_scalar: int
    stats_vector: int
    by_opcode: object  # Counter | None (None unless count_opcodes)
    frame: FrameState
    memory: MemoryImage
    index: int = -1  # position in the owning tape, set by record()


@dataclass
class ResumePoint:
    """Pending restore handed to the interpreter: consumed by the
    ``invocation``-th top-level :meth:`Interpreter.run` call.

    ``on_restore`` runs after memory/stats are restored — the injector uses
    it to fast-forward the :class:`~repro.core.runtime.FaultRuntime`'s
    dynamic-site counter to the checkpoint's position.
    """

    invocation: int
    checkpoint: Checkpoint
    on_restore: object = None  # zero-arg callable | None


class CheckpointTape:
    """The ordered checkpoints of one golden run.

    Valid only against the module version it was recorded from (an IR
    mutation invalidates every block cursor and register key) and only
    within the recording process.
    """

    __slots__ = ("interval", "module_version", "checkpoints", "_counts")

    def __init__(self, interval: int, module_version: int):
        self.interval = interval
        self.module_version = module_version
        self.checkpoints: list[Checkpoint] = []
        self._counts: list[int] = []

    def __len__(self) -> int:
        return len(self.checkpoints)

    @property
    def last_memory(self) -> MemoryImage | None:
        """The previous checkpoint's memory image — the copy-on-write base
        for the next snapshot."""
        return self.checkpoints[-1].memory if self.checkpoints else None

    def record(self, checkpoint: Checkpoint) -> None:
        checkpoint.index = len(self.checkpoints)
        self.checkpoints.append(checkpoint)
        self._counts.append(checkpoint.dynamic_count)

    def best_for(self, k: int) -> Checkpoint | None:
        """The latest checkpoint *strictly before* dynamic site ``k``.

        Strict: a checkpoint at ``dynamic_count == k`` already consumed
        site ``k`` in the golden run, so restoring it would skip the
        injection entirely.
        """
        i = bisect_left(self._counts, k) - 1
        return self.checkpoints[i] if i >= 0 else None
