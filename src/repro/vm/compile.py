"""Block-compiled execution engine: threaded-code superblocks.

The decoded interpreter (:mod:`repro.vm.decode`) already hoists operand
resolution and handler dispatch out of the dynamic loop, but every dynamic
instruction still pays a closure call, per-instruction step accounting, and
a dictionary store.  This module compiles each basic block — and each
*superblock*, the chain of blocks reachable through unconditional branches —
into one specialized Python function, generated as source and
``exec``-compiled once per module version:

* constant operands are folded into the generated source;
* register reads become local variables after the first load (defs are
  still written through to the register dict, so checkpoints, convergence
  comparison, and decoded fallback always see the exact interpreter state);
* per-class handlers are inlined (f32 arithmetic, signed compares, geps,
  masked AVX/SSE intrinsics, ...), with vector lane loops unrolled up to
  width :data:`UNROLL_MAX`;
* step accounting is batched: one compile-time-constant precheck per chain,
  one commit per chain exit, and an extra commit immediately before every
  instruction that can trap, so stats are bit-exact at every trap;
* **batched vector tier** (:data:`BATCH_VECTORS`): vector registers whose
  element type has an exact ndarray dtype (:func:`repro.vm.bits.np_dtype`)
  live as packed NumPy arrays, and whole-vector binops, compares, casts,
  selects, fnegs, loads/stores, and masked loads/stores compile to single
  NumPy calls (:mod:`repro.vm.ops` ``*_bulk`` evaluators,
  :meth:`~repro.vm.memory.Memory.packed_reader`/``packed_writer``).  The
  canonical list representation remains the interface everywhere else: any
  read in a lane-wise context unpacks via ``tolist`` (an exact widening —
  see vm/bits.py), decoded fallback canonicalizes the whole register file
  first (:func:`repro.vm.decode.unpack_regs`), and convergence comparison
  understands both representations (:mod:`repro.vm.snapshot`).  Masked
  fault-site groups count active lanes with one vectorized reduction
  (``PlannedSite.active_bulk_fn``); dynamic-site increments and count-mode
  width-tape appends coalesce into one update per commit, which keeps the
  tape bit-exact at every trap point (every trap is preceded by a commit);
* chains whose final conditional branch loops back to their own head are
  compiled as an in-chain ``while`` loop: the back edge re-evaluates the
  head phis along the statically-known latch edge and only returns to the
  driver when a block hook is installed, the step budget nears exhaustion,
  or (inject variant) the next iteration's site span could contain the
  target — at which point the driver re-enters through the ordinary edge,
  reproducing today's per-iteration behaviour exactly.

Injection stays bit-identical to both existing engines.  Every chain that
bears fault sites is emitted in two variants:

* the **count** variant advances the dynamic-site counter (and the recorded
  site widths) with straight-line arithmetic — no entry-point calls at all;
* the **inject** variant prechecks the whole chain's maximum site span
  against the run's target indices and *falls back to the decoded
  interpreter* for the one block whose span contains the target — the
  decoded planned appliers then reproduce the spliced-chain injection
  (value, RNG draw, record, trap behaviour) bit for bit.

The same fallback handles the near-step-limit case (the decoded loop raises
at the exact instruction the budget crosses) and blocks that call defined
functions.  Checkpoint tapes and the convergence hook attach at chain
heads: golden (count) and faulty (inject) runs compile to the *same* chain
structure, so their depth-1 hook points coincide.

Compiled programs are cached like decoded ones: on ``plan._compiled`` when
an :class:`~repro.vm.decode.InjectionPlan` is present, else on
``module._vm_compiled``, both invalidated by :attr:`Module.version`.
"""

from __future__ import annotations

import math
import os

import numpy as np

from ..errors import InvalidOperation, StepLimitExceeded
from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Call,
    CastOp,
    CompareOp,
    ExtractElement,
    FNeg,
    GetElementPtr,
    InsertElement,
    Load,
    Phi,
    Select,
    ShuffleVector,
    Store,
)
from ..ir.intrinsics import MASK_I1, MASK_SIGN, get_intrinsic, is_intrinsic_name
from ..ir.module import Function, Module
from ..ir.types import FloatType, IntType, PointerType, VectorType
from . import ops
from .bits import (
    VECTOR_EVENTS,
    as_lanes,
    as_packed,
    np_dtype,
    quiet_nan_f32,
    round_f32,
    wrap_int,
)
from .decode import (
    InjectionPlan,
    T_BR,
    T_CONDBR,
    T_RET,
    T_UNREACHABLE,
    _decode_step,
    _spec,
    decoded_program,
)

#: Maximum vector width whose lane loops are unrolled in generated source
#: (covers the SSE/AVX widths 4 and 8 the workloads use).
UNROLL_MAX = 8

#: Maximum number of basic blocks folded into one superblock chain.
CHAIN_MAX_BLOCKS = 8

#: Whether newly compiled programs emit the packed-ndarray vector tier.
#: Captured into the generated source at compile time, so one program is
#: internally consistent; toggle via :func:`set_vector_batching` (perf
#: harness A/B runs compile fresh modules per mode).  The
#: ``REPRO_VECTOR_BATCHING`` env var sets the process default (``0``
#: disables), so CI can run whole differential sweeps on the per-lane
#: tier without touching test code.
BATCH_VECTORS = os.environ.get("REPRO_VECTOR_BATCHING", "1") != "0"


def set_vector_batching(enabled: bool) -> bool:
    """Enable/disable the batched vector tier for *subsequently compiled*
    programs; returns the previous setting."""
    global BATCH_VECTORS
    previous = BATCH_VECTORS
    BATCH_VECTORS = bool(enabled)
    return previous

#: Process-wide compile counters, mirroring ``DECODE_EVENTS``: ``functions``
#: increments once per :class:`CompiledFunction` build.  Tests use it to
#: prove pool workers compile each module exactly once per process and that
#: IR mutation (a ``Module.version`` bump) forces a recompile.
COMPILE_EVENTS = {"functions": 0}

#: Integer opcodes that raise :class:`~repro.errors.ArithmeticTrap`.
_TRAP_INT_OPS = frozenset({"sdiv", "srem", "udiv", "urem"})

_SIGNED_ICMP_SYMBOL = {
    "eq": "==",
    "ne": "!=",
    "slt": "<",
    "sle": "<=",
    "sgt": ">",
    "sge": ">=",
}

_MEMORY_INTRINSICS = ("maskload", "maskstore", "gather", "scatter")


class _Fallback:
    """Singleton sentinel: 'execute my head block through the decoded
    interpreter instead' (target site in span, or step budget nearly
    exhausted)."""

    __slots__ = ()

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<fallback>"


FALLBACK = _Fallback()


class _Edge:
    """A pre-resolved control-flow edge returned by chain closures: the
    target block's entry plus the phi predecessor edge."""

    __slots__ = ("entry", "prev")

    def __init__(self, entry: "CompiledEntry", prev):
        self.entry = entry
        self.prev = prev


class CompiledEntry:
    """One basic block's compiled entry point.

    ``fn_count`` / ``fn_inject`` execute the superblock chain *starting* at
    this block (``None`` for blocks that always run decoded — those calling
    defined functions).  Every block gets an entry, so checkpoints can
    resume and decoded fallback can continue at any block boundary.
    """

    __slots__ = ("source", "dblock", "fn_count", "fn_inject")

    def __init__(self, source, dblock):
        self.source = source
        self.dblock = dblock
        self.fn_count = None
        self.fn_inject = None


_API_WIDTHS: tuple | None = None


def _entry_widths() -> tuple:
    """Per-entry-point value bit widths, indexed like ``ENTRY_INDEX``.

    Imported lazily from :mod:`repro.core.runtime` so the vm layer carries
    no load-time dependency on the injection core (mirrors how
    ``PlannedSite.entry_index`` already encodes the same table).
    """
    global _API_WIDTHS
    if _API_WIDTHS is None:
        from ..core.runtime import API

        _API_WIDTHS = tuple(bits for (_ty, bits, _isf) in API.values())
    return _API_WIDTHS


def _phi_err(phi, prev):
    """Raise the exact missing-phi-edge error the interpreter would."""
    phi.incoming_for(prev)  # raises IRError
    raise InvalidOperation(  # pragma: no cover - incoming_for always raises
        f"phi {phi!r} resolved no edge for {prev!r}"
    )


# -- single-block decoded fallback ---------------------------------------------


def exec_decoded_block(vm, dfn, dblock, regs, prev_source):
    """Execute exactly one decoded block with the interpreter's accounting.

    A verbatim single-block replica of ``Interpreter._exec_blocks``'s inner
    loop — per-instruction charges, the exact step-limit raise point, phi
    parallel evaluation, planned injection appliers — used for chains that
    bailed out (site in span, budget nearly exhausted) and for blocks that
    are never compiled.  Returns ``(next_source_block, prev_source_block)``
    to continue, or ``(None, return_value)`` on ``ret``.
    """
    stats = vm.stats
    limit = vm.step_limit
    phis = dblock.phis
    if phis:
        values = []
        for phi, table in phis:
            spec = table.get(prev_source)
            if spec is None:
                phi.incoming_for(prev_source)  # raises the exact IRError
            is_reg, payload = spec
            values.append(regs[payload] if is_reg else payload)
        for (phi, _), value in zip(phis, values):
            regs[phi] = value
        stats.total += dblock.phi_total
        stats.scalar += dblock.phi_scalar
        stats.vector += dblock.phi_vector
    fn_name = dfn.name
    for ex, isvec, _opcode in dblock.steps:
        stats.total += 1
        if stats.total > limit:
            raise StepLimitExceeded(
                f"@{fn_name}: exceeded {limit} dynamic instructions"
            )
        if isvec:
            stats.vector += 1
        else:
            stats.scalar += 1
        ex(vm, regs)
    term = dblock.term
    if term is None:
        raise InvalidOperation(
            f"@{fn_name}:{dblock.source.name}: fell off the end of a block"
        )
    tag, isvec, _opcode, payload = term
    stats.total += 1
    if stats.total > limit:
        raise StepLimitExceeded(
            f"@{fn_name}: exceeded {limit} dynamic instructions"
        )
    if isvec:
        stats.vector += 1
    else:
        stats.scalar += 1
    if tag == T_BR:
        return payload.source, dblock.source
    if tag == T_CONDBR:
        is_reg, cond, true_block, false_block = payload
        cv = regs[cond] if is_reg else cond
        return (true_block if cv else false_block).source, dblock.source
    if tag == T_RET:
        if payload is None:
            return None, None
        is_reg, value = payload
        return None, (regs[value] if is_reg else value)
    assert tag == T_UNREACHABLE
    raise InvalidOperation(f"@{fn_name}: reached 'unreachable'")


# -- source generation ---------------------------------------------------------


class _FunctionCompiler:
    """Generates and ``exec``-compiles all chain closures of one function."""

    def __init__(self, cfn: "CompiledFunction", dfn, plan: InjectionPlan | None):
        self.cfn = cfn
        self.dfn = dfn
        self.fn = dfn.fn
        self.plan = plan
        self.entries = cfn.entries
        self.sources: list[str] = []
        self.counter = 0
        self._value_names: dict = {}
        self._block_names: dict = {}
        self._edge_names: dict = {}
        self._dtype_names: dict = {}
        self._packed_consts: dict = {}
        self.env = {
            "__builtins__": {},
            "_FB": FALLBACK,
            "_rf": round_f32,
            "_wi": wrap_int,
            "_IO": InvalidOperation,
            "_phi_err": _phi_err,
            "_ul": as_lanes,
            "_pk": as_packed,
            "_VE": VECTOR_EVENTS,
            "_WH": np.where,
            "_SB": np.signbit,
            "_QN": quiet_nan_f32,
            "int": int,
            "list": list,
            "zip": zip,
        }

    # -- naming ----------------------------------------------------------------

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"_{prefix}{self.counter}"

    def bind(self, obj, prefix: str) -> str:
        name = self.fresh(prefix)
        self.env[name] = obj
        return name

    def value_key(self, value) -> str:
        """Env name of an IR value used as a register-dict key."""
        name = self._value_names.get(value)
        if name is None:
            name = self.bind(value, "i")
            self._value_names[value] = name
        return name

    def block_name(self, block) -> str:
        name = self._block_names.get(block)
        if name is None:
            name = self.bind(block, "b")
            self._block_names[block] = name
        return name

    def edge_name(self, target_block, prev_block) -> str:
        key = (target_block, prev_block)
        name = self._edge_names.get(key)
        if name is None:
            name = self.bind(_Edge(self.entries[target_block], prev_block), "e")
            self._edge_names[key] = name
        return name

    def dtype_name(self, dtype) -> str:
        name = self._dtype_names.get(dtype)
        if name is None:
            name = self.bind(dtype, "dt")
            self._dtype_names[dtype] = name
        return name

    def packed_const(self, lanes, dtype) -> str:
        """Env name of a pre-packed constant-vector ndarray.

        Keyed by dtype plus ``repr`` of the lane list — never by value
        equality, which would collide -0.0 with 0.0.  The bound array is
        shared read-only: nothing in the generated code or the bulk
        evaluators mutates operand arrays in place.
        """
        key = (str(np.dtype(dtype)), repr(lanes))
        name = self._packed_consts.get(key)
        if name is None:
            name = self.bind(np.array(lanes, dtype), "kv")
            self._packed_consts[key] = name
        return name

    # -- chain formation -------------------------------------------------------

    def _compilable(self, block) -> bool:
        """Blocks calling defined functions always run decoded: a nested
        compiled frame would need its own driver anyway, and recursion
        through generated source buys nothing."""
        for instr in block.instructions:
            if isinstance(instr, Call) and not instr.callee.is_declaration:
                return False
        return True

    def _chain_for(self, head) -> list:
        chain = [head]
        seen = {head}
        while len(chain) < CHAIN_MAX_BLOCKS:
            term = self.dfn.blocks[chain[-1]].term
            if term is None or term[0] != T_BR:
                break
            nxt = term[3].source
            if nxt in seen or not self._compilable(nxt):
                break
            chain.append(nxt)
            seen.add(nxt)
        return chain

    def _chain_has_sites(self, chain) -> bool:
        plan = self.plan
        if plan is None:
            return False
        for block in chain:
            for instr in block.instructions:
                if instr in plan.lvalue or instr in plan.store:
                    return True
        return False

    # -- build -----------------------------------------------------------------

    def build(self) -> None:
        emitted: list[tuple] = []
        for block in self.fn.blocks:
            if not self._compilable(block):
                continue  # entry stays fn_count = fn_inject = None
            chain = self._chain_for(block)
            if self._chain_has_sites(chain):
                fi = self._emit_chain(block, chain, "inject")
                fc = self._emit_chain(block, chain, "count")
            else:
                fi = fc = self._emit_chain(block, chain, None)
            emitted.append((block, fi, fc))
        if not emitted:
            return
        source = "\n".join(self.sources)
        code = compile(
            source, f"<repro-compiled @{self.fn.name} v{self.cfn.version}>", "exec"
        )
        exec(code, self.env)
        for block, fi, fc in emitted:
            entry = self.entries[block]
            entry.fn_count = self.env[fc]
            entry.fn_inject = self.env[fi]

    def _emit_chain(self, head, chain, mode) -> str:
        name = self.fresh("c")
        em = _ChainEmitter(self, mode)
        # Self-loop chains (final condbr with exactly one successor equal to
        # the chain head) compile to an in-chain ``while`` loop; the head
        # phis dispatch dynamically once, then re-evaluate along the static
        # latch edge each iteration (see emit_term / emit_loop_phis).
        dterm = self.dfn.blocks[chain[-1]].term
        loop = False
        if dterm is not None and dterm[0] == T_CONDBR:
            _ir, _c, tb, fb = dterm[3]
            loop = (tb.source is head) != (fb.source is head)
        if loop:
            em.loop_head = head
            em.loop_dblock = self.dfn.blocks[head]
            em.loop_latch = chain[-1]
            defs = set()
            for block in chain:
                defs.update(block.instructions)
                defs.update(p for p, _t in self.dfn.blocks[block].phis)
            em.chain_defs = defs
        for j, block in enumerate(chain):
            dblock = self.dfn.blocks[block]
            if j == 0:
                em.emit_head_phis(dblock)
                if loop:
                    em.line("while True:")
                    em.base = 1
                    # Defer in-loop register writes: pre-register the head
                    # phis (their regs entries go stale each iteration once
                    # the back edge reassigns the temps).
                    em.loop_regs = {}
                    for phi, _table in dblock.phis:
                        target = (
                            em.vlocals.get(phi)
                            if em._phi_dtype(phi) is not None
                            else em.locals.get(phi)
                        )
                        if target is not None:
                            em.loop_regs[self.value_key(phi)] = target
            else:
                em.emit_interior_phis(dblock, chain[j - 1])
            em.emit_block_body(block, dblock, last=(j == len(chain) - 1))
        # Prologue: prechecks, then loads of everything loop-invariant
        # (stats fields, step limit, hook, runtime attrs, memory accessors,
        # external register reads).  The body runs under try/finally — the
        # finally writes the running locals back exactly once per call, on
        # returns and traps alike, so observable state at every escape
        # point matches the per-site attribute writes this replaces.
        prologue = [f"def {name}(vm, regs, prev):"]
        prologue.append("    stats = vm.stats")
        prologue.append("    _st = stats.total")
        prologue.append("    _sl = vm.step_limit")
        prologue.append(f"    if _st + {em.charged_total} > _sl:")
        prologue.append("        return _FB")
        prologue.append("    _ss = stats.scalar")
        prologue.append("    _sv = stats.vector")
        if mode is not None:
            prologue.append("    rt = vm.fault_runtime")
            prologue.append("    _dc = rt.dynamic_count")
            if mode == "inject":
                if loop:
                    prologue.append("    _mt = rt.max_target")
                    prologue.append("    _sh = rt.span_hits")
                    prologue.append(
                        f"    if _dc < _mt and _sh(_dc, _dc + {em.max_sites}):"
                    )
                else:
                    prologue.append(
                        f"    if _dc < rt.max_target and "
                        f"rt.span_hits(_dc, _dc + {em.max_sites}):"
                    )
                prologue.append("        return _FB")
            else:
                prologue.append("    _ws = rt.site_widths")
        if loop:
            prologue.append("    _bh = vm.block_hook")
        if em.packed_defs:
            prologue.append("    _vs = 0")
        for hoist in em.hoists:
            prologue.append("    " + hoist)
        prologue.append("    try:")
        body = ["    " + text for text in em.lines]
        epilogue = [
            "    finally:",
            "        stats.total = _st",
            "        stats.scalar = _ss",
            "        stats.vector = _sv",
        ]
        if mode is not None:
            epilogue.append("        rt.dynamic_count = _dc")
            if mode == "count":
                epilogue.append(
                    "        if rt.checkpoint_interval is not None "
                    "and _dc >= rt._next_checkpoint:"
                )
                epilogue.append("            rt.checkpoint_pending = True")
        if em.packed_defs:
            epilogue.append("        _VE['ndarray_slots'] += _vs")
        self.sources.append("\n".join(prologue + body + epilogue) + "\n")
        return name


class _ChainEmitter:
    """Emits the body of one chain closure (one variant)."""

    def __init__(self, fc: _FunctionCompiler, mode):
        self.fc = fc
        self.mode = mode  # None (no sites) | "count" | "inject"
        self.lines: list[str] = []
        self.locals: dict = {}
        # Packed-representation locals: IR value -> ndarray-holding local.
        # A value may appear in both caches (the two representations of the
        # same bits); neither is ever mutated in place, so they stay
        # consistent for the lifetime of the chain invocation.
        self.vlocals: dict = {}
        self.lcount = 0
        # Step accounting batched since the previous commit.
        self.pending = [0, 0, 0]
        # Whole-chain charge (the prologue precheck constant).
        self.charged_total = 0
        self.max_sites = 0
        # Dynamic-site counts / count-mode width bytes coalesced since the
        # previous commit (flushed in tape order at every commit, which
        # precedes every trap point — so the tape at any trap is exact).
        self.pending_sites = 0
        self.pending_widths = b""
        self.packed_defs = 0
        self.packed_flushed = 0
        self._mem_name = None
        self._packed_mems: dict = {}
        # Unknown-representation locals (list OR ndarray at run time, e.g.
        # a scalar select between vector registers inside a loop): reads
        # normalize through _ul/_pk, which accept both.
        self.ulocals: dict = {}
        # Prologue-level hoists (memory object, bulk accessors, reads of
        # registers defined outside the chain): emitted once per chain
        # call, ahead of any in-chain loop.
        self.hoists: list[str] = []
        # In-chain loop state (set by _emit_chain for self-loop chains).
        self.base = 0
        self.loop_head = None
        self.loop_dblock = None
        self.loop_latch = None
        # Inside an in-chain loop, register-dict writes are deferred: defs
        # land in locals only, and this key-expr -> local map is flushed to
        # ``regs`` immediately before every in-loop return (the only points
        # where control can leave the chain with the registers observable).
        # Exceptions (traps) abandon the run, so they need no flush.
        self.loop_regs: dict | None = None
        # Every register this chain defines (instructions and phis of all
        # chain blocks, precomputed before emission).  Reads of these must
        # never be hoisted to the prologue: a use can precede its def in
        # emission order (an interior-block phi feeding the loop head
        # through the back edge), so "not cached in locals yet" does not
        # imply loop-invariant.
        self.chain_defs: set = frozenset()

    # -- low-level emission ----------------------------------------------------

    def line(self, text: str, indent: int = 1) -> None:
        self.lines.append("    " * (indent + self.base) + text)

    def fresh_local(self) -> str:
        self.lcount += 1
        return f"v{self.lcount}"

    def pending_add(self, isvec: bool, total: int = 1) -> None:
        self.pending[0] += total
        if isvec:
            self.pending[2] += total
        else:
            self.pending[1] += total
        self.charged_total += total

    def pending_add_tax(self, group) -> None:
        d0 = group[0]
        n = len(group)
        self.pending[0] += d0.tax_total * n
        self.pending[1] += d0.tax_scalar * n
        self.pending[2] += d0.tax_vector * n
        self.charged_total += d0.tax_total * n

    def flush_sites(self) -> None:
        """Emit the coalesced dynamic-site bookkeeping accumulated since the
        previous flush: one ``_dc`` increment and (count mode) one tape
        extend, in site order."""
        if not self.pending_sites and not self.pending_widths:
            return
        if self.pending_sites:
            self.line(f"_dc += {self.pending_sites}")
        if self.mode == "count" and self.pending_widths:
            wb = self.fc.bind(self.pending_widths, "w")
            self.line(f"_ws.extend({wb})")
        self.pending_sites = 0
        self.pending_widths = b""

    def commit(self) -> None:
        """Flush all pending charges into the running locals.

        ``_st``/``_ss``/``_sv`` (and ``_dc``) are chain-locals; the real
        ``stats``/runtime attributes are written back exactly once per
        call, in the chain's ``finally`` — which runs on every return
        *and* on every trap, so observable state at any escape point is
        bit-identical to the per-attribute writes this replaces."""
        self.flush_sites()
        t, s, v = self.pending
        if t:
            self.line(f"_st += {t}")
        if s:
            self.line(f"_ss += {s}")
        if v:
            self.line(f"_sv += {v}")
        self.pending = [0, 0, 0]
        d = self.packed_defs - self.packed_flushed
        if d:
            self.line(f"_vs += {d}")
            self.packed_flushed = self.packed_defs

    def emit_exits(self) -> None:
        # Runtime/stats write-back now lives in the chain's ``finally``;
        # a return point only needs the pending charges committed.
        self.commit()

    def emit_regs_flush(self, indent: int = 1) -> None:
        """Write loop-deferred register updates back to ``regs`` — emitted
        before every in-loop return, so the register dict is canonical
        exactly when control can leave the chain."""
        for key, name in self.loop_regs.items():
            self.line(f"regs[{key}] = {name}", indent)

    def memref(self) -> str:
        if self._mem_name is None:
            self._mem_name = "mem"
            self.hoists.append("mem = vm.memory")
        return self._mem_name

    # -- operand expressions ---------------------------------------------------

    def const_expr(self, payload) -> str:
        if type(payload) is int:
            return repr(payload) if payload >= 0 else f"({payload!r})"
        if type(payload) is float:
            if payload == payload and payload not in (math.inf, -math.inf):
                return f"({payload!r})"
        return self.fc.bind(payload, "k")

    def rd(self, value) -> str:
        """Read an operand in canonical (list/scalar) representation,
        caching register loads in a chain-local."""
        is_reg, payload = _spec(value)
        if not is_reg:
            return self.const_expr(payload)
        return self.rd_reg(payload)

    def _emit_reg_load(self, text: str, payload) -> None:
        """Emit a ``regs`` load line — hoisted to the chain prologue when
        inside an in-chain loop.  Registers the chain never defines cannot
        change during one call, so those loads are loop-invariant.  Reads
        of the chain's own defs stay in place: a use can precede its def in
        emission order (an interior-block phi feeding the loop head through
        the back edge), and decoded closures write ``regs`` directly."""
        if self.loop_regs is not None and payload not in self.chain_defs:
            self.hoists.append(text)
        else:
            self.line(text)

    def rd_reg(self, payload) -> str:
        """Canonical read of one register, unpacking packed slots."""
        name = self.locals.get(payload)
        if name is None:
            name = self.fresh_local()
            vname = self.vlocals.get(payload)
            uname = self.ulocals.get(payload)
            if vname is not None:
                self.line(f"{name} = {vname}.tolist()")
            elif uname is not None:
                self.line(f"{name} = _ul({uname})")
            elif BATCH_VECTORS and isinstance(payload.type, VectorType):
                # The register may hold a packed slot left by an earlier
                # chain; _ul is a list passthrough otherwise.
                self._emit_reg_load(
                    f"{name} = _ul(regs[{self.fc.value_key(payload)}])",
                    payload,
                )
            else:
                self._emit_reg_load(
                    f"{name} = regs[{self.fc.value_key(payload)}]", payload
                )
            self.locals[payload] = name
        return name

    def rd_vec(self, value, dtype) -> str:
        """Read a vector operand in packed representation, caching the
        ndarray in a chain-local (register lists pack on the spot)."""
        is_reg, payload = _spec(value)
        if not is_reg:
            return self.fc.packed_const(payload, dtype)
        name = self.vlocals.get(payload)
        if name is None:
            name = self.fresh_local()
            lname = self.locals.get(payload)
            if lname is None:
                lname = self.ulocals.get(payload)
            dtn = self.fc.dtype_name(dtype)
            if lname is not None:
                self.line(f"{name} = _pk({lname}, {dtn})")
            else:
                self._emit_reg_load(
                    f"{name} = _pk(regs[{self.fc.value_key(payload)}], {dtn})",
                    payload,
                )
            self.vlocals[payload] = name
        return name

    def vec_expr(self, spec, dtype) -> str:
        """Inline packed expression for a phi edge: no lines emitted (phi
        dispatch branches cannot host hoisting loads), no caching."""
        is_reg, payload = spec
        if not is_reg:
            return self.fc.packed_const(payload, dtype)
        name = self.vlocals.get(payload)
        if name is not None:
            return name
        lname = self.locals.get(payload)
        if lname is None:
            lname = self.ulocals.get(payload)
        src = (
            lname if lname is not None else f"regs[{self.fc.value_key(payload)}]"
        )
        return f"_pk({src}, {self.fc.dtype_name(dtype)})"

    def rd_raw(self, value) -> str:
        """Read an operand without hoisting — for lazily-evaluated contexts
        (select arms, phi edges) that must not load registers eagerly."""
        is_reg, payload = _spec(value)
        if not is_reg:
            return self.const_expr(payload)
        return self._raw_reg(payload)

    def rd_spec_raw(self, spec) -> str:
        is_reg, payload = spec
        if not is_reg:
            return self.const_expr(payload)
        return self._raw_reg(payload)

    def _raw_reg(self, payload) -> str:
        name = self.locals.get(payload)
        if name is not None:
            return name
        uname = self.ulocals.get(payload)
        if uname is not None:
            return f"_ul({uname})"
        return f"regs[{self.fc.value_key(payload)}]"

    def rd_lane(self, value, lane: int) -> str:
        is_reg, payload = _spec(value)
        if not is_reg and type(payload) is list:
            return self.const_expr(payload[lane])
        return f"{self.rd(value)}[{lane}]"

    def store_def(self, instr, expr: str) -> str:
        name = self.fresh_local()
        key = self.fc.value_key(instr)
        if self.loop_regs is not None:
            self.line(f"{name} = {expr}")
            self.loop_regs[key] = name
        else:
            self.line(f"regs[{key}] = {name} = {expr}")
        self.locals[instr] = name
        return name

    def store_def_packed(self, instr, expr: str) -> str:
        """Write a packed (ndarray) def through to the register dict."""
        name = self.fresh_local()
        key = self.fc.value_key(instr)
        if self.loop_regs is not None:
            self.line(f"{name} = {expr}")
            self.loop_regs[key] = name
        else:
            self.line(f"regs[{key}] = {name} = {expr}")
        self.vlocals[instr] = name
        self.packed_defs += 1
        return name

    def store_def_unknown(self, instr, expr: str) -> None:
        """Write a def whose representation is unknown at compile time
        (e.g. a scalar select between vector registers) — uncached outside
        loops (later reads re-fetch through regs and normalize); inside a
        loop it lands in a deferred local tracked as unknown-rep."""
        key = self.fc.value_key(instr)
        if self.loop_regs is not None:
            name = self.fresh_local()
            self.line(f"{name} = {expr}")
            self.loop_regs[key] = name
            self.ulocals[instr] = name
        else:
            self.line(f"regs[{key}] = {expr}")

    def packed_mem_ref(self, kind: str, ty) -> str:
        """Chain-local holding a memoized bulk memory accessor.

        Hoisted to the chain prologue (like ``mem`` itself), so an in-chain
        loop resolves each accessor once per call, not per iteration.
        """
        key = (kind, ty)
        name = self._packed_mems.get(key)
        if name is None:
            mem = self.memref()
            name = self.fresh_local()
            tn = self.fc.bind(ty, "t")
            if kind == "writer_raw":
                self.hoists.append(
                    f"{name} = {mem}.packed_writer({tn}, quiet=False)"
                )
            else:
                self.hoists.append(f"{name} = {mem}.packed_{kind}({tn})")
            self._packed_mems[key] = name
        return name

    # -- phis ------------------------------------------------------------------

    def _phi_dtype(self, phi):
        """The packed dtype a phi normalizes to, or ``None`` to stay
        canonical.  Normalizing batchable vector phis at every edge keeps
        the phi's representation statically known to both caches."""
        if not BATCH_VECTORS:
            return None
        ty = phi.type
        if not isinstance(ty, VectorType):
            return None
        return np_dtype(ty.element)

    def _phi_edge_expr(self, phi, spec) -> str:
        dt = self._phi_dtype(phi)
        if dt is not None:
            return self.vec_expr(spec, dt)
        return self.rd_spec_raw(spec)

    def _cache_phi(self, phi, tmp) -> None:
        if self._phi_dtype(phi) is not None:
            self.vlocals[phi] = tmp
        else:
            self.locals[phi] = tmp

    def emit_head_phis(self, dblock) -> None:
        """Head-block phis dispatch on the dynamic ``prev`` edge; parallel
        semantics via per-phi temporaries assigned after all reads."""
        phis = dblock.phis
        if not phis:
            return
        temps = [self.fresh_local() for _ in phis]
        order: list = []
        for _phi, table in phis:
            for pred in table:
                if pred not in order:
                    order.append(pred)
        first_phi = self.fc.bind(phis[0][0], "ph")
        if not order:
            self.line(f"_phi_err({first_phi}, prev)")
        else:
            kw = "if"
            for pred in order:
                self.line(f"{kw} prev is {self.fc.block_name(pred)}:")
                kw = "elif"
                for (phi, table), tmp in zip(phis, temps):
                    spec = table.get(pred)
                    if spec is None:
                        # The interpreter raises at the first phi missing
                        # this edge, after evaluating the earlier phis.
                        self.line(
                            f"_phi_err({self.fc.bind(phi, 'ph')}, "
                            f"{self.fc.block_name(pred)})",
                            2,
                        )
                        break
                    self.line(f"{tmp} = {self._phi_edge_expr(phi, spec)}", 2)
            self.line("else:")
            self.line(f"_phi_err({first_phi}, prev)", 2)
            for (phi, _table), tmp in zip(phis, temps):
                self.line(f"regs[{self.fc.value_key(phi)}] = {tmp}")
                self._cache_phi(phi, tmp)
        self._charge_phis(dblock)

    def emit_interior_phis(self, dblock, pred) -> None:
        """Interior chain blocks enter through one statically-known edge."""
        phis = dblock.phis
        if not phis:
            return
        temps = []
        for phi, table in phis:
            spec = table.get(pred)
            if spec is None:
                self.line(
                    f"_phi_err({self.fc.bind(phi, 'ph')}, "
                    f"{self.fc.block_name(pred)})"
                )
                break
            tmp = self.fresh_local()
            # No caching: a phi may read another phi's *pre-block* value.
            self.line(f"{tmp} = {self._phi_edge_expr(phi, spec)}")
            temps.append((phi, tmp))
        for phi, tmp in temps:
            self.line(f"regs[{self.fc.value_key(phi)}] = {tmp}")
            self._cache_phi(phi, tmp)
        self._charge_phis(dblock)

    def emit_loop_phis(self, dblock, pred) -> None:
        """Re-evaluate the head block's phis along a compiled-in back edge.

        Reassigns the *existing* head-phi temps (the loop body above reads
        those names), so after this the next iteration of the ``while`` sees
        the latch-edge values.  No charging: the head-phi charge is already
        part of the chain's per-iteration pending cycle.
        """
        phis = dblock.phis
        if not phis:
            return
        phi_set = {phi for phi, _ in phis}
        items = []
        for phi, table in phis:
            spec = table.get(pred)
            if spec is None:
                self.line(
                    f"_phi_err({self.fc.bind(phi, 'ph')}, "
                    f"{self.fc.block_name(pred)})"
                )
                return
            target = (
                self.vlocals.get(phi)
                if self._phi_dtype(phi) is not None
                else self.locals.get(phi)
            )
            if target is None:
                # The head dispatch raised unconditionally (no incoming
                # edges at all): the loop body is dead code.
                return
            items.append((phi, spec, target))
        # Parallel semantics: go through fresh intermediates only when some
        # phi reads a sibling phi of the same block.
        if len(items) > 1 and any(
            spec[0] and spec[1] in phi_set for _phi, spec, _t in items
        ):
            staged = []
            for phi, spec, target in items:
                t = self.fresh_local()
                self.line(f"{t} = {self._phi_edge_expr(phi, spec)}")
                staged.append((phi, t, target))
            for phi, t, target in staged:
                self.line(f"{target} = {t}")
                self._loop_phi_store(phi, target)
        else:
            for phi, spec, target in items:
                self.line(f"{target} = {self._phi_edge_expr(phi, spec)}")
                self._loop_phi_store(phi, target)

    def _loop_phi_store(self, phi, target: str) -> None:
        # Back-edge phi writes are deferred with every other in-loop def;
        # the targets are pre-registered when the loop opens, so this only
        # needs the non-deferred (defensive) path.
        if self.loop_regs is not None:
            self.loop_regs[self.fc.value_key(phi)] = target
        else:
            self.line(f"regs[{self.fc.value_key(phi)}] = {target}")

    def _charge_phis(self, dblock) -> None:
        self.pending[0] += dblock.phi_total
        self.pending[1] += dblock.phi_scalar
        self.pending[2] += dblock.phi_vector
        self.charged_total += dblock.phi_total

    # -- fault-site bookkeeping ------------------------------------------------

    def emit_group(self, instr, group) -> None:
        """Advance the dynamic-site counter (and count-mode widths) for one
        planned group — straight-line arithmetic, no entry-point calls.
        Injection itself never happens here: the inject variant's span
        precheck already diverted any chain containing the target."""
        d0 = group[0]
        n = len(group)
        width = _entry_widths()[d0.entry_index]
        if d0.mask_operand_index is None:
            # Coalesced: flushed (in tape order) at the next commit.
            self.pending_sites += n
            self.max_sites += n
            if self.mode == "count":
                self.pending_widths += bytes((width,)) * n
            return
        mask_val = instr.operands[d0.mask_operand_index]
        is_reg, payload = _spec(mask_val)
        if not is_reg and type(payload) is list:
            # Constant mask: fold the active count at compile time — but
            # only when every lane evaluates to canonical 0/1 (lshr on wide
            # integer lanes can yield arbitrary counts, which must keep
            # today's dynamic arithmetic and tape growth).
            try:
                counts = [d0.active_fn(payload[d.lane]) for d in group]
            except Exception:
                counts = None
            if counts is not None and all(c in (0, 1) for c in counts):
                active = sum(counts)
                self.pending_sites += active
                self.max_sites += n
                if self.mode == "count":
                    self.pending_widths += bytes((width,)) * active
                return
        # Dynamic mask: flush the coalesced counts first so the width tape
        # stays in site order, then count active lanes at run time.
        self.flush_sites()
        na = self.fresh_local()
        bulk = d0.active_bulk_fn
        vname = self.vlocals.get(payload) if is_reg else None
        lanes = sorted(d.lane for d in group)
        if (
            bulk is not None
            and vname is not None
            and lanes == list(range(mask_val.type.length))
        ):
            bf = self.fc.bind(bulk, "af")
            self.line(f"{na} = {bf}({vname})")
        else:
            mask = self.rd(mask_val)
            af = self.fc.bind(d0.active_fn, "af")
            total = " + ".join(f"{af}({mask}[{d.lane}])" for d in group)
            self.line(f"{na} = {total}")
        self.line(f"_dc += {na}")
        self.max_sites += n
        if self.mode == "count":
            wb = self.fc.bind(bytes((width,)), "w")
            self.line(f"_ws.extend({wb} * {na})")

    # -- instruction emission --------------------------------------------------

    def emit_block_body(self, block, dblock, last: bool) -> None:
        instructions = block.instructions
        index = 0
        n = len(instructions)
        while index < n and isinstance(instructions[index], Phi):
            index += 1
        terminated = False
        while index < n:
            instr = instructions[index]
            index += 1
            if instr.is_terminator:
                self.emit_term(dblock, last)
                terminated = True
                break
            self.emit_step(instr)
        if not terminated:
            # Unterminated block: the interpreter raises without charging.
            self.commit()
            msg = (
                f"@{self.fc.fn.name}:{block.name}: fell off the end of a block"
            )
            self.line(f"raise _IO({msg!r})")

    def emit_step(self, instr) -> None:
        plan = self.fc.plan
        lv_group = plan.lvalue.get(instr) if plan is not None else None
        planned_store = plan.store.get(instr) if plan is not None else None
        self.pending_add(instr.is_vector_instruction)
        if planned_store is not None:
            _op_index, group = planned_store
            if self.mode is not None:
                self.emit_group(instr, group)
            # §II-B: the stored value's chain tax lands before the store
            # executes, so a faulting write sees tax-inclusive stats.
            self.pending_add_tax(group)
        handled = False
        try:
            handled = self._emit_specialized(instr)
        except InvalidOperation:
            handled = False
        if not handled:
            # Anything without a specialized emitter runs its (unplanned)
            # decoded closure; commit first since it may trap or raise.
            # Decoded closures read and write ``regs`` directly, so inside
            # a loop the deferred register writes flush first (the closure's
            # own def is in chain_defs, so its reads are never hoisted).
            self.commit()
            if self.loop_regs is not None:
                self.emit_regs_flush()
            self.line(f"{self.fc.bind(_decode_step(instr), 'x')}(vm, regs)")
        if lv_group is not None:
            # Result-register sites: tax and counts land after the defining
            # instruction, exactly where the spliced chain would sit.
            if self.mode is not None:
                self.emit_group(instr, lv_group)
            self.pending_add_tax(lv_group)

    def _emit_specialized(self, instr) -> bool:
        cls = type(instr)
        if cls is BinaryOp:
            return self._emit_binop(instr)
        if cls is CompareOp:
            return self._emit_compare(instr)
        if cls is Select:
            return self._emit_select(instr)
        if cls is CastOp:
            return self._emit_cast(instr)
        if cls is GetElementPtr:
            return self._emit_gep(instr)
        if cls is Load:
            self.commit()
            lty = instr.type
            mem = self.memref()
            p = self.rd(instr.operands[0])
            if (
                BATCH_VECTORS
                and isinstance(lty, VectorType)
                and np_dtype(lty.element) is not None
            ):
                # Bulk read into a packed slot; the accessor's own miss
                # path raises the exact per-lane traps.
                rdr = self.packed_mem_ref("reader", lty)
                self.store_def_packed(instr, f"{rdr}({p})")
            else:
                ty = self.fc.bind(lty, "t")
                self.store_def(instr, f"{mem}.read_value({ty}, {p})")
            return True
        if cls is Store:
            self.commit()
            vty = instr.value.type
            mem = self.memref()
            if (
                BATCH_VECTORS
                and isinstance(vty, VectorType)
                and np_dtype(vty.element) is not None
            ):
                v = self.rd_vec(instr.operands[0], np_dtype(vty.element))
                p = self.rd(instr.operands[1])
                wtr = self.packed_mem_ref("writer", vty)
                self.line(f"{wtr}({p}, {v})")
            else:
                ty = self.fc.bind(vty, "t")
                v = self.rd(instr.operands[0])
                p = self.rd(instr.operands[1])
                self.line(f"{mem}.write_value({ty}, {p}, {v})")
            return True
        if cls is Alloca:
            self.commit()
            ty = self.fc.bind(instr.allocated_type, "t")
            mem = self.memref()
            label = instr.name or "alloca"
            self.store_def(
                instr,
                f"{mem}.alloc_typed({ty}, {instr.count}, label={label!r})",
            )
            return True
        if cls is ExtractElement:
            return self._emit_extractelement(instr)
        if cls is InsertElement:
            return self._emit_insertelement(instr)
        if cls is ShuffleVector:
            return self._emit_shufflevector(instr)
        if cls is FNeg:
            return self._emit_fneg(instr)
        if cls is Call:
            return self._emit_call(instr)
        return False

    def _scalar_binop_expr(self, opcode: str, ty, a: str, b: str) -> str:
        # Mirrors the exact "simple" table of ops.binop_fn.
        if isinstance(ty, FloatType):
            sym = {"fadd": "+", "fsub": "-", "fmul": "*"}.get(opcode)
            if sym is not None:
                if ty.bits == 32:
                    return f"_rf({a} {sym} {b})"
                return f"({a} {sym} {b})"
        elif isinstance(ty, IntType):
            sym = {"add": "+", "sub": "-", "mul": "*"}.get(opcode)
            if sym is not None:
                bits = ty.bits
                if bits == 1:
                    # wrap_int keeps i1 canonical as 0/1.
                    return f"(({a} {sym} {b}) & 1)"
                # Branchless two's-complement wrap, inlined: identical to
                # wrap_int(x, bits) for every Python int x.
                half = 1 << (bits - 1)
                mask = (1 << bits) - 1
                return f"((({a} {sym} {b}) + {half} & {mask}) - {half})"
            sym = {"and": "&", "or": "|", "xor": "^"}.get(opcode)
            if sym is not None:
                # Closed over canonical operands (xor of two in-range
                # two's-complement ints is in range), so no wrap needed.
                return f"({a} {sym} {b})"
        fn = self.fc.bind(ops.binop_fn(opcode, ty), "f")
        return f"{fn}({a}, {b})"

    def _emit_binop(self, instr) -> bool:
        ty = instr.type
        trapping = instr.opcode in _TRAP_INT_OPS
        if trapping:
            self.commit()
        if isinstance(ty, VectorType):
            if BATCH_VECTORS and not trapping:
                dt = np_dtype(ty.element)
                bulk = ops.binop_bulk(instr.opcode, ty.element)
                if dt is not None and bulk is not None:
                    a = self.rd_vec(instr.operands[0], dt)
                    b = self.rd_vec(instr.operands[1], dt)
                    fn = self.fc.bind(bulk, "f")
                    self.store_def_packed(instr, f"{fn}({a}, {b})")
                    return True
            a = self.rd(instr.operands[0])
            b = self.rd(instr.operands[1])
            if ty.length <= UNROLL_MAX:
                parts = [
                    self._scalar_binop_expr(
                        instr.opcode, ty.element, f"{a}[{i}]", f"{b}[{i}]"
                    )
                    for i in range(ty.length)
                ]
                expr = "[" + ", ".join(parts) + "]"
            else:
                fn = self.fc.bind(ops.binop_fn(instr.opcode, ty.element), "f")
                expr = f"[{fn}(x, y) for x, y in zip({a}, {b})]"
            self.store_def(instr, expr)
        else:
            if isinstance(ty, IntType) and instr.opcode in ("add", "sub"):
                is_reg1, p1 = _spec(instr.operands[1])
                if not is_reg1 and type(p1) is int and p1 == 0:
                    # x +/- 0 of a canonical int is x (wrap_int is a no-op
                    # on already-canonical values): alias, don't recompute.
                    self.store_def(instr, self.rd(instr.operands[0]))
                    return True
            a = self.rd(instr.operands[0])
            b = self.rd(instr.operands[1])
            self.store_def(instr, self._scalar_binop_expr(instr.opcode, ty, a, b))
        return True

    def _compare_expr(self, instr, a: str, b: str, elem) -> str:
        if instr.opcode == "icmp":
            sym = _SIGNED_ICMP_SYMBOL.get(instr.predicate)
            if sym is not None:
                return f"int({a} {sym} {b})"
        fn = self.fc.bind(
            ops.compare_fn(instr.opcode, instr.predicate, elem), "f"
        )
        return f"int({fn}({a}, {b}))"

    def _emit_compare(self, instr) -> bool:
        operand_ty = instr.lhs.type
        if isinstance(operand_ty, VectorType) and BATCH_VECTORS:
            dt = np_dtype(operand_ty.element)
            bulk = ops.compare_bulk(instr.opcode, instr.predicate, operand_ty.element)
            if dt is not None and bulk is not None:
                a = self.rd_vec(instr.operands[0], dt)
                b = self.rd_vec(instr.operands[1], dt)
                fn = self.fc.bind(bulk, "f")
                self.store_def_packed(instr, f"{fn}({a}, {b})")
                return True
        a = self.rd(instr.operands[0])
        b = self.rd(instr.operands[1])
        if isinstance(operand_ty, VectorType):
            if operand_ty.length <= UNROLL_MAX:
                parts = [
                    self._compare_expr(
                        instr, f"{a}[{i}]", f"{b}[{i}]", operand_ty.element
                    )
                    for i in range(operand_ty.length)
                ]
                expr = "[" + ", ".join(parts) + "]"
            else:
                fn = self.fc.bind(
                    ops.compare_fn(
                        instr.opcode, instr.predicate, operand_ty.element
                    ),
                    "f",
                )
                expr = f"[int({fn}(x, y)) for x, y in zip({a}, {b})]"
            self.store_def(instr, expr)
        else:
            self.store_def(
                instr, self._compare_expr(instr, a, b, operand_ty)
            )
        return True

    def _emit_select(self, instr) -> bool:
        if instr.condition.type.is_vector():
            if BATCH_VECTORS:
                dt = np_dtype(instr.type.element)
                cdt = np_dtype(instr.condition.type.element)
                if dt is not None and cdt is not None:
                    # Eager arms, like the unrolled path below; np.where on
                    # an int8 0/1 condition returns a fresh array.
                    c = self.rd_vec(instr.operands[0], cdt)
                    a = self.rd_vec(instr.operands[1], dt)
                    b = self.rd_vec(instr.operands[2], dt)
                    self.store_def_packed(instr, f"_WH({c}, {a}, {b})")
                    return True
            c = self.rd(instr.operands[0])
            a = self.rd(instr.operands[1])
            b = self.rd(instr.operands[2])
            length = instr.type.length
            if length > UNROLL_MAX:
                expr = f"[x if t else y for t, x, y in zip({c}, {a}, {b})]"
            else:
                expr = "[" + ", ".join(
                    f"{a}[{i}] if {c}[{i}] else {b}[{i}]" for i in range(length)
                ) + "]"
            self.store_def(instr, expr)
        else:
            c = self.rd(instr.operands[0])
            # Arms stay lazy, as in the decoded closure: only the chosen
            # side's register is read.
            a = self.rd_raw(instr.operands[1])
            b = self.rd_raw(instr.operands[2])
            if isinstance(instr.type, VectorType):
                # A register arm may hold either representation; write it
                # through unchanged and let later reads normalize.
                self.store_def_unknown(instr, f"({a} if {c} else {b})")
            else:
                self.store_def(instr, f"({a} if {c} else {b})")
        return True

    def _emit_cast(self, instr) -> bool:
        src_ty = instr.operands[0].type
        dst_ty = instr.type
        if isinstance(dst_ty, VectorType):
            if BATCH_VECTORS:
                sdt = np_dtype(src_ty.scalar_type)
                bulk = ops.cast_bulk(
                    instr.opcode, src_ty.scalar_type, dst_ty.element
                )
                if sdt is not None and bulk is not None:
                    a = self.rd_vec(instr.operands[0], sdt)
                    fn = self.fc.bind(bulk, "f")
                    self.store_def_packed(instr, f"{fn}({a})")
                    return True
            a = self.rd(instr.operands[0])
            fn = self.fc.bind(
                ops.cast_fn(instr.opcode, src_ty.scalar_type, dst_ty.element),
                "f",
            )
            if dst_ty.length <= UNROLL_MAX:
                expr = "[" + ", ".join(
                    f"{fn}({a}[{i}])" for i in range(dst_ty.length)
                ) + "]"
            else:
                expr = f"[{fn}(x) for x in {a}]"
        else:
            if (
                instr.opcode == "bitcast"
                and isinstance(src_ty, PointerType)
                and isinstance(dst_ty, PointerType)
            ):
                # Pointer-to-pointer bitcast is the identity in the scalar
                # evaluator: alias the operand instead of calling it.
                self.store_def(instr, self.rd(instr.operands[0]))
                return True
            a = self.rd(instr.operands[0])
            fn = self.fc.bind(ops.cast_fn(instr.opcode, src_ty, dst_ty), "f")
            expr = f"{fn}({a})"
        self.store_def(instr, expr)
        return True

    def _emit_gep(self, instr) -> bool:
        stride = instr.base.type.pointee.store_size()
        base = self.rd(instr.operands[0])
        idx_ty = instr.index.type
        idx = self.rd(instr.operands[1])
        if isinstance(idx_ty, VectorType):
            if idx_ty.length <= UNROLL_MAX:
                expr = "[" + ", ".join(
                    f"{base} + {idx}[{i}] * {stride}" for i in range(idx_ty.length)
                ) + "]"
            else:
                expr = f"[{base} + i * {stride} for i in {idx}]"
        else:
            expr = f"({base} + {idx} * {stride})"
        self.store_def(instr, expr)
        return True

    def _emit_extractelement(self, instr) -> bool:
        length = instr.operands[0].type.length
        is_reg, payload = _spec(instr.operands[1])
        vec = self.rd(instr.operands[0])
        if not is_reg and type(payload) is int:
            self.store_def(instr, f"{vec}[{payload % length}]")
            return True
        idx = self.rd(instr.operands[1])
        t = self.fresh_local()
        self.line(f"{t} = int({idx})")
        self.store_def(
            instr, f"{vec}[{t} if 0 <= {t} < {length} else {t} % {length}]"
        )
        return True

    def _emit_insertelement(self, instr) -> bool:
        length = instr.operands[0].type.length
        vec = self.rd(instr.operands[0])
        val = self.rd(instr.operands[1])
        is_reg, payload = _spec(instr.operands[2])
        out = self.store_def(instr, f"list({vec})")
        if not is_reg and type(payload) is int:
            self.line(f"{out}[{payload % length}] = {val}")
            return True
        idx = self.rd(instr.operands[2])
        t = self.fresh_local()
        self.line(f"{t} = int({idx})")
        self.line(f"if not 0 <= {t} < {length}:")
        self.line(f"    {t} %= {length}")
        self.line(f"{out}[{t}] = {val}")
        return True

    def _emit_shufflevector(self, instr) -> bool:
        la = instr.operands[0].type.length
        lb = instr.operands[1].type.length
        mask = instr.mask
        if any(not 0 <= m < la + lb for m in mask):
            return False  # decoded closure raises IndexError at run time
        parts = [
            self.rd_lane(instr.operands[0], m)
            if m < la
            else self.rd_lane(instr.operands[1], m - la)
            for m in mask
        ]
        self.store_def(instr, "[" + ", ".join(parts) + "]")
        return True

    def _emit_fneg(self, instr) -> bool:
        if instr.type.is_vector() and BATCH_VECTORS:
            dt = np_dtype(instr.type.element)
            bulk = ops.fneg_bulk(instr.type.element)
            if dt is not None and bulk is not None:
                a = self.rd_vec(instr.operands[0], dt)
                fn = self.fc.bind(bulk, "f")
                self.store_def_packed(instr, f"{fn}({a})")
                return True
        a = self.rd(instr.operands[0])
        if instr.type.is_vector():
            length = instr.type.length
            if length > UNROLL_MAX:
                expr = f"[-x for x in {a}]"
            else:
                expr = "[" + ", ".join(f"-{a}[{i}]" for i in range(length)) + "]"
        else:
            expr = f"(-{a})"
        self.store_def(instr, expr)
        return True

    # -- calls -----------------------------------------------------------------

    def _emit_call(self, instr) -> bool:
        callee = instr.callee
        name = callee.name
        if not callee.is_declaration:
            return False  # unreachable: such blocks are never compiled
        if is_intrinsic_name(name):
            info = get_intrinsic(name)
            kind = info.kind
            if kind == "math":
                return self._emit_math_call(instr, name, info)
            if kind in ("reduce", "mask-reduce"):
                ret = info.function_type.return_type
                fn = self.fc.bind(
                    lambda args, _n=name, _r=ret: ops.reduce_intrinsic(
                        _n, _r, args
                    ),
                    "red",
                )
                args = ", ".join(self.rd(o) for o in instr.operands)
                self.store_def(instr, f"{fn}([{args}])")
                return True
            if kind in _MEMORY_INTRINSICS:
                return self._emit_memory_intrinsic(instr, info, kind)
            return False
        # External call (VULFI/detector runtimes): bound per-interpreter,
        # looked up per execution like the decoded closure does.
        self.commit()
        args = ", ".join(self.rd(o) for o in instr.operands)
        ext = self.fresh_local()
        self.line(f"{ext} = vm.externals.get({name!r})")
        self.line(f"if {ext} is None:")
        self.line(f"    raise _IO({('call to unbound external @' + name)!r})")
        call = f"{ext}({args})"
        if instr.has_lvalue():
            self.store_def(instr, call)
        else:
            self.line(call)
        return True

    def _emit_math_call(self, instr, name: str, info) -> bool:
        op = name.split(".")[1]
        fn = self.fc.bind(ops.MATH_FNS[op], "mf")
        ret = info.function_type.return_type
        operands = instr.operands
        if isinstance(ret, VectorType):
            if ret.length > UNROLL_MAX:
                return False
            f32 = ret.element.bits == 32
            if len(operands) == 1:
                a = self.rd(operands[0])
                parts = [f"{fn}({a}[{i}])" for i in range(ret.length)]
            else:
                a = self.rd(operands[0])
                b = self.rd(operands[1])
                parts = [f"{fn}({a}[{i}], {b}[{i}])" for i in range(ret.length)]
            if f32:
                parts = [f"_rf({p})" for p in parts]
            self.store_def(instr, "[" + ", ".join(parts) + "]")
            return True
        f32 = ret.bits == 32
        args = ", ".join(self.rd(o) for o in operands)
        expr = f"{fn}({args})"
        if f32:
            expr = f"_rf({expr})"
        self.store_def(instr, expr)
        return True

    def _bulk_mask_test(self, m: str, mask_elem, convention) -> str:
        """Whole-vector mask test over a packed mask array.

        Bit-identical to mapping :meth:`_mask_test` over the lanes: i1
        masks are canonical 0/1 int8 (np.where treats them as booleans),
        sign-bit float masks use ``signbit`` (== bit 63/31, NaNs included),
        sign-bit integer masks use ``< 0``.
        """
        if convention == MASK_SIGN:
            if mask_elem.is_float():
                return f"_SB({m})"
            return f"({m} < 0)"
        return m

    def _mask_test(self, mask: str, lane: int, mask_ty, convention) -> str:
        if convention == MASK_SIGN:
            elem = mask_ty.scalar_type
            if isinstance(elem, FloatType):
                sa = self.fc.bind(
                    lambda v, _t=elem: ops.sign_active(v, _t), "sa"
                )
                return f"{sa}({mask}[{lane}])"
            return f"{mask}[{lane}] < 0"
        return f"{mask}[{lane}]"

    def _emit_memory_intrinsic(self, instr, info, kind: str) -> bool:
        ftype = info.function_type
        if kind in ("maskload", "gather"):
            data_ty = ftype.return_type
        elif kind == "maskstore":
            data_ty = ftype.params[info.stored_value_index]
        else:
            data_ty = ftype.params[0]
        if not isinstance(data_ty, VectorType) or data_ty.length > UNROLL_MAX:
            return False
        length = data_ty.length
        elem = data_ty.element
        stride = elem.store_size()
        et = self.fc.bind(elem, "t")
        self.commit()
        mem = self.memref()
        if kind == "maskload":
            mask_ty = ftype.params[info.mask_index]
            conv = info.mask_convention
            edt = np_dtype(elem)
            mdt = np_dtype(mask_ty.element)
            if BATCH_VECTORS and edt is not None and mdt is not None:
                # Bulk path, gated at run time on the whole span being
                # in-bounds: reading the inactive lanes is then harmless
                # (no side effects, no traps), and an out-of-bounds span
                # drops to the per-lane path, which traps only on *active*
                # out-of-bounds lanes — exactly today's semantics.
                addr = self.rd(instr.operands[0])
                m = self.rd_vec(instr.operands[info.mask_index], mdt)
                test = self._bulk_mask_test(m, mask_ty.element, conv)
                if conv == MASK_SIGN:
                    zero = [0.0 if elem.is_float() else 0] * length
                    pt = self.fc.packed_const(zero, edt)
                    pt_list = None
                else:
                    pt = self.rd_vec(instr.operands[2], edt)
                    pt_list = self.fresh_local()
                rdr = self.packed_mem_ref("reader", data_ty)
                out = self.fresh_local()
                self.line(
                    f"if not {mem}.strict_alignment and "
                    f"{mem}.range_ok({addr}, {length * stride}):"
                )
                self.line(f"    {out} = _WH({test}, {rdr}({addr}), {pt})")
                self.line("else:")
                ml = self.fresh_local()
                self.line(f"{ml} = {m}.tolist()", 2)
                if pt_list is None:
                    zero_expr = "0.0" if elem.is_float() else "0"
                    passthru = [zero_expr] * length
                else:
                    self.line(f"{pt_list} = {pt}.tolist()", 2)
                    passthru = [f"{pt_list}[{i}]" for i in range(length)]
                parts = [
                    f"{mem}.read_scalar({et}, {addr} + {i * stride}) "
                    f"if {self._mask_test(ml, i, mask_ty, conv)} "
                    f"else {passthru[i]}"
                    for i in range(length)
                ]
                self.line(f"{out} = [" + ", ".join(parts) + "]", 2)
                # Representation depends on the branch taken: unknown-rep.
                key = self.fc.value_key(instr)
                if self.loop_regs is not None:
                    self.loop_regs[key] = out
                    self.ulocals[instr] = out
                else:
                    self.line(f"regs[{key}] = {out}")
                self.packed_defs += 1
                return True
            addr = self.rd(instr.operands[0])
            mask = self.rd(instr.operands[info.mask_index])
            if conv == MASK_SIGN:
                zero = "0.0" if elem.is_float() else "0"
                passthru = [zero] * length
            else:
                pt = self.rd(instr.operands[2])
                passthru = [f"{pt}[{i}]" for i in range(length)]
            parts = [
                f"{mem}.read_scalar({et}, {addr} + {i * stride}) "
                f"if {self._mask_test(mask, i, mask_ty, conv)} "
                f"else {passthru[i]}"
                for i in range(length)
            ]
            self.store_def(instr, "[" + ", ".join(parts) + "]")
            return True
        if kind == "maskstore":
            mask_ty = ftype.params[info.mask_index]
            conv = info.mask_convention
            edt = np_dtype(elem)
            mdt = np_dtype(mask_ty.element)
            if BATCH_VECTORS and edt is not None and mdt is not None:
                # Read-modify-write over the whole span: active lanes take
                # the (f32-quieted) data, inactive lanes are written back
                # with their *raw* current bytes — hence the raw reader and
                # non-quieting writer; memory bits of untouched lanes never
                # change.
                if conv == MASK_SIGN:
                    addr = self.rd(instr.operands[0])
                    d = self.rd_vec(instr.operands[2], edt)
                else:
                    d = self.rd_vec(instr.operands[0], edt)
                    addr = self.rd(instr.operands[1])
                m = self.rd_vec(instr.operands[info.mask_index], mdt)
                test = self._bulk_mask_test(m, mask_ty.element, conv)
                f32 = isinstance(elem, FloatType) and elem.bits == 32
                data_expr = f"_QN({d})" if f32 else d
                wtr = self.packed_mem_ref("writer_raw", data_ty)
                rdr = self.packed_mem_ref("reader", data_ty)
                self.line(
                    f"if not {mem}.strict_alignment and "
                    f"{mem}.range_ok({addr}, {length * stride}):"
                )
                self.line(
                    f"    {wtr}({addr}, _WH({test}, {data_expr}, {rdr}({addr})))"
                )
                self.line("else:")
                ml = self.fresh_local()
                dl = self.fresh_local()
                self.line(f"{ml} = {m}.tolist()", 2)
                self.line(f"{dl} = {d}.tolist()", 2)
                for i in range(length):
                    test_i = self._mask_test(ml, i, mask_ty, conv)
                    self.line(f"if {test_i}:", 2)
                    self.line(
                        f"    {mem}.write_scalar({et}, {addr} + {i * stride}, "
                        f"{dl}[{i}])",
                        2,
                    )
                return True
            mask = self.rd(instr.operands[info.mask_index])
            if conv == MASK_SIGN:
                addr = self.rd(instr.operands[0])
                data = self.rd(instr.operands[2])
            else:
                data = self.rd(instr.operands[0])
                addr = self.rd(instr.operands[1])
            for i in range(length):
                test = self._mask_test(mask, i, mask_ty, conv)
                self.line(f"if {test}:")
                self.line(
                    f"    {mem}.write_scalar({et}, {addr} + {i * stride}, "
                    f"{data}[{i}])"
                )
            return True
        if kind == "gather":
            ptrs = self.rd(instr.operands[0])
            mask = self.rd(instr.operands[1])
            pt = self.rd(instr.operands[2])
            parts = [
                f"{mem}.read_scalar({et}, {ptrs}[{i}]) "
                f"if {mask}[{i}] else {pt}[{i}]"
                for i in range(length)
            ]
            self.store_def(instr, "[" + ", ".join(parts) + "]")
            return True
        # scatter
        data = self.rd(instr.operands[0])
        ptrs = self.rd(instr.operands[1])
        mask = self.rd(instr.operands[2])
        for i in range(length):
            self.line(f"if {mask}[{i}]:")
            self.line(
                f"    {mem}.write_scalar({et}, {ptrs}[{i}], {data}[{i}])"
            )
        return True

    # -- terminators -----------------------------------------------------------

    def emit_term(self, dblock, last: bool) -> None:
        term = dblock.term
        tag, isvec, _opcode, payload = term
        self.pending_add(isvec)
        src = dblock.source
        if tag == T_BR:
            if not last:
                return  # falls through to the next chain block
            self.emit_exits()
            self.line(f"return {self.fc.edge_name(payload.source, src)}")
        elif tag == T_CONDBR:
            self.emit_exits()
            is_reg, cond, true_block, false_block = payload
            c = self.rd_spec_raw((is_reg, cond))
            e1 = self.fc.edge_name(true_block.source, src)
            e2 = self.fc.edge_name(false_block.source, src)
            if last and self.loop_head is not None:
                # In-chain loop back edge.  Everything is already committed
                # (exits above), so returning to the driver at any of the
                # guards below re-enters this same chain through the normal
                # edge — hook firing, step-limit fallback, and inject-span
                # fallback all behave exactly as the non-looping emission.
                # Each return flushes the loop-deferred register writes
                # first; the flush runs once per call, not per iteration.
                if true_block.source is self.loop_head:
                    self.line(f"if not {c}:")
                    exit_edge, e_back = e2, e1
                else:
                    self.line(f"if {c}:")
                    exit_edge, e_back = e1, e2
                self.emit_regs_flush(2)
                self.line(f"    return {exit_edge}")
                self.line("if _bh is not None:")
                self.emit_regs_flush(2)
                self.line(f"    return {e_back}")
                self.line(f"if _st + {self.charged_total} > _sl:")
                self.emit_regs_flush(2)
                self.line(f"    return {e_back}")
                if self.mode == "inject":
                    self.line(
                        f"if _dc < _mt and _sh(_dc, _dc + {self.max_sites}):"
                    )
                    self.emit_regs_flush(2)
                    self.line(f"    return {e_back}")
                self.emit_loop_phis(self.loop_dblock, self.loop_latch)
            else:
                self.line(f"return {e1} if {c} else {e2}")
        elif tag == T_RET:
            self.emit_exits()
            if payload is None:
                self.line("return (None,)")
            else:
                is_reg, value = payload
                if (
                    is_reg
                    and BATCH_VECTORS
                    and isinstance(value.type, VectorType)
                ):
                    # Return values escape to runners/callers: canonicalize
                    # a packed slot back to the lane list.
                    self.line(f"return ({self.rd_reg(value)},)")
                else:
                    self.line(f"return ({self.rd_spec_raw(payload)},)")
        else:
            assert tag == T_UNREACHABLE
            self.emit_exits()
            msg = f"@{self.fc.fn.name}: reached 'unreachable'"
            self.line(f"raise _IO({msg!r})")


# -- compiled program ----------------------------------------------------------


class CompiledFunction:
    """A function compiled into per-block superblock chain closures."""

    __slots__ = ("fn", "name", "dfn", "plan", "version", "entries", "entry")

    def __init__(self, fn: Function, dfn, plan: InjectionPlan | None, version: int):
        COMPILE_EVENTS["functions"] += 1
        self.fn = fn
        self.name = fn.name
        self.dfn = dfn
        self.plan = plan
        self.version = version
        self.entries = {
            block: CompiledEntry(block, dfn.blocks[block]) for block in fn.blocks
        }
        _FunctionCompiler(self, dfn, plan).build()
        self.entry = self.entries[fn.entry]


class CompiledProgram:
    """Lazily compiled functions of one module at one version.

    Shares the decoded program (same plan, same cache slots) — the decoded
    blocks are both the fallback path and the source of pre-resolved phi
    tables and terminators.
    """

    __slots__ = ("version", "plan", "decoded", "_functions")

    def __init__(self, module: Module, plan: InjectionPlan | None = None):
        self.version = module.version
        self.plan = plan
        self.decoded = decoded_program(module, plan)
        self._functions: dict = {}

    def function(self, fn: Function) -> CompiledFunction:
        compiled = self._functions.get(fn)
        if compiled is None:
            compiled = CompiledFunction(
                fn, self.decoded.function(fn), self.plan, self.version
            )
            self._functions[fn] = compiled
        return compiled


def compiled_program(
    module: Module, plan: InjectionPlan | None = None
) -> CompiledProgram:
    """The module's compile cache, invalidated by :attr:`Module.version`.

    Like :func:`~repro.vm.decode.decoded_program`: with a ``plan`` the
    program lives on the plan (``plan._compiled``), else on the module
    (``module._vm_compiled``), so planned closures never leak into plain
    execution and stale code can never run after an IR transformation.
    """
    if plan is not None:
        program = plan._compiled
        if program is None or program.version != module.version:
            program = CompiledProgram(module, plan)
            plan._compiled = program
        return program
    program = getattr(module, "_vm_compiled", None)
    if program is None or program.version != module.version:
        program = CompiledProgram(module)
        module._vm_compiled = program
    return program
