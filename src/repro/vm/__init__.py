"""Bit-accurate virtual machine executing the vector IR."""

from .bits import (
    bit_width,
    bits_to_float,
    flip_bit_float,
    flip_bit_int,
    flip_bit_scalar,
    float_to_bits,
    float_to_int_trunc,
    round_f32,
    to_unsigned,
    wrap_int,
)
from .compile import COMPILE_EVENTS, CompiledProgram, compiled_program
from .interpreter import DEFAULT_STEP_LIMIT, ExecutionStats, Interpreter
from .memory import GUARD_GAP, HEAP_BASE, Memory
from .snapshot import (
    Checkpoint,
    CheckpointTape,
    ConvergedToGolden,
    FrameState,
    MemoryImage,
    PAGE_SIZE,
    ResumePoint,
    copy_regs,
    regs_match,
)

__all__ = [
    "bit_width",
    "bits_to_float",
    "flip_bit_float",
    "flip_bit_int",
    "flip_bit_scalar",
    "float_to_bits",
    "float_to_int_trunc",
    "round_f32",
    "to_unsigned",
    "wrap_int",
    "COMPILE_EVENTS",
    "CompiledProgram",
    "compiled_program",
    "DEFAULT_STEP_LIMIT",
    "ExecutionStats",
    "Interpreter",
    "GUARD_GAP",
    "HEAP_BASE",
    "Memory",
    "Checkpoint",
    "CheckpointTape",
    "ConvergedToGolden",
    "FrameState",
    "MemoryImage",
    "PAGE_SIZE",
    "ResumePoint",
    "copy_regs",
    "regs_match",
]
