"""Byte-addressable memory for the VM.

Allocations are placed sparsely in a large flat address space with guard
gaps between them.  Any access that does not fall entirely inside a live
allocation raises :class:`~repro.errors.MemoryFault` (the simulated SIGSEGV)
— this is what turns bit-flipped addresses into *Crash* outcomes, while
flips in the low bits of an address can still land inside a mapped buffer
and silently corrupt data (an SDC), mirroring real hardware behaviour.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from typing import Sequence

import numpy as np

from ..errors import MemoryFault
from ..ir.types import FloatType, IntType, PointerType, Type, VectorType
from .bits import (
    bits_to_float,
    float_to_bits,
    np_dtype,
    quiet_nan_f32,
    to_unsigned,
    wrap_int,
)
from .snapshot import PAGE_SHIFT, PAGE_SIZE, AllocationImage, MemoryImage, split_pages

#: Base of the simulated heap; low addresses (incl. null) are never mapped.
HEAP_BASE = 0x10000
#: Guard gap between allocations, in bytes.
GUARD_GAP = 4096


class Allocation:
    __slots__ = ("base", "size", "data", "label", "views")

    def __init__(self, base: int, size: int, label: str = ""):
        self.base = base
        self.size = size
        self.data = bytearray(size)
        self.label = label
        # Lazily-built whole-buffer ndarray views keyed by dtype, shared by
        # the packed accessors.  Safe to cache: ``data`` is only ever
        # mutated in place (slice assignment, including snapshot restore),
        # never rebound or resized, so a view stays current for the
        # allocation's lifetime.
        self.views: dict = {}

    @property
    def end(self) -> int:
        return self.base + self.size

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Allocation {self.label or hex(self.base)} size={self.size}>"


class Memory:
    """Flat simulated memory with bump allocation and bounds checking.

    ``strict_alignment=True`` additionally requires natural alignment on
    every typed scalar access and raises
    :class:`~repro.errors.AlignmentFault` otherwise — modelling ISAs (or
    aligned-move encodings like ``vmovaps``) where a bit-flipped address is
    more likely to trap than on permissive x86 unaligned accesses.  The
    default is x86-like: unaligned accesses succeed.
    """

    def __init__(self, strict_alignment: bool = False):
        self._allocations: list[Allocation] = []
        self._bases: list[int] = []  # sorted, parallel to _allocations
        self._next = HEAP_BASE
        self.bytes_allocated = 0
        self.strict_alignment = strict_alignment
        # Per-type specialised accessor closures (see _build_scalar_reader
        # etc.): IR types are frozen dataclasses, so structural keys work.
        # The closures capture the allocation lists (mutated in place, never
        # rebound) and ``strict_alignment`` (fixed at construction).
        self._scalar_readers: dict = {}
        self._vector_readers: dict = {}
        self._vector_writers: dict = {}
        self._packed_readers: dict = {}
        self._packed_writers: dict = {}
        # Dirty-page tracking for copy-on-write snapshots.  None (the
        # default) = tracking off, zero overhead beyond one is-None test per
        # write.  When tracking, maps Allocation -> set of dirty page
        # indices; an allocation *absent* from the map post-dates the last
        # snapshot and is treated as fully dirty, so alloc() stays free.
        self._dirty: dict | None = None

    def _check_alignment(self, addr: int, size: int) -> None:
        if self.strict_alignment and size > 1 and addr % size != 0:
            from ..errors import AlignmentFault

            raise AlignmentFault(
                f"misaligned {size}-byte access at {hex(addr)}"
            )

    # -- allocation ------------------------------------------------------------

    def alloc(self, size: int, label: str = "") -> int:
        """Allocate ``size`` bytes, returning the base address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        alloc = Allocation(self._next, size, label)
        self._allocations.append(alloc)
        self._bases.append(alloc.base)
        self._next = alloc.end + GUARD_GAP
        self.bytes_allocated += size
        return alloc.base

    def alloc_typed(self, type: Type, count: int = 1, label: str = "") -> int:
        return self.alloc(type.store_size() * count, label)

    def _find(self, addr: int, size: int) -> Allocation:
        i = bisect_right(self._bases, addr) - 1
        if i >= 0:
            alloc = self._allocations[i]
            if alloc.base <= addr and addr + size <= alloc.end:
                return alloc
        raise MemoryFault(
            f"invalid {size}-byte access at {hex(addr) if addr >= 0 else addr}"
        )

    def check_range(self, addr: int, size: int) -> None:
        self._find(addr, size)

    def range_ok(self, addr: int, size: int) -> bool:
        """Non-raising bounds test: is ``[addr, addr+size)`` fully mapped?

        Guard gaps between allocations mean a contiguous range is mapped
        iff it lies inside one allocation, so this is the exact whole-vector
        precondition the batched masked-intrinsic path needs.
        """
        i = bisect_right(self._bases, addr) - 1
        if i < 0:
            return False
        alloc = self._allocations[i]
        return alloc.base <= addr and addr + size <= alloc.end

    # -- raw bytes --------------------------------------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        alloc = self._find(addr, size)
        off = addr - alloc.base
        return bytes(alloc.data[off : off + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        size = len(data)
        alloc = self._find(addr, size)
        off = addr - alloc.base
        alloc.data[off : off + size] = data
        dirty = self._dirty
        if dirty is not None and size:
            pages = dirty.get(alloc)
            if pages is not None:
                pages.update(
                    range(off >> PAGE_SHIFT, ((off + size - 1) >> PAGE_SHIFT) + 1)
                )

    # -- typed scalar access -------------------------------------------------------
    #
    # Typed accesses dominate interpreter run time, so each (memory, type)
    # pair gets a memoized closure: one bisect, one bounds compare, and one
    # pre-compiled ``struct`` conversion replace the generic
    # store_size/alignment/isinstance/from_bytes chain.  The closures are
    # bit-exact re-statements of the generic paths below (signed unpack ==
    # ``wrap_int``; ``<f``/``<d`` unpack == ``bits_to_float``) and fall back
    # to them for unusual widths and for faulting accesses, so trap messages
    # and partial-write behaviour are unchanged.

    #: scalar type -> struct format char, for types whose memory image is a
    #: native machine scalar (everything else takes the generic path).
    _STRUCT_CODES = {
        IntType(32): "i",
        IntType(64): "q",
        FloatType(32): "f",
        FloatType(64): "d",
    }

    def _struct_code(self, type: Type) -> str | None:
        if isinstance(type, PointerType):
            return "Q"
        return self._STRUCT_CODES.get(type)

    def read_scalar(self, type: Type, addr: int):
        reader = self._scalar_readers.get(type)
        if reader is None:
            reader = self._scalar_readers[type] = self._build_scalar_reader(type)
        return reader(addr)

    def _read_scalar_generic(self, type: Type, addr: int):
        size = type.store_size()
        self._check_alignment(addr, size)
        raw = self.read_bytes(addr, size)
        if isinstance(type, IntType):
            return wrap_int(int.from_bytes(raw, "little"), type.bits)
        if isinstance(type, FloatType):
            return bits_to_float(int.from_bytes(raw, "little"), type.bits)
        if isinstance(type, PointerType):
            return int.from_bytes(raw, "little")
        raise MemoryFault(f"cannot read scalar of type {type}")

    def _build_scalar_reader(self, type: Type):
        code = self._struct_code(type)
        if code is None or self.strict_alignment:

            def read(addr, _type=type):
                return self._read_scalar_generic(_type, addr)

            return read

        fmt = struct.Struct("<" + code)
        size = fmt.size
        unpack_from = fmt.unpack_from
        bases = self._bases
        allocs = self._allocations

        def read(addr):
            i = bisect_right(bases, addr) - 1
            if i >= 0:
                alloc = allocs[i]
                off = addr - alloc.base
                if off >= 0 and off + size <= alloc.size:
                    return unpack_from(alloc.data, off)[0]
            return self._read_scalar_generic(type, addr)  # exact trap message

        return read

    def write_scalar(self, type: Type, addr: int, value) -> None:
        size = type.store_size()
        self._check_alignment(addr, size)
        if isinstance(type, IntType):
            raw = to_unsigned(int(value), size * 8).to_bytes(size, "little")
        elif isinstance(type, FloatType):
            raw = float_to_bits(float(value), type.bits).to_bytes(size, "little")
        elif isinstance(type, PointerType):
            raw = (int(value) & (2**64 - 1)).to_bytes(size, "little")
        else:
            raise MemoryFault(f"cannot write scalar of type {type}")
        self.write_bytes(addr, raw)

    # -- typed vector access ---------------------------------------------------------

    def read_vector(self, type: VectorType, addr: int) -> list:
        reader = self._vector_readers.get(type)
        if reader is None:
            reader = self._vector_readers[type] = self._build_vector_reader(type)
        return reader(addr)

    def _read_vector_generic(self, type: VectorType, addr: int) -> list:
        elem = type.element
        stride = elem.store_size()
        return [
            self.read_scalar(elem, addr + i * stride) for i in range(type.length)
        ]

    #: struct code -> ndarray dtype for the bulk accessors below.  A single
    #: ``frombuffer``/``tobytes`` replaces per-element struct conversion:
    #: one copy per access, not one per lane.  Bit-exact: integer and f64
    #: lanes are raw copies, f32 ``tolist`` widens through the same hardware
    #: cvtss2sd as ``struct.unpack('<f')`` (quiet-NaN behaviour included),
    #: and 'Q' pointers read back as the nonnegative 64-bit patterns.
    _CODE_DTYPES = {
        "i": np.int32,
        "q": np.int64,
        "f": np.float32,
        "d": np.float64,
        "Q": np.uint64,
    }

    def _build_vector_reader(self, type: VectorType):
        code = self._struct_code(type.element)
        if code is None or self.strict_alignment:

            def read(addr, _type=type):
                return self._read_vector_generic(_type, addr)

            return read

        dtype = self._CODE_DTYPES[code]
        length = type.length
        size = length * np.dtype(dtype).itemsize
        frombuffer = np.frombuffer
        bases = self._bases
        allocs = self._allocations

        def read(addr):
            i = bisect_right(bases, addr) - 1
            if i >= 0:
                alloc = allocs[i]
                off = addr - alloc.base
                if off >= 0 and off + size <= alloc.size:
                    return frombuffer(
                        alloc.data, dtype, length, off
                    ).tolist()
            # Guard gaps mean a contiguous vector can never straddle two
            # allocations, so a bulk bounds failure is a per-lane failure
            # too: replay lane-wise for the exact faulting lane/message.
            return self._read_vector_generic(type, addr)

        return read

    def write_vector(self, type: VectorType, addr: int, values: Sequence) -> None:
        writer = self._vector_writers.get(type)
        if writer is None:
            writer = self._vector_writers[type] = self._build_vector_writer(type)
        writer(addr, values)

    def _write_vector_generic(
        self, type: VectorType, addr: int, values: Sequence
    ) -> None:
        elem = type.element
        stride = elem.store_size()
        for i, v in enumerate(values):
            self.write_scalar(elem, addr + i * stride, v)

    def _build_vector_writer(self, type: VectorType):
        elem = type.element
        code = self._struct_code(elem)
        if code is None or self.strict_alignment:

            def write(addr, values, _type=type):
                self._write_vector_generic(_type, addr, values)

            return write

        dtype = self._CODE_DTYPES[code]
        length = type.length
        size = length * np.dtype(dtype).itemsize
        bases = self._bases
        allocs = self._allocations
        if isinstance(elem, FloatType):
            # One ndarray cast replaces the per-lane float()/_clamp_f32
            # loop: narrowing a binary64 magnitude beyond the binary32
            # range yields ±inf, the same mapping _clamp_f32 applied
            # before struct.pack('<f') — errstate keeps the cast's
            # overflow note from surfacing as a warning.
            def convert(values):
                with np.errstate(over="ignore", invalid="ignore"):
                    return np.array(values, dtype)

        elif code == "Q":  # pointers: store the 64-bit pattern
            def convert(values):
                return np.array(
                    [int(v) & 0xFFFFFFFFFFFFFFFF for v in values], dtype
                )

        else:
            # The signed dtypes accept the canonical signed range directly;
            # out-of-range raw ints (host-supplied) raise OverflowError in
            # the cast and take the generic path instead.
            def convert(values):
                try:
                    return np.array(values, dtype)
                except OverflowError:
                    return None

        def write(addr, values):
            i = bisect_right(bases, addr) - 1
            if i >= 0:
                alloc = allocs[i]
                off = addr - alloc.base
                if off >= 0 and off + size <= alloc.size:
                    converted = convert(values)
                    if converted is not None:
                        alloc.data[off : off + size] = converted.tobytes()
                        dirty = self._dirty
                        if dirty is not None:
                            pages = dirty.get(alloc)
                            if pages is not None:
                                pages.update(
                                    range(
                                        off >> PAGE_SHIFT,
                                        ((off + size - 1) >> PAGE_SHIFT) + 1,
                                    )
                                )
                        return
            # Bounds failure or non-canonical values: the generic lane-wise
            # path preserves exact trap messages and partial-write order.
            self._write_vector_generic(type, addr, values)

        return write

    # -- packed (ndarray) vector access ----------------------------------------
    #
    # The compiled engine's batched tier moves whole vectors between memory
    # and packed ndarray register slots.  Reads return *raw* bit patterns
    # (no f32 NaN quieting — see vm/bits.py for why that is unobservable);
    # writes quiet f32 NaN lanes first, because that is exactly what the
    # scalar path's load-then-store round trip would have produced.

    def packed_reader(self, type: VectorType):
        """A memoized ``addr -> ndarray`` bulk reader for one vector type."""
        reader = self._packed_readers.get(type)
        if reader is None:
            reader = self._packed_readers[type] = self._build_packed_reader(type)
        return reader

    def _build_packed_reader(self, type: VectorType):
        dtype = np_dtype(type.element)
        if dtype is None or self.strict_alignment:
            # Unusual element types and strict-alignment checking go
            # through the canonical lane path, packed afterwards.
            def read(addr, _type=type):
                return np.array(self._read_vector_generic(_type, addr))

            return read

        length = type.length
        itemsize = np.dtype(dtype).itemsize
        lo_mask = itemsize - 1
        shift = itemsize.bit_length() - 1
        size = length * itemsize
        frombuffer = np.frombuffer
        bases = self._bases
        allocs = self._allocations
        # Last-hit allocation memo: loops stream through one array, so the
        # common case skips the bisect entirely.  A stale memo is harmless —
        # the bounds check rejects it and the bisect path takes over (freed
        # allocations are never unmapped from the address space).
        last = None

        def read(addr):
            nonlocal last
            alloc = last
            if alloc is not None:
                off = addr - alloc.base
                if 0 <= off and off + size <= alloc.size:
                    if not off & lo_mask:
                        view = alloc.views.get(dtype)
                        if view is None:
                            view = alloc.views[dtype] = frombuffer(
                                alloc.data, dtype, alloc.size >> shift
                            )
                        q = off >> shift
                        return view[q : q + length].copy()
                    return frombuffer(alloc.data, dtype, length, off).copy()
            i = bisect_right(bases, addr) - 1
            if i >= 0:
                alloc = allocs[i]
                off = addr - alloc.base
                if off >= 0 and off + size <= alloc.size:
                    last = alloc
                    if not off & lo_mask:
                        # Element-aligned: slice the cached whole-buffer
                        # view (one frombuffer per allocation, ever).
                        view = alloc.views.get(dtype)
                        if view is None:
                            view = alloc.views[dtype] = frombuffer(
                                alloc.data, dtype, alloc.size >> shift
                            )
                        q = off >> shift
                        return view[q : q + length].copy()
                    return frombuffer(alloc.data, dtype, length, off).copy()
            return np.array(self._read_vector_generic(type, addr))

        return read

    def packed_writer(self, type: VectorType, quiet: bool = True):
        """A memoized ``(addr, ndarray) -> None`` bulk writer.

        ``quiet=False`` skips the f32 NaN quieting — for read-modify-write
        sequences (masked stores) that must put back the *raw* bit patterns
        of the lanes they did not touch.
        """
        key = (type, quiet)
        writer = self._packed_writers.get(key)
        if writer is None:
            writer = self._packed_writers[key] = self._build_packed_writer(
                type, quiet
            )
        return writer

    def _build_packed_writer(self, type: VectorType, quiet: bool):
        dtype = np_dtype(type.element)
        if dtype is None or self.strict_alignment:

            def write(addr, array, _type=type):
                self._write_vector_generic(_type, addr, array.tolist())

            return write

        length = type.length
        itemsize = np.dtype(dtype).itemsize
        lo_mask = itemsize - 1
        shift = itemsize.bit_length() - 1
        size = length * itemsize
        frombuffer = np.frombuffer
        quiet = quiet and dtype is np.float32
        bases = self._bases
        allocs = self._allocations

        def write(addr, array):
            i = bisect_right(bases, addr) - 1
            if i >= 0:
                alloc = allocs[i]
                off = addr - alloc.base
                if off >= 0 and off + size <= alloc.size:
                    if quiet:
                        array = quiet_nan_f32(array)
                    if not off & lo_mask:
                        # Element-aligned: store through the cached
                        # whole-buffer view (bit-identical to the tobytes
                        # path — the array already has this exact dtype).
                        view = alloc.views.get(dtype)
                        if view is None:
                            view = alloc.views[dtype] = frombuffer(
                                alloc.data, dtype, alloc.size >> shift
                            )
                        q = off >> shift
                        view[q : q + length] = array
                    else:
                        alloc.data[off : off + size] = array.tobytes()
                    dirty = self._dirty
                    if dirty is not None:
                        pages = dirty.get(alloc)
                        if pages is not None:
                            pages.update(
                                range(
                                    off >> PAGE_SHIFT,
                                    ((off + size - 1) >> PAGE_SHIFT) + 1,
                                )
                            )
                    return
            # Bounds failure: the lane-wise path raises the exact per-lane
            # trap message (tolist canonicalizes, quieting f32 NaNs the
            # same way the in-bounds path just would have).
            self._write_vector_generic(type, addr, array.tolist())

        return write

    # -- snapshots (see vm/snapshot.py) ----------------------------------------------
    #
    # The write paths above mark dirty pages when tracking is on; taking a
    # snapshot copies only the pages written since the previous one and
    # shares the rest with it, then resets tracking.  Restore rebuilds the
    # allocation lists *in place*: the specialised accessor closures capture
    # the list objects, never re-read the attributes.

    def snapshot(self, prev: MemoryImage | None = None) -> MemoryImage:
        """Copy-on-write snapshot of the full memory state.

        ``prev`` is the chronologically previous snapshot of *this* memory:
        pages not dirtied since it was taken are shared with it instead of
        copied.  Without ``prev`` (or without tracking yet) every page is
        copied.  Enables dirty tracking as a side effect, so a snapshot
        chain pays one full copy up front and deltas afterwards.
        """
        dirty = self._dirty
        images = []
        for alloc in self._allocations:
            prev_img = prev.image_at(alloc.base) if prev is not None else None
            dirty_pages = dirty.get(alloc) if dirty is not None else None
            if (
                prev_img is None
                or prev_img.size != alloc.size
                or dirty_pages is None
            ):
                pages = split_pages(alloc.data)
            else:
                shared = list(prev_img.pages)
                for pi in dirty_pages:
                    lo = pi << PAGE_SHIFT
                    shared[pi] = bytes(alloc.data[lo : lo + PAGE_SIZE])
                pages = tuple(shared)
            images.append(AllocationImage(alloc.base, alloc.size, alloc.label, pages))
        self._dirty = {alloc: set() for alloc in self._allocations}
        return MemoryImage(images, self._next, self.bytes_allocated)

    def restore(self, image: MemoryImage) -> None:
        """Reset the memory to a snapshot's exact state.

        Mutates the allocation lists in place (the accessor closures hold
        references to the list objects) and turns dirty tracking off —
        restored executions are faulty suffixes, which never snapshot.
        """
        allocs = self._allocations
        bases = self._bases
        del allocs[:]
        del bases[:]
        for img in image.images:
            alloc = Allocation(img.base, img.size, img.label)
            alloc.data[:] = b"".join(img.pages)
            allocs.append(alloc)
            bases.append(img.base)
        self._next = image.next_base
        self.bytes_allocated = image.bytes_allocated
        self._dirty = None

    def read_value(self, type: Type, addr: int):
        if isinstance(type, VectorType):
            return self.read_vector(type, addr)
        return self.read_scalar(type, addr)

    def write_value(self, type: Type, addr: int, value) -> None:
        if isinstance(type, VectorType):
            self.write_vector(type, addr, value)
        else:
            self.write_scalar(type, addr, value)

    # -- numpy bridging (harness convenience) --------------------------------------------

    _NP_DTYPES = {
        (True, 32): np.int32,
        (True, 64): np.int64,
        (False, 32): np.float32,
        (False, 64): np.float64,
    }

    def store_array(self, elem_type: Type, values, label: str = "") -> int:
        """Allocate an array, fill it from a Python/NumPy sequence, and
        return its base address."""
        values = np.asarray(values)
        addr = self.alloc_typed(elem_type, int(values.size), label)
        if isinstance(elem_type, IntType) and elem_type.bits in (32, 64):
            dtype = self._NP_DTYPES[(True, elem_type.bits)]
        elif isinstance(elem_type, FloatType):
            dtype = self._NP_DTYPES[(False, elem_type.bits)]
        else:
            for i, v in enumerate(values.tolist()):
                self.write_scalar(elem_type, addr + i * elem_type.store_size(), v)
            return addr
        raw = np.ascontiguousarray(values.astype(dtype)).tobytes()
        self.write_bytes(addr, raw)
        return addr

    def load_array(self, elem_type: Type, addr: int, count: int) -> np.ndarray:
        """Read ``count`` elements starting at ``addr`` as a NumPy array."""
        size = elem_type.store_size() * count
        raw = self.read_bytes(addr, size)
        if isinstance(elem_type, IntType) and elem_type.bits in (32, 64):
            return np.frombuffer(raw, dtype=self._NP_DTYPES[(True, elem_type.bits)]).copy()
        if isinstance(elem_type, FloatType):
            return np.frombuffer(raw, dtype=self._NP_DTYPES[(False, elem_type.bits)]).copy()
        return np.array(
            [
                self.read_scalar(elem_type, addr + i * elem_type.store_size())
                for i in range(count)
            ]
        )
