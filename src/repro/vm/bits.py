"""Bit-level value semantics for the simulated machine.

The fault model (paper §II-B) flips a *single bit at a random bit position*
of a register holding an integer or floating-point value, so the VM must
give every runtime value a well-defined bit pattern:

* integers are fixed-width two's complement (canonicalized to the signed
  range, matching :class:`repro.ir.values.ConstantInt`);
* ``float`` is IEEE-754 binary32 — every arithmetic result is re-rounded
  through binary32 so flipped mantissa bits behave exactly as on hardware;
* ``double`` is the native Python float (binary64).

All helpers here are pure functions; the interpreter and the fault-injection
runtime are the only callers.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from ..errors import InjectionError

# -- integer helpers ---------------------------------------------------------


def wrap_int(value: int, bits: int) -> int:
    """Canonicalize ``value`` into the signed range of an ``bits``-wide int.

    For i1 the canonical values are 0 and 1 (LLVM treats i1 as a boolean).
    """
    mask = (1 << bits) - 1
    v = value & mask
    if bits == 1:
        return v
    if v >= 1 << (bits - 1):
        v -= 1 << bits
    return v


def to_unsigned(value: int, bits: int) -> int:
    """The unsigned interpretation (bit pattern) of a canonical signed int."""
    return value & ((1 << bits) - 1)


def flip_bit_int(value: int, bit: int, bits: int) -> int:
    """Flip bit ``bit`` (0 = LSB) of an integer's two's-complement pattern."""
    if not 0 <= bit < bits:
        raise InjectionError(f"bit {bit} out of range for i{bits}")
    return wrap_int(to_unsigned(value, bits) ^ (1 << bit), bits)


# -- float <-> bit-pattern conversions ----------------------------------------


def float_to_bits(value: float, bits: int) -> int:
    """IEEE-754 bit pattern of ``value`` (binary32 or binary64)."""
    if bits == 32:
        return struct.unpack("<I", struct.pack("<f", _clamp_f32(value)))[0]
    if bits == 64:
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    raise InjectionError(f"no float of width {bits}")


def bits_to_float(pattern: int, bits: int) -> float:
    if bits == 32:
        return struct.unpack("<f", struct.pack("<I", pattern & 0xFFFFFFFF))[0]
    if bits == 64:
        return struct.unpack("<d", struct.pack("<Q", pattern & (2**64 - 1)))[0]
    raise InjectionError(f"no float of width {bits}")


def flip_bit_float(value: float, bit: int, bits: int) -> float:
    """Flip one bit of the IEEE representation (0 = mantissa LSB)."""
    if not 0 <= bit < bits:
        raise InjectionError(f"bit {bit} out of range for f{bits}")
    return bits_to_float(float_to_bits(value, bits) ^ (1 << bit), bits)


# -- binary32 rounding ---------------------------------------------------------


def _clamp_f32(value: float) -> float:
    """Map overflowing magnitudes to ±inf so struct.pack('<f') never raises."""
    if value != value or value in (math.inf, -math.inf):
        return value
    if value > 3.4028235677973366e38:
        return math.inf
    if value < -3.4028235677973366e38:
        return -math.inf
    return value


def round_f32(value: float) -> float:
    """Round a Python float to the nearest binary32 value (ties-to-even),
    returning it widened back to a Python float."""
    return struct.unpack("<f", struct.pack("<f", _clamp_f32(value)))[0]


def round_float(value: float, bits: int) -> float:
    return round_f32(value) if bits == 32 else value


# -- fptosi with x86 semantics --------------------------------------------------


def float_to_int_trunc(value: float, bits: int) -> int:
    """Truncating float→signed-int conversion with x86 ``cvttss2si``
    semantics: NaN and out-of-range inputs produce INT_MIN of the width
    (the "integer indefinite" value) instead of raising.

    LLVM leaves these cases undefined; a fault-injection VM must still pick a
    deterministic behaviour, and the hardware the paper ran on picks this one.
    """
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    if value != value or value in (math.inf, -math.inf):
        return lo
    t = math.trunc(value)
    if t < lo or t > hi:
        return lo
    return t


def float_to_uint_trunc(value: float, bits: int) -> int:
    """Truncating float→unsigned conversion; out-of-range yields the wrapped
    two's-complement pattern of INT_MIN (canonical signed form)."""
    if value != value or value in (math.inf, -math.inf):
        return wrap_int(1 << (bits - 1), bits)
    t = math.trunc(value)
    if t < 0 or t > (1 << bits) - 1:
        return wrap_int(1 << (bits - 1), bits)
    return wrap_int(t, bits)


# -- generic single-bit flips on typed values -------------------------------------


def flip_bit_scalar(value, bit: int, ir_type) -> int | float:
    """Flip one bit of a runtime scalar according to its IR type.

    Pointers are treated as 64-bit integers — a flipped pointer is precisely
    how address faults become wild accesses.
    """
    from ..ir.types import FloatType, IntType, PointerType

    if isinstance(ir_type, IntType):
        return flip_bit_int(value, bit, ir_type.bits)
    if isinstance(ir_type, FloatType):
        return flip_bit_float(value, bit, ir_type.bits)
    if isinstance(ir_type, PointerType):
        return flip_bit_int(value, bit, 64)
    raise InjectionError(f"cannot flip bits of a value of type {ir_type}")


def bit_width(ir_type) -> int:
    """Number of flippable bits in a scalar of ``ir_type``."""
    from ..ir.types import FloatType, IntType, PointerType

    if isinstance(ir_type, (IntType, FloatType)):
        return ir_type.bits
    if isinstance(ir_type, PointerType):
        return 64
    raise InjectionError(f"type {ir_type} has no bit width")


# -- packed ndarray lane representation ----------------------------------------
#
# The compiled engine's batched tier (vm/compile.py) holds vector registers
# as packed NumPy ndarrays.  The *canonical* register representation stays
# the Python list of canonical scalars defined above; the helpers below are
# the only sanctioned bridge between the two, and they are bit-exact by
# construction:
#
# * integers: canonical two's-complement values fit their signed dtype, so
#   ``np.array``/``tolist`` round-trip exactly (i1 lanes ride in int8 as
#   0/1);
# * binary64: ``float64`` lanes are raw copies of the Python float — no
#   conversion ever happens, so even signalling-NaN patterns (which f64
#   registers can legally hold) survive untouched;
# * binary32: canonical f32 values are exactly-representable doubles whose
#   narrowing is exact, and widening back via ``tolist`` uses the same
#   hardware cvtss2sd as ``struct.unpack('<f')``, quiet-NaN behaviour
#   included.  Packed f32 arrays may hold *raw* signalling-NaN patterns
#   (bulk memory reads skip the per-lane quieting that struct.unpack
#   performs); :func:`quiet_nan_f32` applies the exact hardware quieting —
#   set the quiet bit, keep payload and sign — at the escape points where
#   the scalar path would have quieted (packed f32 stores, f32->int
#   bitcasts).  ``tolist`` quiets on its own, matching the scalar loads.
#
# ``VECTOR_EVENTS`` counts ndarray traffic for the perf harness: packed
# slots allocated by compiled chains, list->ndarray packs at chain entry,
# and ndarray->list unpacks on decoded fallback.

VECTOR_EVENTS = {"ndarray_slots": 0, "list_packs": 0, "fallback_unpacks": 0}

_NP_INT_DTYPES = {1: np.int8, 8: np.int8, 16: np.int16, 32: np.int32, 64: np.int64}


def np_dtype(elem_type):
    """The packed dtype for one IR scalar type, or ``None`` when the type
    has no exact ndarray representation (pointers stay unrolled Python
    ints: they are unbounded 64-bit patterns plus provenance)."""
    from ..ir.types import FloatType, IntType

    if isinstance(elem_type, IntType):
        return _NP_INT_DTYPES.get(elem_type.bits)
    if isinstance(elem_type, FloatType):
        return np.float32 if elem_type.bits == 32 else np.float64
    return None


def np_uint_view(dtype):
    """The same-width unsigned dtype used for bit-pattern reinterpretation."""
    return {
        np.int8: np.uint8,
        np.int16: np.uint16,
        np.int32: np.uint32,
        np.int64: np.uint64,
        np.float32: np.uint32,
        np.float64: np.uint64,
    }[dtype]


def pack_lanes(values, dtype) -> np.ndarray:
    """Pack a canonical lane list into a fresh ndarray (exact, see above)."""
    return np.array(values, dtype)


def unpack_lanes(array) -> list:
    """Unpack an ndarray back to the canonical lane list."""
    return array.tolist()


def as_packed(value, dtype) -> np.ndarray:
    """Register read under the packed representation: ndarrays pass through,
    canonical lists are packed on the spot (counted, so the perf harness can
    see churn at chain boundaries)."""
    if type(value) is np.ndarray:
        return value
    VECTOR_EVENTS["list_packs"] += 1
    return np.array(value, dtype)


def as_lanes(value) -> list:
    """Register read under the canonical representation: lists pass through,
    packed slots unpack (f32 lanes widen exactly like ``struct.unpack``)."""
    if type(value) is np.ndarray:
        return value.tolist()
    return value


def quiet_nan_f32(array: np.ndarray) -> np.ndarray:
    """Set the quiet bit (0x00400000) on every NaN lane of a float32 array —
    the exact effect hardware load-quieting has on a signalling NaN, and a
    no-op on quiet NaNs.  Returns the input unchanged (no copy) when no lane
    is NaN."""
    nan = np.isnan(array)
    if not nan.any():
        return array
    bits = array.view(np.uint32).copy()
    bits[nan] |= 0x00400000
    return bits.view(np.float32)
