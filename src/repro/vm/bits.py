"""Bit-level value semantics for the simulated machine.

The fault model (paper §II-B) flips a *single bit at a random bit position*
of a register holding an integer or floating-point value, so the VM must
give every runtime value a well-defined bit pattern:

* integers are fixed-width two's complement (canonicalized to the signed
  range, matching :class:`repro.ir.values.ConstantInt`);
* ``float`` is IEEE-754 binary32 — every arithmetic result is re-rounded
  through binary32 so flipped mantissa bits behave exactly as on hardware;
* ``double`` is the native Python float (binary64).

All helpers here are pure functions; the interpreter and the fault-injection
runtime are the only callers.
"""

from __future__ import annotations

import math
import struct

from ..errors import InjectionError

# -- integer helpers ---------------------------------------------------------


def wrap_int(value: int, bits: int) -> int:
    """Canonicalize ``value`` into the signed range of an ``bits``-wide int.

    For i1 the canonical values are 0 and 1 (LLVM treats i1 as a boolean).
    """
    mask = (1 << bits) - 1
    v = value & mask
    if bits == 1:
        return v
    if v >= 1 << (bits - 1):
        v -= 1 << bits
    return v


def to_unsigned(value: int, bits: int) -> int:
    """The unsigned interpretation (bit pattern) of a canonical signed int."""
    return value & ((1 << bits) - 1)


def flip_bit_int(value: int, bit: int, bits: int) -> int:
    """Flip bit ``bit`` (0 = LSB) of an integer's two's-complement pattern."""
    if not 0 <= bit < bits:
        raise InjectionError(f"bit {bit} out of range for i{bits}")
    return wrap_int(to_unsigned(value, bits) ^ (1 << bit), bits)


# -- float <-> bit-pattern conversions ----------------------------------------


def float_to_bits(value: float, bits: int) -> int:
    """IEEE-754 bit pattern of ``value`` (binary32 or binary64)."""
    if bits == 32:
        return struct.unpack("<I", struct.pack("<f", _clamp_f32(value)))[0]
    if bits == 64:
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    raise InjectionError(f"no float of width {bits}")


def bits_to_float(pattern: int, bits: int) -> float:
    if bits == 32:
        return struct.unpack("<f", struct.pack("<I", pattern & 0xFFFFFFFF))[0]
    if bits == 64:
        return struct.unpack("<d", struct.pack("<Q", pattern & (2**64 - 1)))[0]
    raise InjectionError(f"no float of width {bits}")


def flip_bit_float(value: float, bit: int, bits: int) -> float:
    """Flip one bit of the IEEE representation (0 = mantissa LSB)."""
    if not 0 <= bit < bits:
        raise InjectionError(f"bit {bit} out of range for f{bits}")
    return bits_to_float(float_to_bits(value, bits) ^ (1 << bit), bits)


# -- binary32 rounding ---------------------------------------------------------


def _clamp_f32(value: float) -> float:
    """Map overflowing magnitudes to ±inf so struct.pack('<f') never raises."""
    if value != value or value in (math.inf, -math.inf):
        return value
    if value > 3.4028235677973366e38:
        return math.inf
    if value < -3.4028235677973366e38:
        return -math.inf
    return value


def round_f32(value: float) -> float:
    """Round a Python float to the nearest binary32 value (ties-to-even),
    returning it widened back to a Python float."""
    return struct.unpack("<f", struct.pack("<f", _clamp_f32(value)))[0]


def round_float(value: float, bits: int) -> float:
    return round_f32(value) if bits == 32 else value


# -- fptosi with x86 semantics --------------------------------------------------


def float_to_int_trunc(value: float, bits: int) -> int:
    """Truncating float→signed-int conversion with x86 ``cvttss2si``
    semantics: NaN and out-of-range inputs produce INT_MIN of the width
    (the "integer indefinite" value) instead of raising.

    LLVM leaves these cases undefined; a fault-injection VM must still pick a
    deterministic behaviour, and the hardware the paper ran on picks this one.
    """
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    if value != value or value in (math.inf, -math.inf):
        return lo
    t = math.trunc(value)
    if t < lo or t > hi:
        return lo
    return t


def float_to_uint_trunc(value: float, bits: int) -> int:
    """Truncating float→unsigned conversion; out-of-range yields the wrapped
    two's-complement pattern of INT_MIN (canonical signed form)."""
    if value != value or value in (math.inf, -math.inf):
        return wrap_int(1 << (bits - 1), bits)
    t = math.trunc(value)
    if t < 0 or t > (1 << bits) - 1:
        return wrap_int(1 << (bits - 1), bits)
    return wrap_int(t, bits)


# -- generic single-bit flips on typed values -------------------------------------


def flip_bit_scalar(value, bit: int, ir_type) -> int | float:
    """Flip one bit of a runtime scalar according to its IR type.

    Pointers are treated as 64-bit integers — a flipped pointer is precisely
    how address faults become wild accesses.
    """
    from ..ir.types import FloatType, IntType, PointerType

    if isinstance(ir_type, IntType):
        return flip_bit_int(value, bit, ir_type.bits)
    if isinstance(ir_type, FloatType):
        return flip_bit_float(value, bit, ir_type.bits)
    if isinstance(ir_type, PointerType):
        return flip_bit_int(value, bit, 64)
    raise InjectionError(f"cannot flip bits of a value of type {ir_type}")


def bit_width(ir_type) -> int:
    """Number of flippable bits in a scalar of ``ir_type``."""
    from ..ir.types import FloatType, IntType, PointerType

    if isinstance(ir_type, (IntType, FloatType)):
        return ir_type.bits
    if isinstance(ir_type, PointerType):
        return 64
    raise InjectionError(f"type {ir_type} has no bit width")
