"""Bit-accurate interpreter for the vector IR — the simulated CPU.

Semantics notes (all deliberate, all x86-flavoured, see DESIGN.md):

* ``float`` arithmetic re-rounds every result through IEEE binary32;
* integer division by zero (and ``INT_MIN / -1``) raises
  :class:`~repro.errors.ArithmeticTrap` — the simulated SIGFPE;
* shift counts are masked to the operand width (x86 behaviour) rather than
  producing poison;
* ``fptosi`` of NaN/out-of-range produces ``INT_MIN`` (``cvttss2si``);
* masked vector intrinsics only touch memory in active lanes, so a masked
  load of a partially out-of-bounds cache line does not fault — exactly why
  ISPC's partial-iteration code is safe and why VULFI must respect masks;
* every executed instruction counts toward the dynamic-instruction total
  (Table I) and is classified scalar vs vector (Fig. 10's denominator).

External functions (the VULFI runtime, detector runtime) are bound by name
via :meth:`Interpreter.bind`; unbound declarations trap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import ArithmeticTrap, InvalidOperation, StepLimitExceeded
from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    CastOp,
    CompareOp,
    CondBranch,
    ExtractElement,
    FNeg,
    GetElementPtr,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    ShuffleVector,
    Store,
    Unreachable,
)
from ..ir.intrinsics import MASK_SIGN, IntrinsicInfo, get_intrinsic, is_intrinsic_name
from ..ir.module import Function, Module
from ..ir.types import FloatType, IntType, PointerType, Type, VectorType
from ..ir.values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ConstantVector,
    UndefValue,
    Value,
)
from .bits import (
    bits_to_float,
    float_to_bits,
    float_to_int_trunc,
    float_to_uint_trunc,
    round_f32,
    to_unsigned,
    wrap_int,
)
from .memory import Memory

DEFAULT_STEP_LIMIT = 20_000_000


@dataclass
class ExecutionStats:
    """Dynamic execution accounting for one program run."""

    total: int = 0
    scalar: int = 0
    vector: int = 0
    by_opcode: dict = field(default_factory=dict)

    def reset(self) -> None:
        self.total = 0
        self.scalar = 0
        self.vector = 0
        self.by_opcode.clear()


def _sign_active(lane_value, lane_type: Type) -> bool:
    """x86 mask convention: a lane is active when its sign bit is set."""
    if isinstance(lane_type, FloatType):
        return bool(float_to_bits(lane_value, lane_type.bits) >> (lane_type.bits - 1))
    return lane_value < 0


class Interpreter:
    """Executes IR functions of one module against a fresh :class:`Memory`."""

    def __init__(
        self,
        module: Module,
        step_limit: int = DEFAULT_STEP_LIMIT,
        count_opcodes: bool = False,
        strict_alignment: bool = False,
    ):
        self.module = module
        self.memory = Memory(strict_alignment=strict_alignment)
        self.step_limit = step_limit
        self.count_opcodes = count_opcodes
        self.stats = ExecutionStats()
        self.externals: dict[str, Callable] = {}
        self._const_cache: dict[int, object] = {}
        self._vec_cache: dict[int, bool] = {}

    # -- configuration ---------------------------------------------------------

    def bind(self, name: str, fn: Callable) -> None:
        """Bind a host callable to a declared function name."""
        self.externals[name] = fn

    def bind_all(self, bindings: dict[str, Callable]) -> None:
        self.externals.update(bindings)

    # -- public API --------------------------------------------------------------

    def run(self, function: str | Function, args: Sequence) -> object:
        """Execute ``function`` with the given argument values."""
        fn = (
            self.module.get_function(function)
            if isinstance(function, str)
            else function
        )
        if fn.is_declaration:
            raise InvalidOperation(f"cannot run declaration @{fn.name}")
        if len(args) != len(fn.args):
            raise InvalidOperation(
                f"@{fn.name} expects {len(fn.args)} args, got {len(args)}"
            )
        return self._exec_function(fn, list(args))

    # -- value resolution -----------------------------------------------------------

    def _const(self, c: Constant):
        cached = self._const_cache.get(id(c))
        if cached is not None:
            return cached
        if isinstance(c, ConstantInt):
            v: object = c.value
        elif isinstance(c, ConstantFloat):
            v = round_f32(c.value) if c.type.bits == 32 else c.value
        elif isinstance(c, ConstantVector):
            v = [self._const(e) for e in c.elements]
        elif isinstance(c, ConstantPointerNull):
            v = 0
        elif isinstance(c, UndefValue):
            # Deterministic zero for undef: fault campaigns must be replayable.
            if isinstance(c.type, VectorType):
                v = [0.0 if c.type.element.is_float() else 0] * c.type.length
            elif c.type.is_float():
                v = 0.0
            else:
                v = 0
        else:
            raise InvalidOperation(f"cannot evaluate constant {c!r}")
        self._const_cache[id(c)] = v
        return v

    # -- main loop ---------------------------------------------------------------------

    def _exec_function(self, fn: Function, args: list):
        regs: dict[Value, object] = {}
        for formal, actual in zip(fn.args, args):
            regs[formal] = actual

        const = self._const
        stats = self.stats
        vec_cache = self._vec_cache
        block = fn.entry
        prev_block = None

        while True:
            instructions = block.instructions
            n = len(instructions)
            index = 0

            # Phi nodes evaluate in parallel against the predecessor edge.
            if instructions and isinstance(instructions[0], Phi):
                phi_values = []
                while index < n and isinstance(instructions[index], Phi):
                    phi = instructions[index]
                    incoming = phi.incoming_for(prev_block)
                    phi_values.append(
                        (phi, const(incoming) if isinstance(incoming, Constant) else regs[incoming])
                    )
                    index += 1
                for phi, value in phi_values:
                    regs[phi] = value
                stats.total += len(phi_values)
                stats.scalar += len(phi_values)  # adjusted below for vector phis
                for phi, _ in phi_values:
                    if phi.type.is_vector():
                        stats.scalar -= 1
                        stats.vector += 1

            while index < n:
                instr = instructions[index]
                index += 1

                stats.total += 1
                if stats.total > self.step_limit:
                    raise StepLimitExceeded(
                        f"@{fn.name}: exceeded {self.step_limit} dynamic instructions"
                    )
                isvec = vec_cache.get(id(instr))
                if isvec is None:
                    isvec = instr.is_vector_instruction
                    vec_cache[id(instr)] = isvec
                if isvec:
                    stats.vector += 1
                else:
                    stats.scalar += 1
                if self.count_opcodes:
                    op = instr.opcode
                    stats.by_opcode[op] = stats.by_opcode.get(op, 0) + 1

                # Terminators --------------------------------------------------
                if isinstance(instr, Branch):
                    prev_block, block = block, instr.target
                    break
                if isinstance(instr, CondBranch):
                    cond = instr.condition
                    cv = const(cond) if isinstance(cond, Constant) else regs[cond]
                    prev_block, block = (
                        block,
                        instr.true_target if cv else instr.false_target,
                    )
                    break
                if isinstance(instr, Return):
                    rv = instr.return_value
                    if rv is None:
                        return None
                    return const(rv) if isinstance(rv, Constant) else regs[rv]
                if isinstance(instr, Unreachable):
                    raise InvalidOperation(f"@{fn.name}: reached 'unreachable'")

                regs[instr] = self._exec_instruction(instr, regs)
            else:
                raise InvalidOperation(
                    f"@{fn.name}:{block.name}: fell off the end of a block"
                )

    # -- instruction execution --------------------------------------------------------

    def _exec_instruction(self, instr: Instruction, regs: dict):
        const = self._const
        ops = instr.operands
        vals = [const(o) if isinstance(o, Constant) else regs[o] for o in ops]

        if isinstance(instr, BinaryOp):
            return self._binop(instr, vals[0], vals[1])
        if isinstance(instr, CompareOp):
            return self._compare(instr, vals[0], vals[1])
        if isinstance(instr, Select):
            cond, a, b = vals
            if instr.condition.type.is_vector():
                return [x if c else y for c, x, y in zip(cond, a, b)]
            return a if cond else b
        if isinstance(instr, CastOp):
            return self._cast(instr, vals[0])
        if isinstance(instr, GetElementPtr):
            base, idx = vals
            stride = instr.base.type.pointee.store_size()
            if isinstance(instr.index.type, VectorType):
                return [base + i * stride for i in idx]
            return base + idx * stride
        if isinstance(instr, Load):
            return self.memory.read_value(instr.type, vals[0])
        if isinstance(instr, Store):
            self.memory.write_value(instr.value.type, vals[1], vals[0])
            return None
        if isinstance(instr, Alloca):
            return self.memory.alloc_typed(
                instr.allocated_type, instr.count, label=instr.name or "alloca"
            )
        if isinstance(instr, ExtractElement):
            vec, i = vals
            i = int(i)
            if not 0 <= i < len(vec):
                # LLVM: poison. Deterministic choice: wrap modulo length.
                i %= len(vec)
            return vec[i]
        if isinstance(instr, InsertElement):
            vec, elem, i = vals
            i = int(i)
            out = list(vec)
            if not 0 <= i < len(out):
                i %= len(out)
            out[i] = elem
            return out
        if isinstance(instr, ShuffleVector):
            v1, v2 = vals
            joined = list(v1) + list(v2)
            return [joined[m] for m in instr.mask]
        if isinstance(instr, FNeg):
            v = vals[0]
            if instr.type.is_vector():
                return [-x for x in v]
            return -v
        if isinstance(instr, Call):
            return self._call(instr, vals)
        raise InvalidOperation(f"cannot execute opcode {instr.opcode}")

    # -- arithmetic ------------------------------------------------------------------

    def _binop(self, instr: BinaryOp, a, b):
        # Dispatch the opcode once per instruction; vector ops then apply
        # one pre-selected scalar function per lane (the naive per-lane
        # string dispatch dominated the profile on vector-heavy kernels).
        ty = instr.type
        if isinstance(ty, VectorType):
            fn = instr.meta.get("_vm_fn")
            if fn is None:
                elem = ty.element
                op = instr.opcode
                # _scalar_binop uses no interpreter state; bind it unbound so
                # the cached closure never pins an Interpreter instance.
                fn = lambda x, y, _op=op, _e=elem: Interpreter._scalar_binop(
                    _op, _e, x, y
                )
                if isinstance(elem, FloatType):
                    if elem.bits == 32:
                        simple = {
                            "fadd": lambda x, y: round_f32(x + y),
                            "fsub": lambda x, y: round_f32(x - y),
                            "fmul": lambda x, y: round_f32(x * y),
                        }.get(op)
                    else:
                        simple = {
                            "fadd": lambda x, y: x + y,
                            "fsub": lambda x, y: x - y,
                            "fmul": lambda x, y: x * y,
                        }.get(op)
                    if simple is not None:
                        fn = simple
                elif isinstance(elem, IntType):
                    bits = elem.bits
                    simple = {
                        "add": lambda x, y: wrap_int(x + y, bits),
                        "sub": lambda x, y: wrap_int(x - y, bits),
                        "mul": lambda x, y: wrap_int(x * y, bits),
                        # Bitwise ops on canonical two's-complement values
                        # stay in range; no re-wrap needed.
                        "and": lambda x, y: x & y,
                        "or": lambda x, y: x | y,
                        "xor": lambda x, y: wrap_int(x ^ y, bits),
                    }.get(op)
                    if simple is not None:
                        fn = simple
                instr.meta["_vm_fn"] = fn
            return [fn(x, y) for x, y in zip(a, b)]
        return self._scalar_binop(instr.opcode, ty, a, b)

    @staticmethod
    def _scalar_binop(op: str, ty: Type, a, b):
        if isinstance(ty, FloatType):
            if op == "fadd":
                r = a + b
            elif op == "fsub":
                r = a - b
            elif op == "fmul":
                r = a * b
            elif op == "fdiv":
                r = Interpreter._fdiv(a, b)
            elif op == "frem":
                r = math.fmod(a, b) if b != 0 and not math.isnan(a) and not math.isinf(a) else float("nan")
            else:  # pragma: no cover - constructor prevents this
                raise InvalidOperation(f"bad float op {op}")
            return round_f32(r) if ty.bits == 32 else r

        bits = ty.bits
        if op == "add":
            return wrap_int(a + b, bits)
        if op == "sub":
            return wrap_int(a - b, bits)
        if op == "mul":
            return wrap_int(a * b, bits)
        if op == "sdiv":
            if b == 0:
                raise ArithmeticTrap("signed division by zero")
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            if q > (1 << (bits - 1)) - 1:
                raise ArithmeticTrap("signed division overflow (INT_MIN / -1)")
            return wrap_int(q, bits)
        if op == "srem":
            if b == 0:
                raise ArithmeticTrap("signed remainder by zero")
            r = abs(a) % abs(b)
            return wrap_int(-r if a < 0 else r, bits)
        if op == "udiv":
            if b == 0:
                raise ArithmeticTrap("unsigned division by zero")
            return wrap_int(to_unsigned(a, bits) // to_unsigned(b, bits), bits)
        if op == "urem":
            if b == 0:
                raise ArithmeticTrap("unsigned remainder by zero")
            return wrap_int(to_unsigned(a, bits) % to_unsigned(b, bits), bits)
        if op == "and":
            return wrap_int(a & b, bits)
        if op == "or":
            return wrap_int(a | b, bits)
        if op == "xor":
            return wrap_int(a ^ b, bits)
        # x86 semantics: the shift count is masked to the operand width.
        if op == "shl":
            return wrap_int(a << (b & (bits - 1)), bits)
        if op == "lshr":
            return wrap_int(to_unsigned(a, bits) >> (b & (bits - 1)), bits)
        if op == "ashr":
            return wrap_int(a >> (b & (bits - 1)), bits)
        raise InvalidOperation(f"bad int op {op}")  # pragma: no cover

    @staticmethod
    def _fdiv(a: float, b: float) -> float:
        if b == 0.0:
            if a != a or a == 0.0:
                return float("nan")
            sign = math.copysign(1.0, a) * math.copysign(1.0, b)
            return math.inf * sign
        return a / b

    def _compare(self, instr: CompareOp, a, b):
        pred = instr.predicate
        operand_ty = instr.lhs.type
        if isinstance(operand_ty, VectorType):
            elem = operand_ty.element
            return [
                int(self._scalar_compare(instr.opcode, pred, elem, x, y))
                for x, y in zip(a, b)
            ]
        return int(self._scalar_compare(instr.opcode, pred, operand_ty, a, b))

    def _scalar_compare(self, opcode: str, pred: str, ty: Type, a, b) -> bool:
        if opcode == "icmp":
            if isinstance(ty, PointerType):
                ua, ub = a & (2**64 - 1), b & (2**64 - 1)
            else:
                ua, ub = to_unsigned(a, ty.bits), to_unsigned(b, ty.bits)
            return {
                "eq": a == b,
                "ne": a != b,
                "slt": a < b,
                "sle": a <= b,
                "sgt": a > b,
                "sge": a >= b,
                "ult": ua < ub,
                "ule": ua <= ub,
                "ugt": ua > ub,
                "uge": ua >= ub,
            }[pred]
        # fcmp: o* are false on NaN, u* are true on NaN.
        nan = (a != a) or (b != b)
        if pred == "ord":
            return not nan
        if pred == "uno":
            return nan
        ordered = pred.startswith("o")
        if nan:
            return not ordered
        rel = pred[1:]
        return {
            "eq": a == b,
            "ne": a != b,
            "lt": a < b,
            "le": a <= b,
            "gt": a > b,
            "ge": a >= b,
        }[rel]

    # -- casts ------------------------------------------------------------------------

    def _cast(self, instr: CastOp, v):
        src_ty = instr.operands[0].type
        dst_ty = instr.type
        if isinstance(dst_ty, VectorType):
            src_elem = src_ty.scalar_type
            dst_elem = dst_ty.element
            return [
                self._scalar_cast(instr.opcode, src_elem, dst_elem, x) for x in v
            ]
        return self._scalar_cast(instr.opcode, src_ty, dst_ty, v)

    def _scalar_cast(self, op: str, src: Type, dst: Type, v):
        if op == "bitcast":
            if src.is_pointer() and dst.is_pointer():
                return v
            if src.is_integer() and dst.is_float():
                return bits_to_float(to_unsigned(v, src.bits), dst.bits)
            if src.is_float() and dst.is_integer():
                return wrap_int(float_to_bits(v, src.bits), dst.bits)
            if src.is_integer() and dst.is_integer():
                return wrap_int(v, dst.bits)
            if src.is_float() and dst.is_float():
                return v
            raise InvalidOperation(f"bad bitcast {src} -> {dst}")
        if op == "zext":
            return wrap_int(to_unsigned(v, src.bits), dst.bits)
        if op == "sext":
            # i1 is canonicalized as 0/1; its sign-extension is 0/-1.
            if src.bits == 1:
                return wrap_int(-v, dst.bits)
            return wrap_int(v, dst.bits)
        if op == "trunc":
            return wrap_int(v, dst.bits)
        if op == "sitofp":
            r = float(v)
            return round_f32(r) if dst.bits == 32 else r
        if op == "uitofp":
            r = float(to_unsigned(v, src.bits))
            return round_f32(r) if dst.bits == 32 else r
        if op == "fptosi":
            return float_to_int_trunc(v, dst.bits)
        if op == "fptoui":
            return float_to_uint_trunc(v, dst.bits)
        if op == "fpext":
            return v
        if op == "fptrunc":
            return round_f32(v)
        if op == "ptrtoint":
            return wrap_int(v, dst.bits)
        if op == "inttoptr":
            return to_unsigned(v, 64)
        raise InvalidOperation(f"bad cast {op}")  # pragma: no cover

    # -- calls & intrinsics --------------------------------------------------------------

    def _call(self, instr: Call, args: list):
        callee = instr.callee
        name = callee.name
        if not callee.is_declaration:
            return self._exec_function(callee, args)
        if is_intrinsic_name(name):
            return self._intrinsic(get_intrinsic(name), instr, args)
        ext = self.externals.get(name)
        if ext is None:
            raise InvalidOperation(f"call to unbound external @{name}")
        return ext(*args)

    def _intrinsic(self, info: IntrinsicInfo, instr: Call, args: list):
        kind = info.kind
        if kind == "math":
            return self._math(instr.callee.name, info, args)
        if kind in ("reduce", "mask-reduce"):
            return self._reduce(instr.callee.name, info, args)

        mem = self.memory
        if kind == "maskload":
            data_ty = info.function_type.return_type
            assert isinstance(data_ty, VectorType)
            elem = data_ty.element
            stride = elem.store_size()
            addr = args[0]
            mask = args[1]
            mask_ty = info.function_type.params[info.mask_index]
            active = self._active_lanes(mask, mask_ty, info.mask_convention)
            if info.mask_convention == MASK_SIGN:
                passthru = [0.0 if elem.is_float() else 0] * data_ty.length
            else:
                passthru = list(args[2])
            out = []
            for i in range(data_ty.length):
                if active[i]:
                    out.append(mem.read_scalar(elem, addr + i * stride))
                else:
                    out.append(passthru[i])
            return out
        if kind == "maskstore":
            data_ty = info.function_type.params[info.stored_value_index]
            assert isinstance(data_ty, VectorType)
            elem = data_ty.element
            stride = elem.store_size()
            mask_ty = info.function_type.params[info.mask_index]
            active = self._active_lanes(
                args[info.mask_index], mask_ty, info.mask_convention
            )
            if info.mask_convention == MASK_SIGN:
                addr = args[0]
                data = args[2]
            else:
                data = args[0]
                addr = args[1]
            for i in range(data_ty.length):
                if active[i]:
                    mem.write_scalar(elem, addr + i * stride, data[i])
            return None
        if kind == "gather":
            data_ty = info.function_type.return_type
            assert isinstance(data_ty, VectorType)
            elem = data_ty.element
            ptrs, mask, passthru = args
            out = []
            for i in range(data_ty.length):
                out.append(
                    mem.read_scalar(elem, ptrs[i]) if mask[i] else passthru[i]
                )
            return out
        if kind == "scatter":
            data, ptrs, mask = args
            data_ty = info.function_type.params[0]
            assert isinstance(data_ty, VectorType)
            elem = data_ty.element
            for i in range(data_ty.length):
                if mask[i]:
                    mem.write_scalar(elem, ptrs[i], data[i])
            return None
        raise InvalidOperation(f"unhandled intrinsic kind {kind}")  # pragma: no cover

    @staticmethod
    def _active_lanes(mask, mask_ty: Type, convention: str | None) -> list[bool]:
        if convention == MASK_SIGN:
            elem = mask_ty.scalar_type
            return [_sign_active(m, elem) for m in mask]
        return [bool(m) for m in mask]

    _MATH_FNS = {
        "sqrt": lambda x: math.sqrt(x) if x >= 0 else float("nan"),
        "fabs": math.fabs,
        "exp": lambda x: _safe_exp(x),
        "log": lambda x: _safe_log(x),
        "sin": math.sin,
        "cos": math.cos,
        "floor": math.floor,
        "ceil": math.ceil,
        "pow": lambda x, y: _safe_pow(x, y),
        "minnum": lambda x, y: _ieee_min(x, y),
        "maxnum": lambda x, y: _ieee_max(x, y),
        "copysign": math.copysign,
    }

    def _math(self, name: str, info: IntrinsicInfo, args: list):
        op = name.split(".")[1]
        fn = self._MATH_FNS[op]
        ty = info.function_type.return_type
        if isinstance(ty, VectorType):
            elem_bits = ty.element.bits  # type: ignore[union-attr]
            if len(args) == 1:
                out = [fn(x) for x in args[0]]
            else:
                out = [fn(x, y) for x, y in zip(args[0], args[1])]
            if elem_bits == 32:
                out = [round_f32(x) for x in out]
            return out
        r = fn(*args)
        return round_f32(r) if ty.bits == 32 else r  # type: ignore[union-attr]

    def _reduce(self, name: str, info: IntrinsicInfo, args: list):
        op = name.split(".")[3]
        ret = info.function_type.return_type
        f32 = isinstance(ret, FloatType) and ret.bits == 32
        if op == "fadd":
            acc = args[0]
            for x in args[1]:
                acc = acc + x
                if f32:
                    acc = round_f32(acc)
            return acc
        if op == "fmul":
            acc = args[0]
            for x in args[1]:
                acc = acc * x
                if f32:
                    acc = round_f32(acc)
            return acc
        vec = args[0]
        if isinstance(ret, IntType):
            bits = ret.bits
            if op == "add":
                return wrap_int(sum(vec), bits)
            if op == "mul":
                acc = 1
                for x in vec:
                    acc = wrap_int(acc * x, bits)
                return acc
            if op == "and":
                acc = -1 if bits > 1 else 1
                for x in vec:
                    acc &= x
                return wrap_int(acc, bits)
            if op == "or":
                acc = 0
                for x in vec:
                    acc |= x
                return wrap_int(acc, bits)
            if op == "xor":
                acc = 0
                for x in vec:
                    acc ^= x
                return wrap_int(acc, bits)
            if op == "smax":
                return max(vec)
            if op == "smin":
                return min(vec)
            if op == "umax":
                return wrap_int(max(to_unsigned(x, bits) for x in vec), bits)
            if op == "umin":
                return wrap_int(min(to_unsigned(x, bits) for x in vec), bits)
        if op == "fmax":
            return _reduce_fminmax(vec, _ieee_max, f32)
        if op == "fmin":
            return _reduce_fminmax(vec, _ieee_min, f32)
        raise InvalidOperation(f"unhandled reduction {name}")


def _safe_exp(x: float) -> float:
    try:
        return math.exp(x)
    except OverflowError:
        return math.inf


def _safe_log(x: float) -> float:
    if x > 0:
        return math.log(x)
    if x == 0:
        return -math.inf
    return float("nan")


def _safe_pow(x: float, y: float) -> float:
    try:
        r = math.pow(x, y)
    except (OverflowError, ValueError):
        return float("nan") if x < 0 else math.inf
    return r


def _ieee_min(x: float, y: float) -> float:
    if x != x:
        return y
    if y != y:
        return x
    return min(x, y)


def _ieee_max(x: float, y: float) -> float:
    if x != x:
        return y
    if y != y:
        return x
    return max(x, y)


def _reduce_fminmax(vec, fn, f32: bool) -> float:
    acc = vec[0]
    for x in vec[1:]:
        acc = fn(acc, x)
    return round_f32(acc) if f32 else acc
