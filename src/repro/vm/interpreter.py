"""Bit-accurate interpreter for the vector IR — the simulated CPU.

Semantics notes (all deliberate, all x86-flavoured, see DESIGN.md):

* ``float`` arithmetic re-rounds every result through IEEE binary32;
* integer division by zero (and ``INT_MIN / -1``) raises
  :class:`~repro.errors.ArithmeticTrap` — the simulated SIGFPE;
* shift counts are masked to the operand width (x86 behaviour) rather than
  producing poison;
* ``fptosi`` of NaN/out-of-range produces ``INT_MIN`` (``cvttss2si``);
* masked vector intrinsics only touch memory in active lanes, so a masked
  load of a partially out-of-bounds cache line does not fault — exactly why
  ISPC's partial-iteration code is safe and why VULFI must respect masks;
* every executed instruction counts toward the dynamic-instruction total
  (Table I) and is classified scalar vs vector (Fig. 10's denominator).

The scalar semantics live in :mod:`repro.vm.ops`; per-instruction dispatch
is pre-compiled by :mod:`repro.vm.decode` into specialised closures, so the
hot loop below only does step accounting and control flow.  The decoded
program is cached on the module and invalidated by IR mutation.

External functions (the VULFI runtime, detector runtime) are bound by name
via :meth:`Interpreter.bind`; unbound declarations trap.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import InvalidOperation, StepLimitExceeded
from ..ir.intrinsics import MASK_SIGN, IntrinsicInfo
from ..ir.module import Function, Module
from ..ir.types import Type, VectorType
from .compile import _Edge, compiled_program, exec_decoded_block
from .decode import (
    InjectionPlan,
    T_BR,
    T_CONDBR,
    T_RET,
    T_UNREACHABLE,
    decoded_program,
    unpack_regs,
)
from .memory import Memory
from .ops import sign_active
from .snapshot import ResumePoint, copy_regs

DEFAULT_STEP_LIMIT = 20_000_000


@dataclass
class ExecutionStats:
    """Dynamic execution accounting for one program run."""

    total: int = 0
    scalar: int = 0
    vector: int = 0
    by_opcode: Counter = field(default_factory=Counter)

    def reset(self) -> None:
        self.total = 0
        self.scalar = 0
        self.vector = 0
        self.by_opcode.clear()


class Interpreter:
    """Executes IR functions of one module against a fresh :class:`Memory`."""

    def __init__(
        self,
        module: Module,
        step_limit: int = DEFAULT_STEP_LIMIT,
        count_opcodes: bool = False,
        strict_alignment: bool = False,
        plan: InjectionPlan | None = None,
        compiled: bool = False,
    ):
        self.module = module
        self.memory = Memory(strict_alignment=strict_alignment)
        self.step_limit = step_limit
        self.count_opcodes = count_opcodes
        #: Compiled execution (:mod:`repro.vm.compile`): run superblock
        #: chain closures instead of the decoded loop.  Opcode counting has
        #: no compiled fast path, so it forces the decoded loop back on.
        self.compiled = compiled and not count_opcodes
        #: The per-run :class:`~repro.core.runtime.FaultRuntime`, bound by
        #: the injector when a plan is active — the compiled chains read
        #: its dynamic-site counter directly.
        self.fault_runtime = None
        #: True when ``fault_runtime`` is injecting: compiled dispatch then
        #: selects each block's span-checking variant.
        self.compiled_inject = False
        self.stats = ExecutionStats()
        self.externals: dict[str, Callable] = {}
        #: Direct-injection state: the plan folds fault sites into the
        #: decoded closures, which dispatch into ``fault_entries`` — the
        #: per-run :meth:`~repro.core.runtime.FaultRuntime.entries` tuple.
        self.plan = plan
        self.fault_entries: tuple | None = None
        #: Batched span advancers (:meth:`FaultRuntime.spans`) for skipping
        #: whole uninjected site groups in one call.
        self.fault_spans: tuple | None = None
        #: Checkpoint machinery (see :mod:`repro.vm.snapshot`).  The block
        #: hook fires at every *depth-1* block start as
        #: ``hook(vm, decoded, regs, current, prev_block)`` — the injector
        #: installs one to record golden checkpoints or to detect
        #: convergence with them.  ``pending_resume`` is consumed by the
        #: matching top-level :meth:`run` invocation, which then restores
        #: the checkpoint and executes only the suffix.
        self.block_hook: Callable | None = None
        self.pending_resume: ResumePoint | None = None
        #: Index of the current (most recent) top-level :meth:`run` call;
        #: runners that invoke several kernels give each its own index.
        self.current_invocation: int = -1
        self._invocations = 0
        self._depth = 0

    # -- configuration ---------------------------------------------------------

    def bind(self, name: str, fn: Callable) -> None:
        """Bind a host callable to a declared function name."""
        self.externals[name] = fn

    def bind_all(self, bindings: dict[str, Callable]) -> None:
        self.externals.update(bindings)

    # -- public API --------------------------------------------------------------

    def run(self, function: str | Function, args: Sequence) -> object:
        """Execute ``function`` with the given argument values."""
        fn = (
            self.module.get_function(function)
            if isinstance(function, str)
            else function
        )
        if fn.is_declaration:
            raise InvalidOperation(f"cannot run declaration @{fn.name}")
        if len(args) != len(fn.args):
            raise InvalidOperation(
                f"@{fn.name} expects {len(fn.args)} args, got {len(args)}"
            )
        invocation = self._invocations
        self._invocations = invocation + 1
        self.current_invocation = invocation
        resume = self.pending_resume
        if resume is not None and resume.invocation == invocation:
            self.pending_resume = None
            return self._resume_function(fn, resume)
        return self._exec_function(fn, list(args))

    # -- main loop ---------------------------------------------------------------------

    def _exec_function(self, fn: Function, args: list):
        if self.compiled:
            cfn = compiled_program(self.module, self.plan).function(fn)
            regs = {}
            for formal, actual in zip(fn.args, args):
                regs[formal] = actual
            return self._exec_compiled_blocks(cfn, regs, cfn.entry, None)
        decoded = decoded_program(self.module, self.plan).function(fn)
        regs: dict = {}
        for formal, actual in zip(fn.args, args):
            regs[formal] = actual
        return self._exec_blocks(decoded, regs, decoded.entry, None)

    def _resume_function(self, fn: Function, resume: ResumePoint):
        """Re-enter ``fn`` at a recorded checkpoint and run the suffix.

        The checkpoint was captured at a depth-1 block start, *before* that
        block's phis evaluated, so restoring (memory, stats, registers) and
        entering the loop at the saved cursor with the saved predecessor
        edge replays the exact golden continuation.
        """
        checkpoint = resume.checkpoint
        frame = checkpoint.frame
        if frame.function_name != fn.name:
            raise InvalidOperation(
                f"checkpoint resumes @{frame.function_name}, not @{fn.name}"
            )
        if self.compiled:
            cfn = compiled_program(self.module, self.plan).function(fn)
            current = cfn.entries.get(frame.block)
        else:
            decoded = decoded_program(self.module, self.plan).function(fn)
            current = decoded.blocks.get(frame.block)
        if current is None:
            raise InvalidOperation(
                f"checkpoint block is no longer part of @{fn.name}"
            )
        self.memory.restore(checkpoint.memory)
        stats = self.stats
        stats.total = checkpoint.stats_total
        stats.scalar = checkpoint.stats_scalar
        stats.vector = checkpoint.stats_vector
        stats.by_opcode.clear()
        if checkpoint.by_opcode is not None:
            stats.by_opcode.update(checkpoint.by_opcode)
        if resume.on_restore is not None:
            resume.on_restore()
        # The checkpoint's register file is shared by every faulty run that
        # restores it; the appliers mutate vector registers in place, so
        # each resume executes against its own depth-1 copy.
        if self.compiled:
            return self._exec_compiled_blocks(
                cfn, copy_regs(frame.regs), current, frame.prev_block
            )
        return self._exec_blocks(
            decoded, copy_regs(frame.regs), current, frame.prev_block
        )

    def _exec_compiled_blocks(self, cfn, regs: dict, entry, prev_block):
        """Drive compiled superblock chains (:mod:`repro.vm.compile`).

        Each dispatch runs the chain *starting* at ``entry`` and returns an
        :class:`~repro.vm.compile._Edge` (continue at its target), a
        1-tuple (function return value), or the fallback sentinel — the
        head block then executes through :func:`exec_decoded_block`, whose
        planned decoded closures carry injection, trap, and step-limit
        semantics bit-identically.  The depth-1 block hook fires at chain
        heads, which is where checkpoints and convergence checks attach.
        """
        depth = self._depth
        self._depth = depth + 1
        hook = self.block_hook if depth == 0 else None
        inject = self.compiled_inject
        entries = cfn.entries
        dfn = cfn.dfn
        try:
            # Batched chains evaluate whole-vector NumPy expressions whose
            # scalar counterparts are silent on overflow/invalid/div-by-zero;
            # suppress the warnings wholesale so semantics (and stderr) match.
            with np.errstate(all="ignore"):
                while True:
                    if hook is not None:
                        hook(self, dfn, regs, entry, prev_block)
                        hook = self.block_hook  # hooks may uninstall themselves
                    fn = entry.fn_inject if inject else entry.fn_count
                    if fn is not None:
                        r = fn(self, regs, prev_block)
                        cls = r.__class__
                        if cls is _Edge:
                            entry = r.entry
                            prev_block = r.prev
                            continue
                        if cls is tuple:
                            return r[0]
                        # FALLBACK: run this head block decoded, then rejoin.
                    unpack_regs(regs)
                    nxt, aux = exec_decoded_block(
                        self, dfn, entry.dblock, regs, prev_block
                    )
                    if nxt is None:
                        return aux
                    entry = entries[nxt]
                    prev_block = aux
        finally:
            self._depth = depth

    def _exec_blocks(self, decoded, regs: dict, current, prev_block):
        stats = self.stats
        limit = self.step_limit
        count_opcodes = self.count_opcodes
        by_opcode = stats.by_opcode
        fn_name = decoded.name
        depth = self._depth
        self._depth = depth + 1
        hook = self.block_hook if depth == 0 else None

        try:
            while True:
                if hook is not None:
                    hook(self, decoded, regs, current, prev_block)
                    hook = self.block_hook  # hooks may uninstall themselves
                phis = current.phis
                if phis:
                    # Phi nodes evaluate in parallel against the predecessor edge.
                    values = []
                    for phi, table in phis:
                        spec = table.get(prev_block)
                        if spec is None:
                            phi.incoming_for(prev_block)  # raises the exact IRError
                        is_reg, payload = spec
                        values.append(regs[payload] if is_reg else payload)
                    for (phi, _), value in zip(phis, values):
                        regs[phi] = value
                    stats.total += current.phi_total
                    stats.scalar += current.phi_scalar
                    stats.vector += current.phi_vector

                for ex, isvec, opcode in current.steps:
                    stats.total += 1
                    if stats.total > limit:
                        raise StepLimitExceeded(
                            f"@{fn_name}: exceeded {limit} dynamic instructions"
                        )
                    if isvec:
                        stats.vector += 1
                    else:
                        stats.scalar += 1
                    if count_opcodes:
                        by_opcode[opcode] += 1
                    ex(self, regs)

                term = current.term
                if term is None:
                    raise InvalidOperation(
                        f"@{fn_name}:{current.source.name}: fell off the end of a block"
                    )
                tag, isvec, opcode, payload = term
                stats.total += 1
                if stats.total > limit:
                    raise StepLimitExceeded(
                        f"@{fn_name}: exceeded {limit} dynamic instructions"
                    )
                if isvec:
                    stats.vector += 1
                else:
                    stats.scalar += 1
                if count_opcodes:
                    by_opcode[opcode] += 1

                if tag == T_BR:
                    prev_block, current = current.source, payload
                elif tag == T_CONDBR:
                    is_reg, cond, true_block, false_block = payload
                    cv = regs[cond] if is_reg else cond
                    prev_block = current.source
                    current = true_block if cv else false_block
                elif tag == T_RET:
                    if payload is None:
                        return None
                    is_reg, value = payload
                    return regs[value] if is_reg else value
                else:
                    assert tag == T_UNREACHABLE
                    raise InvalidOperation(f"@{fn_name}: reached 'unreachable'")
        finally:
            self._depth = depth

    # -- memory intrinsics --------------------------------------------------------------
    #
    # Math and reduction intrinsics are pure and pre-compiled by the decode
    # layer; only the memory-touching kinds need interpreter state.

    def _intrinsic(self, info: IntrinsicInfo, instr, args: list):
        kind = info.kind
        mem = self.memory
        if kind == "maskload":
            data_ty = info.function_type.return_type
            assert isinstance(data_ty, VectorType)
            elem = data_ty.element
            stride = elem.store_size()
            addr = args[0]
            mask = args[1]
            mask_ty = info.function_type.params[info.mask_index]
            active = self._active_lanes(mask, mask_ty, info.mask_convention)
            if info.mask_convention == MASK_SIGN:
                passthru = [0.0 if elem.is_float() else 0] * data_ty.length
            else:
                passthru = list(args[2])
            out = []
            for i in range(data_ty.length):
                if active[i]:
                    out.append(mem.read_scalar(elem, addr + i * stride))
                else:
                    out.append(passthru[i])
            return out
        if kind == "maskstore":
            data_ty = info.function_type.params[info.stored_value_index]
            assert isinstance(data_ty, VectorType)
            elem = data_ty.element
            stride = elem.store_size()
            mask_ty = info.function_type.params[info.mask_index]
            active = self._active_lanes(
                args[info.mask_index], mask_ty, info.mask_convention
            )
            if info.mask_convention == MASK_SIGN:
                addr = args[0]
                data = args[2]
            else:
                data = args[0]
                addr = args[1]
            for i in range(data_ty.length):
                if active[i]:
                    mem.write_scalar(elem, addr + i * stride, data[i])
            return None
        if kind == "gather":
            data_ty = info.function_type.return_type
            assert isinstance(data_ty, VectorType)
            elem = data_ty.element
            ptrs, mask, passthru = args
            out = []
            for i in range(data_ty.length):
                out.append(
                    mem.read_scalar(elem, ptrs[i]) if mask[i] else passthru[i]
                )
            return out
        if kind == "scatter":
            data, ptrs, mask = args
            data_ty = info.function_type.params[0]
            assert isinstance(data_ty, VectorType)
            elem = data_ty.element
            for i in range(data_ty.length):
                if mask[i]:
                    mem.write_scalar(elem, ptrs[i], data[i])
            return None
        raise InvalidOperation(f"unhandled intrinsic kind {kind}")  # pragma: no cover

    @staticmethod
    def _active_lanes(mask, mask_ty: Type, convention: str | None) -> list[bool]:
        if convention == MASK_SIGN:
            elem = mask_ty.scalar_type
            return [sign_active(m, elem) for m in mask]
        return [bool(m) for m in mask]
