"""Pure scalar/lane semantics of the VM, decoupled from the interpreter.

Every function here is a *pure* evaluator over Python values: no interpreter
state, no memory, no RNG.  Three consumers share them so compile-time and
run-time semantics can never disagree (a hard requirement for a fault
injector, where the golden run defines ground truth):

* the :mod:`repro.vm.decode` pre-decoder, which specialises them into
  per-instruction closures;
* the :class:`repro.vm.interpreter.Interpreter`, for the handful of paths
  that are not pre-decoded;
* the :mod:`repro.passes.constfold` pass, which folds IR with exactly the
  semantics the VM would produce at run time.

The ``*_fn`` builders return a callable specialised for one (opcode, type)
pair — the dispatch happens once per static instruction at decode time, not
once per dynamic instruction at execution time.
"""

from __future__ import annotations

import math
from typing import Callable

from ..errors import ArithmeticTrap, InvalidOperation
from ..ir.types import FloatType, IntType, PointerType, Type
from .bits import (
    bits_to_float,
    float_to_bits,
    float_to_int_trunc,
    float_to_uint_trunc,
    round_f32,
    to_unsigned,
    wrap_int,
)


def sign_active(lane_value, lane_type: Type) -> bool:
    """x86 mask convention: a lane is active when its sign bit is set."""
    if isinstance(lane_type, FloatType):
        return bool(float_to_bits(lane_value, lane_type.bits) >> (lane_type.bits - 1))
    return lane_value < 0


# -- binary arithmetic ---------------------------------------------------------


def fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a != a or a == 0.0:
            return float("nan")
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.inf * sign
    return a / b


def scalar_binop(op: str, ty: Type, a, b):
    """One binary operation on scalar operands of IR type ``ty``."""
    if isinstance(ty, FloatType):
        if op == "fadd":
            r = a + b
        elif op == "fsub":
            r = a - b
        elif op == "fmul":
            r = a * b
        elif op == "fdiv":
            r = fdiv(a, b)
        elif op == "frem":
            r = (
                math.fmod(a, b)
                if b != 0 and not math.isnan(a) and not math.isinf(a)
                else float("nan")
            )
        else:  # pragma: no cover - constructor prevents this
            raise InvalidOperation(f"bad float op {op}")
        return round_f32(r) if ty.bits == 32 else r

    bits = ty.bits
    if op == "add":
        return wrap_int(a + b, bits)
    if op == "sub":
        return wrap_int(a - b, bits)
    if op == "mul":
        return wrap_int(a * b, bits)
    if op == "sdiv":
        if b == 0:
            raise ArithmeticTrap("signed division by zero")
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        if q > (1 << (bits - 1)) - 1:
            raise ArithmeticTrap("signed division overflow (INT_MIN / -1)")
        return wrap_int(q, bits)
    if op == "srem":
        if b == 0:
            raise ArithmeticTrap("signed remainder by zero")
        r = abs(a) % abs(b)
        return wrap_int(-r if a < 0 else r, bits)
    if op == "udiv":
        if b == 0:
            raise ArithmeticTrap("unsigned division by zero")
        return wrap_int(to_unsigned(a, bits) // to_unsigned(b, bits), bits)
    if op == "urem":
        if b == 0:
            raise ArithmeticTrap("unsigned remainder by zero")
        return wrap_int(to_unsigned(a, bits) % to_unsigned(b, bits), bits)
    if op == "and":
        return wrap_int(a & b, bits)
    if op == "or":
        return wrap_int(a | b, bits)
    if op == "xor":
        return wrap_int(a ^ b, bits)
    # x86 semantics: the shift count is masked to the operand width.
    if op == "shl":
        return wrap_int(a << (b & (bits - 1)), bits)
    if op == "lshr":
        return wrap_int(to_unsigned(a, bits) >> (b & (bits - 1)), bits)
    if op == "ashr":
        return wrap_int(a >> (b & (bits - 1)), bits)
    raise InvalidOperation(f"bad int op {op}")  # pragma: no cover


def binop_fn(op: str, ty: Type) -> Callable:
    """A specialised ``(a, b) -> result`` evaluator for one scalar type.

    The common wrap-free (bitwise) and simple-rounding (f32 add/sub/mul)
    cases get direct lambdas; everything else falls back to
    :func:`scalar_binop` with the opcode and type pre-bound.
    """
    if isinstance(ty, FloatType):
        if ty.bits == 32:
            simple = {
                "fadd": lambda a, b: round_f32(a + b),
                "fsub": lambda a, b: round_f32(a - b),
                "fmul": lambda a, b: round_f32(a * b),
            }.get(op)
        else:
            simple = {
                "fadd": lambda a, b: a + b,
                "fsub": lambda a, b: a - b,
                "fmul": lambda a, b: a * b,
            }.get(op)
        if simple is not None:
            return simple
    elif isinstance(ty, IntType):
        bits = ty.bits
        simple = {
            "add": lambda a, b: wrap_int(a + b, bits),
            "sub": lambda a, b: wrap_int(a - b, bits),
            "mul": lambda a, b: wrap_int(a * b, bits),
            # Bitwise ops on canonical two's-complement values stay in
            # range; no re-wrap needed.
            "and": lambda a, b: a & b,
            "or": lambda a, b: a | b,
            "xor": lambda a, b: wrap_int(a ^ b, bits),
        }.get(op)
        if simple is not None:
            return simple
    return lambda a, b, _op=op, _ty=ty: scalar_binop(_op, _ty, a, b)


# -- comparisons ---------------------------------------------------------------


def scalar_compare(opcode: str, pred: str, ty: Type, a, b) -> bool:
    if opcode == "icmp":
        if isinstance(ty, PointerType):
            ua, ub = a & (2**64 - 1), b & (2**64 - 1)
        else:
            ua, ub = to_unsigned(a, ty.bits), to_unsigned(b, ty.bits)
        return {
            "eq": a == b,
            "ne": a != b,
            "slt": a < b,
            "sle": a <= b,
            "sgt": a > b,
            "sge": a >= b,
            "ult": ua < ub,
            "ule": ua <= ub,
            "ugt": ua > ub,
            "uge": ua >= ub,
        }[pred]
    # fcmp: o* are false on NaN, u* are true on NaN.
    nan = (a != a) or (b != b)
    if pred == "ord":
        return not nan
    if pred == "uno":
        return nan
    ordered = pred.startswith("o")
    if nan:
        return not ordered
    rel = pred[1:]
    return {
        "eq": a == b,
        "ne": a != b,
        "lt": a < b,
        "le": a <= b,
        "gt": a > b,
        "ge": a >= b,
    }[rel]


_SIGNED_ICMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}


def compare_fn(opcode: str, pred: str, ty: Type) -> Callable:
    """A specialised ``(a, b) -> bool`` evaluator for one compare."""
    if opcode == "icmp":
        direct = _SIGNED_ICMP.get(pred)
        if direct is not None:
            return direct
    return lambda a, b, _o=opcode, _p=pred, _t=ty: scalar_compare(_o, _p, _t, a, b)


# -- casts ---------------------------------------------------------------------


def scalar_cast(op: str, src: Type, dst: Type, v):
    if op == "bitcast":
        if src.is_pointer() and dst.is_pointer():
            return v
        if src.is_integer() and dst.is_float():
            return bits_to_float(to_unsigned(v, src.bits), dst.bits)
        if src.is_float() and dst.is_integer():
            return wrap_int(float_to_bits(v, src.bits), dst.bits)
        if src.is_integer() and dst.is_integer():
            return wrap_int(v, dst.bits)
        if src.is_float() and dst.is_float():
            return v
        raise InvalidOperation(f"bad bitcast {src} -> {dst}")
    if op == "zext":
        return wrap_int(to_unsigned(v, src.bits), dst.bits)
    if op == "sext":
        # i1 is canonicalized as 0/1; its sign-extension is 0/-1.
        if src.bits == 1:
            return wrap_int(-v, dst.bits)
        return wrap_int(v, dst.bits)
    if op == "trunc":
        return wrap_int(v, dst.bits)
    if op == "sitofp":
        r = float(v)
        return round_f32(r) if dst.bits == 32 else r
    if op == "uitofp":
        r = float(to_unsigned(v, src.bits))
        return round_f32(r) if dst.bits == 32 else r
    if op == "fptosi":
        return float_to_int_trunc(v, dst.bits)
    if op == "fptoui":
        return float_to_uint_trunc(v, dst.bits)
    if op == "fpext":
        return v
    if op == "fptrunc":
        return round_f32(v)
    if op == "ptrtoint":
        return wrap_int(v, dst.bits)
    if op == "inttoptr":
        return to_unsigned(v, 64)
    raise InvalidOperation(f"bad cast {op}")  # pragma: no cover


def cast_fn(op: str, src: Type, dst: Type) -> Callable:
    """A specialised ``(v) -> result`` evaluator for one scalar cast."""
    return lambda v, _o=op, _s=src, _d=dst: scalar_cast(_o, _s, _d, v)


# -- math intrinsics -----------------------------------------------------------


def _safe_exp(x: float) -> float:
    try:
        return math.exp(x)
    except OverflowError:
        return math.inf


def _safe_log(x: float) -> float:
    if x > 0:
        return math.log(x)
    if x == 0:
        return -math.inf
    return float("nan")


def _safe_pow(x: float, y: float) -> float:
    try:
        r = math.pow(x, y)
    except (OverflowError, ValueError):
        return float("nan") if x < 0 else math.inf
    return r


def ieee_min(x: float, y: float) -> float:
    if x != x:
        return y
    if y != y:
        return x
    return min(x, y)


def ieee_max(x: float, y: float) -> float:
    if x != x:
        return y
    if y != y:
        return x
    return max(x, y)


MATH_FNS = {
    "sqrt": lambda x: math.sqrt(x) if x >= 0 else float("nan"),
    "fabs": math.fabs,
    "exp": _safe_exp,
    "log": _safe_log,
    "sin": math.sin,
    "cos": math.cos,
    "floor": math.floor,
    "ceil": math.ceil,
    "pow": _safe_pow,
    "minnum": ieee_min,
    "maxnum": ieee_max,
    "copysign": math.copysign,
}


# -- reductions ----------------------------------------------------------------


def _reduce_fminmax(vec, fn, f32: bool) -> float:
    acc = vec[0]
    for x in vec[1:]:
        acc = fn(acc, x)
    return round_f32(acc) if f32 else acc


def reduce_intrinsic(name: str, ret: Type, args: list):
    """Evaluate a ``llvm.vector.reduce.*`` intrinsic."""
    op = name.split(".")[3]
    f32 = isinstance(ret, FloatType) and ret.bits == 32
    if op == "fadd":
        acc = args[0]
        for x in args[1]:
            acc = acc + x
            if f32:
                acc = round_f32(acc)
        return acc
    if op == "fmul":
        acc = args[0]
        for x in args[1]:
            acc = acc * x
            if f32:
                acc = round_f32(acc)
        return acc
    vec = args[0]
    if isinstance(ret, IntType):
        bits = ret.bits
        if op == "add":
            return wrap_int(sum(vec), bits)
        if op == "mul":
            acc = 1
            for x in vec:
                acc = wrap_int(acc * x, bits)
            return acc
        if op == "and":
            acc = -1 if bits > 1 else 1
            for x in vec:
                acc &= x
            return wrap_int(acc, bits)
        if op == "or":
            acc = 0
            for x in vec:
                acc |= x
            return wrap_int(acc, bits)
        if op == "xor":
            acc = 0
            for x in vec:
                acc ^= x
            return wrap_int(acc, bits)
        if op == "smax":
            return max(vec)
        if op == "smin":
            return min(vec)
        if op == "umax":
            return wrap_int(max(to_unsigned(x, bits) for x in vec), bits)
        if op == "umin":
            return wrap_int(min(to_unsigned(x, bits) for x in vec), bits)
    if op == "fmax":
        return _reduce_fminmax(vec, ieee_max, f32)
    if op == "fmin":
        return _reduce_fminmax(vec, ieee_min, f32)
    raise InvalidOperation(f"unhandled reduction {name}")
