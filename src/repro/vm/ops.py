"""Pure scalar/lane semantics of the VM, decoupled from the interpreter.

Every function here is a *pure* evaluator over Python values: no interpreter
state, no memory, no RNG.  Three consumers share them so compile-time and
run-time semantics can never disagree (a hard requirement for a fault
injector, where the golden run defines ground truth):

* the :mod:`repro.vm.decode` pre-decoder, which specialises them into
  per-instruction closures;
* the :class:`repro.vm.interpreter.Interpreter`, for the handful of paths
  that are not pre-decoded;
* the :mod:`repro.passes.constfold` pass, which folds IR with exactly the
  semantics the VM would produce at run time.

The ``*_fn`` builders return a callable specialised for one (opcode, type)
pair — the dispatch happens once per static instruction at decode time, not
once per dynamic instruction at execution time.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..errors import ArithmeticTrap, InvalidOperation
from ..ir.types import FloatType, IntType, PointerType, Type
from .bits import (
    bits_to_float,
    float_to_bits,
    float_to_int_trunc,
    float_to_uint_trunc,
    np_dtype,
    np_uint_view,
    quiet_nan_f32,
    round_f32,
    to_unsigned,
    wrap_int,
)


def sign_active(lane_value, lane_type: Type) -> bool:
    """x86 mask convention: a lane is active when its sign bit is set."""
    if isinstance(lane_type, FloatType):
        return bool(float_to_bits(lane_value, lane_type.bits) >> (lane_type.bits - 1))
    return lane_value < 0


# -- binary arithmetic ---------------------------------------------------------


def fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a != a or a == 0.0:
            return float("nan")
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.inf * sign
    return a / b


def scalar_binop(op: str, ty: Type, a, b):
    """One binary operation on scalar operands of IR type ``ty``."""
    if isinstance(ty, FloatType):
        if op == "fadd":
            r = a + b
        elif op == "fsub":
            r = a - b
        elif op == "fmul":
            r = a * b
        elif op == "fdiv":
            r = fdiv(a, b)
        elif op == "frem":
            r = (
                math.fmod(a, b)
                if b != 0 and not math.isnan(a) and not math.isinf(a)
                else float("nan")
            )
        else:  # pragma: no cover - constructor prevents this
            raise InvalidOperation(f"bad float op {op}")
        return round_f32(r) if ty.bits == 32 else r

    bits = ty.bits
    if op == "add":
        return wrap_int(a + b, bits)
    if op == "sub":
        return wrap_int(a - b, bits)
    if op == "mul":
        return wrap_int(a * b, bits)
    if op == "sdiv":
        if b == 0:
            raise ArithmeticTrap("signed division by zero")
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        if q > (1 << (bits - 1)) - 1:
            raise ArithmeticTrap("signed division overflow (INT_MIN / -1)")
        return wrap_int(q, bits)
    if op == "srem":
        if b == 0:
            raise ArithmeticTrap("signed remainder by zero")
        r = abs(a) % abs(b)
        return wrap_int(-r if a < 0 else r, bits)
    if op == "udiv":
        if b == 0:
            raise ArithmeticTrap("unsigned division by zero")
        return wrap_int(to_unsigned(a, bits) // to_unsigned(b, bits), bits)
    if op == "urem":
        if b == 0:
            raise ArithmeticTrap("unsigned remainder by zero")
        return wrap_int(to_unsigned(a, bits) % to_unsigned(b, bits), bits)
    if op == "and":
        return wrap_int(a & b, bits)
    if op == "or":
        return wrap_int(a | b, bits)
    if op == "xor":
        return wrap_int(a ^ b, bits)
    # x86 semantics: the shift count is masked to the operand width.
    if op == "shl":
        return wrap_int(a << (b & (bits - 1)), bits)
    if op == "lshr":
        return wrap_int(to_unsigned(a, bits) >> (b & (bits - 1)), bits)
    if op == "ashr":
        return wrap_int(a >> (b & (bits - 1)), bits)
    raise InvalidOperation(f"bad int op {op}")  # pragma: no cover


def binop_fn(op: str, ty: Type) -> Callable:
    """A specialised ``(a, b) -> result`` evaluator for one scalar type.

    The common wrap-free (bitwise) and simple-rounding (f32 add/sub/mul)
    cases get direct lambdas; everything else falls back to
    :func:`scalar_binop` with the opcode and type pre-bound.
    """
    if isinstance(ty, FloatType):
        if ty.bits == 32:
            simple = {
                "fadd": lambda a, b: round_f32(a + b),
                "fsub": lambda a, b: round_f32(a - b),
                "fmul": lambda a, b: round_f32(a * b),
            }.get(op)
        else:
            simple = {
                "fadd": lambda a, b: a + b,
                "fsub": lambda a, b: a - b,
                "fmul": lambda a, b: a * b,
            }.get(op)
        if simple is not None:
            return simple
    elif isinstance(ty, IntType):
        bits = ty.bits
        simple = {
            "add": lambda a, b: wrap_int(a + b, bits),
            "sub": lambda a, b: wrap_int(a - b, bits),
            "mul": lambda a, b: wrap_int(a * b, bits),
            # Bitwise ops on canonical two's-complement values stay in
            # range; no re-wrap needed.
            "and": lambda a, b: a & b,
            "or": lambda a, b: a | b,
            "xor": lambda a, b: wrap_int(a ^ b, bits),
        }.get(op)
        if simple is not None:
            return simple
    return lambda a, b, _op=op, _ty=ty: scalar_binop(_op, _ty, a, b)


# -- comparisons ---------------------------------------------------------------


def scalar_compare(opcode: str, pred: str, ty: Type, a, b) -> bool:
    if opcode == "icmp":
        if isinstance(ty, PointerType):
            ua, ub = a & (2**64 - 1), b & (2**64 - 1)
        else:
            ua, ub = to_unsigned(a, ty.bits), to_unsigned(b, ty.bits)
        return {
            "eq": a == b,
            "ne": a != b,
            "slt": a < b,
            "sle": a <= b,
            "sgt": a > b,
            "sge": a >= b,
            "ult": ua < ub,
            "ule": ua <= ub,
            "ugt": ua > ub,
            "uge": ua >= ub,
        }[pred]
    # fcmp: o* are false on NaN, u* are true on NaN.
    nan = (a != a) or (b != b)
    if pred == "ord":
        return not nan
    if pred == "uno":
        return nan
    ordered = pred.startswith("o")
    if nan:
        return not ordered
    rel = pred[1:]
    return {
        "eq": a == b,
        "ne": a != b,
        "lt": a < b,
        "le": a <= b,
        "gt": a > b,
        "ge": a >= b,
    }[rel]


_SIGNED_ICMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}


def compare_fn(opcode: str, pred: str, ty: Type) -> Callable:
    """A specialised ``(a, b) -> bool`` evaluator for one compare."""
    if opcode == "icmp":
        direct = _SIGNED_ICMP.get(pred)
        if direct is not None:
            return direct
    return lambda a, b, _o=opcode, _p=pred, _t=ty: scalar_compare(_o, _p, _t, a, b)


# -- casts ---------------------------------------------------------------------


def scalar_cast(op: str, src: Type, dst: Type, v):
    if op == "bitcast":
        if src.is_pointer() and dst.is_pointer():
            return v
        if src.is_integer() and dst.is_float():
            return bits_to_float(to_unsigned(v, src.bits), dst.bits)
        if src.is_float() and dst.is_integer():
            return wrap_int(float_to_bits(v, src.bits), dst.bits)
        if src.is_integer() and dst.is_integer():
            return wrap_int(v, dst.bits)
        if src.is_float() and dst.is_float():
            return v
        raise InvalidOperation(f"bad bitcast {src} -> {dst}")
    if op == "zext":
        return wrap_int(to_unsigned(v, src.bits), dst.bits)
    if op == "sext":
        # i1 is canonicalized as 0/1; its sign-extension is 0/-1.
        if src.bits == 1:
            return wrap_int(-v, dst.bits)
        return wrap_int(v, dst.bits)
    if op == "trunc":
        return wrap_int(v, dst.bits)
    if op == "sitofp":
        r = float(v)
        return round_f32(r) if dst.bits == 32 else r
    if op == "uitofp":
        r = float(to_unsigned(v, src.bits))
        return round_f32(r) if dst.bits == 32 else r
    if op == "fptosi":
        return float_to_int_trunc(v, dst.bits)
    if op == "fptoui":
        return float_to_uint_trunc(v, dst.bits)
    if op == "fpext":
        return v
    if op == "fptrunc":
        return round_f32(v)
    if op == "ptrtoint":
        return wrap_int(v, dst.bits)
    if op == "inttoptr":
        return to_unsigned(v, 64)
    raise InvalidOperation(f"bad cast {op}")  # pragma: no cover


def cast_fn(op: str, src: Type, dst: Type) -> Callable:
    """A specialised ``(v) -> result`` evaluator for one scalar cast."""
    return lambda v, _o=op, _s=src, _d=dst: scalar_cast(_o, _s, _d, v)


# -- math intrinsics -----------------------------------------------------------


def _safe_exp(x: float) -> float:
    try:
        return math.exp(x)
    except OverflowError:
        return math.inf


def _safe_log(x: float) -> float:
    if x > 0:
        return math.log(x)
    if x == 0:
        return -math.inf
    return float("nan")


def _safe_pow(x: float, y: float) -> float:
    try:
        r = math.pow(x, y)
    except (OverflowError, ValueError):
        return float("nan") if x < 0 else math.inf
    return r


def ieee_min(x: float, y: float) -> float:
    if x != x:
        return y
    if y != y:
        return x
    return min(x, y)


def ieee_max(x: float, y: float) -> float:
    if x != x:
        return y
    if y != y:
        return x
    return max(x, y)


MATH_FNS = {
    "sqrt": lambda x: math.sqrt(x) if x >= 0 else float("nan"),
    "fabs": math.fabs,
    "exp": _safe_exp,
    "log": _safe_log,
    "sin": math.sin,
    "cos": math.cos,
    "floor": math.floor,
    "ceil": math.ceil,
    "pow": _safe_pow,
    "minnum": ieee_min,
    "maxnum": ieee_max,
    "copysign": math.copysign,
}


# -- reductions ----------------------------------------------------------------


def _reduce_fminmax(vec, fn, f32: bool) -> float:
    acc = vec[0]
    for x in vec[1:]:
        acc = fn(acc, x)
    return round_f32(acc) if f32 else acc


def reduce_intrinsic(name: str, ret: Type, args: list):
    """Evaluate a ``llvm.vector.reduce.*`` intrinsic."""
    op = name.split(".")[3]
    f32 = isinstance(ret, FloatType) and ret.bits == 32
    if op == "fadd":
        acc = args[0]
        for x in args[1]:
            acc = acc + x
            if f32:
                acc = round_f32(acc)
        return acc
    if op == "fmul":
        acc = args[0]
        for x in args[1]:
            acc = acc * x
            if f32:
                acc = round_f32(acc)
        return acc
    vec = args[0]
    if isinstance(ret, IntType):
        bits = ret.bits
        if op == "add":
            return wrap_int(sum(vec), bits)
        if op == "mul":
            acc = 1
            for x in vec:
                acc = wrap_int(acc * x, bits)
            return acc
        if op == "and":
            acc = -1 if bits > 1 else 1
            for x in vec:
                acc &= x
            return wrap_int(acc, bits)
        if op == "or":
            acc = 0
            for x in vec:
                acc |= x
            return wrap_int(acc, bits)
        if op == "xor":
            acc = 0
            for x in vec:
                acc ^= x
            return wrap_int(acc, bits)
        if op == "smax":
            return max(vec)
        if op == "smin":
            return min(vec)
        if op == "umax":
            return wrap_int(max(to_unsigned(x, bits) for x in vec), bits)
        if op == "umin":
            return wrap_int(min(to_unsigned(x, bits) for x in vec), bits)
    if op == "fmax":
        return _reduce_fminmax(vec, ieee_max, f32)
    if op == "fmin":
        return _reduce_fminmax(vec, ieee_min, f32)
    raise InvalidOperation(f"unhandled reduction {name}")


# -- bulk (packed ndarray) evaluators ------------------------------------------
#
# The compiled engine's batched tier evaluates whole vectors as single NumPy
# calls.  Each ``*_bulk`` builder returns a callable over packed ndarrays
# that is *bit-identical* to mapping the scalar evaluator above over the
# canonical lane list, or ``None`` when no such callable exists (the caller
# then keeps the unrolled per-lane emission):
#
# * f32 add/sub/mul/div: hardware binary32 equals the scalar path's
#   compute-in-binary64-then-round because binary64 carries more than
#   2p + 2 significand bits (Figueroa's no-double-rounding bound), and NaN
#   propagation is the same SSE hardware in both;
# * ``fdiv``'s one semantic divergence — x/0 with x NaN or ±0 substitutes
#   a canonical quiet NaN in :func:`fdiv` — is patched by a post-condition
#   mask;
# * integer add/sub/mul wrap silently in C just like ``wrap_int``; shifts
#   mask the count to the width through unsigned views (x86), ``ashr``
#   stays signed;
# * trapping ops (div/rem) and ``frem`` are declined — traps must carry
#   per-lane messages and exact step accounting.
#
# Predicates return int8 0/1 arrays (``tolist`` of which reproduces the
# canonical ``int(bool)`` lanes the unrolled compare emits).


def binop_bulk(op: str, ty: Type):
    """A packed ``(a, b) -> ndarray`` evaluator, or ``None``."""
    dtype = np_dtype(ty)
    if dtype is None:
        return None
    if isinstance(ty, FloatType):
        simple = {"fadd": np.add, "fsub": np.subtract, "fmul": np.multiply}.get(op)
        if simple is not None:
            return simple
        if op == "fdiv":

            def bulk_fdiv(a, b):
                r = np.divide(a, b)
                bad = (b == 0) & (np.isnan(a) | (a == 0))
                if bad.any():
                    r[bad] = np.nan
                return r

            return bulk_fdiv
        return None
    bits = ty.bits
    if bits == 1:
        # i1 lanes are canonical 0/1: only the closed bitwise ops batch.
        return {
            "and": np.bitwise_and,
            "or": np.bitwise_or,
            "xor": np.bitwise_xor,
        }.get(op)
    simple = {
        "add": np.add,
        "sub": np.subtract,
        "mul": np.multiply,
        "and": np.bitwise_and,
        "or": np.bitwise_or,
        "xor": np.bitwise_xor,
    }.get(op)
    if simple is not None:
        return simple
    u = np_uint_view(dtype)
    if op == "shl":
        return lambda a, b: (a.view(u) << (b & (bits - 1)).view(u)).view(dtype)
    if op == "lshr":
        return lambda a, b: (a.view(u) >> (b & (bits - 1)).view(u)).view(dtype)
    if op == "ashr":
        return lambda a, b: a >> (b & (bits - 1))
    return None


def fneg_bulk(ty: Type):
    """A packed ``(a) -> ndarray`` fneg, or ``None`` for non-float lanes.

    Sign-bit XOR through the uint view rather than an FP negate, so even a
    raw signalling-NaN lane keeps its payload bit-for-bit — exactly what the
    scalar path's C-level ``-x`` does.
    """
    if not isinstance(ty, FloatType):
        return None
    dtype = np_dtype(ty)
    u = np_uint_view(dtype)
    sign = u(1 << (ty.bits - 1))
    return lambda a: (a.view(u) ^ sign).view(dtype)


_FCMP_BULK = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: (a < b) | (a > b),
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
    "ueq": lambda a, b: ~((a < b) | (a > b)),
    "une": lambda a, b: a != b,
    "ult": lambda a, b: ~(a >= b),
    "ule": lambda a, b: ~(a > b),
    "ugt": lambda a, b: ~(a <= b),
    "uge": lambda a, b: ~(a < b),
    "ord": lambda a, b: (a == a) & (b == b),
    "uno": lambda a, b: ~((a == a) & (b == b)),
}

_UNSIGNED_ICMP_BULK = {
    "ult": lambda a, b: a < b,
    "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b,
    "uge": lambda a, b: a >= b,
}


def compare_bulk(opcode: str, pred: str, ty: Type):
    """A packed ``(a, b) -> int8 ndarray`` evaluator, or ``None``."""
    dtype = np_dtype(ty)
    if dtype is None:
        return None
    if opcode == "icmp":
        direct = _SIGNED_ICMP.get(pred)
        if direct is not None:
            return lambda a, b, _f=direct: _f(a, b).view(np.int8)
        unsigned = _UNSIGNED_ICMP_BULK.get(pred)
        if unsigned is None:
            return None
        u = np_uint_view(dtype)
        return lambda a, b, _f=unsigned: _f(a.view(u), b.view(u)).view(np.int8)
    fn = _FCMP_BULK.get(pred)
    if fn is None:
        return None
    # NaN-aware by construction: ordered predicates are plain comparisons
    # (False on NaN), unordered ones their complements (True on NaN).
    return lambda a, b, _f=fn: _f(a, b).view(np.int8)


def cast_bulk(op: str, src: Type, dst: Type):
    """A packed ``(a) -> ndarray`` evaluator for one cast, or ``None``."""
    sdt = np_dtype(src)
    ddt = np_dtype(dst)
    if sdt is None or ddt is None:
        return None
    if op == "bitcast":
        if src.bits != dst.bits:
            return None
        if src.is_float() and dst.is_integer():
            # The scalar path's struct.unpack quiets f32 signalling NaNs on
            # load; packed arrays defer that to this escape point.
            if src.bits == 32:
                return lambda a: quiet_nan_f32(a).view(ddt)
            return lambda a: a.view(ddt)
        if src.is_integer() and dst.is_float():
            return lambda a: a.view(ddt)
        return lambda a: a  # same-type reinterpretation
    if op == "zext":
        if dst.bits == 1:
            return None
        if src.bits == 1:
            return lambda a: a.astype(ddt)  # canonical 0/1
        us, ud = np_uint_view(sdt), np_uint_view(ddt)
        return lambda a: a.view(us).astype(ud).view(ddt)
    if op == "sext":
        if dst.bits == 1:
            return None
        if src.bits == 1:
            return lambda a: (-a).astype(ddt)  # 0/1 -> 0/-1, then widen
        return lambda a: a.astype(ddt)
    if op == "trunc":
        if dst.bits == 1:
            return lambda a: (a & 1).astype(np.int8)
        mask = (1 << dst.bits) - 1
        ud = np_uint_view(ddt)
        # a & mask is the value's low bits as a nonnegative int in the
        # source dtype; the uint downcast is value-preserving, the final
        # view re-signs it — exactly wrap_int(v, dst.bits).
        return lambda a: (a & mask).astype(ud).view(ddt)
    if op == "sitofp":
        if dst.bits == 32:
            # float(v) then round_f32: binary64 first, then narrow — the
            # double rounding is part of the scalar semantics, so the
            # batched path reproduces it verbatim.
            return lambda a: a.astype(np.float64).astype(np.float32)
        return lambda a: a.astype(np.float64)
    if op == "uitofp":
        us = np_uint_view(sdt)
        if dst.bits == 32:
            return lambda a: a.view(us).astype(np.float64).astype(np.float32)
        return lambda a: a.view(us).astype(np.float64)
    if op == "fptosi":
        return _fptosi_bulk(ddt, dst.bits)
    if op == "fptoui":
        return _fptoui_bulk(ddt, dst.bits)
    if op == "fpext":
        return lambda a: a.astype(np.float64)
    if op == "fptrunc":
        return lambda a: a.astype(np.float32)
    return None


def _fptosi_bulk(ddt, bits: int):
    lo = -(1 << (bits - 1))
    lim = float(1 << (bits - 1))  # exact power of two

    def bulk(a):
        t = np.trunc(a.astype(np.float64))
        # NaN fails t >= -lim, so `bad` needs no separate isnan test.  The
        # float bounds are exact: no integer-valued double lies strictly
        # between the signed range and ±2^(bits-1).
        bad = ~(t >= -lim) | (t >= lim)
        r = np.where(bad, 0.0, t).astype(ddt)
        if bad.any():
            r[bad] = lo  # cvttss2si "integer indefinite"
        return r

    return bulk


def _fptoui_bulk(ddt, bits: int):
    sentinel = wrap_int(1 << (bits - 1), bits)
    lim = float(1 << bits)
    ud = np_uint_view(ddt)

    def bulk(a):
        t = np.trunc(a.astype(np.float64))
        bad = ~(t >= 0.0) | (t >= lim)
        r = np.where(bad, 0.0, t).astype(ud).view(ddt)
        if bad.any():
            r[bad] = sentinel
        return r

    return bulk
