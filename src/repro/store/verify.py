"""``store verify``: integrity-check a campaign store without executing.

Re-walks both journals record by record — crc frames, experiment-key
uniqueness *and* recomputation (every stored key must equal the sha256 the
current code derives from ``(campaign, seq, k, bit, params)``), manifest
registry fingerprints against the live workload registry, and schedule
coverage (a campaign's seqs must form the exact prefix, or shard stripe, of
its planned schedule).  Nothing is mutated: damaged journals are *reported*,
not repaired, so ``verify`` is safe on stores another process may still
own.  It is also the final gate of :func:`repro.store.merge.merge_shards`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .journal import StoreError, scan_frames
from .keys import experiment_key


@dataclass
class VerifyReport:
    """What one store walk found; ``ok`` iff no problems."""

    root: Path
    problems: list[str] = field(default_factory=list)
    experiments: int = 0
    cells: int = 0
    campaigns: int = 0
    manifests_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        head = (
            f"{self.root}: {self.experiments} experiment record(s), "
            f"{self.cells} cell record(s), {self.campaigns} campaign(s)"
        )
        if self.ok:
            return head + " — OK"
        return head + " — FAILED\n" + "\n".join(
            f"  - {p}" for p in self.problems
        )


def verify_store(root: str | Path, registry_check: bool = True) -> VerifyReport:
    """Walk a store's journals and return a :class:`VerifyReport`.

    ``registry_check=False`` skips the live-registry fingerprint comparison
    (for inspecting archived stores from older workload registries; every
    structural check still runs).
    """
    from .shard import read_shard_file

    root = Path(root)
    report = VerifyReport(root=root)
    marker = root / "STORE"
    if not marker.exists():
        report.problems.append(f"no STORE marker: {root} is not a campaign store")
        return report
    from .store import FORMAT

    found = marker.read_text().strip()
    if found != FORMAT:
        report.problems.append(
            f"format {found!r} is not this build's {FORMAT!r}"
        )
        return report

    try:
        manifests = scan_frames(root / "manifests.jsonl")
    except StoreError as exc:
        report.problems.append(str(exc))
        manifests = []
    try:
        records = scan_frames(root / "journal.jsonl")
    except StoreError as exc:
        report.problems.append(str(exc))
        records = []

    # Manifests: last-wins per campaign; fingerprints against the live code.
    by_campaign_manifest: dict[str, dict] = {}
    for manifest in manifests:
        if manifest.get("kind") != "campaign" or "campaign_key" not in manifest:
            report.problems.append(
                f"manifest journal holds a non-campaign record: "
                f"{sorted(manifest)!r}"
            )
            continue
        by_campaign_manifest[manifest["campaign_key"]] = manifest
    report.campaigns = len(by_campaign_manifest)
    report.manifests_checked = len(manifests)
    if registry_check and by_campaign_manifest:
        from ..workloads.registry import REGISTRY_VERSION, registry_fingerprint

        live = registry_fingerprint()
        for key, manifest in by_campaign_manifest.items():
            if (
                manifest["registry_version"] != REGISTRY_VERSION
                or manifest["registry_fingerprint"] != live
            ):
                report.problems.append(
                    f"campaign {key[:12]}: workload registry changed since "
                    f"recording (version {manifest['registry_version']} -> "
                    f"{REGISTRY_VERSION}); its results describe different "
                    f"workloads"
                )

    # Experiment / cell records: uniqueness, key recomputation, references.
    seen_keys: set[str] = set()
    seen_cells: set[str] = set()
    seqs: dict[str, list[int]] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "experiment":
            report.experiments += 1
            key = record["key"]
            if key in seen_keys:
                report.problems.append(f"duplicate experiment key {key[:12]}")
            seen_keys.add(key)
            campaign = record["campaign"]
            if campaign not in by_campaign_manifest:
                report.problems.append(
                    f"experiment {key[:12]} references unmanifested campaign "
                    f"{campaign[:12]}"
                )
            expected = experiment_key(
                campaign, record["seq"], record["k"], record["bit"],
                record["params"],
            )
            if expected != key:
                report.problems.append(
                    f"experiment at seq {record['seq']} of campaign "
                    f"{campaign[:12]}: stored key {key[:12]} != recomputed "
                    f"{expected[:12]} (payload edited?)"
                )
            seqs.setdefault(campaign, []).append(record["seq"])
        elif kind == "cell":
            report.cells += 1
            if record["key"] in seen_cells:
                report.problems.append(
                    f"duplicate cell key {record['key'][:12]}"
                )
            seen_cells.add(record["key"])
        else:
            report.problems.append(f"unknown journal record kind {kind!r}")

    # Schedule coverage: seqs must be the exact prefix of this store's share
    # of the planned schedule — the whole schedule for a full store, the
    # stripe for a shard store — and complete when the manifest says so.
    shard = read_shard_file(root)
    for campaign, manifest in by_campaign_manifest.items():
        got = sorted(seqs.get(campaign, []))
        planned = manifest.get("planned") or 0
        if shard is not None:
            expected_full = shard.stripe(max(planned, (max(got) + 1) if got else 0))
        else:
            expected_full = list(range(max(planned, len(got))))
        expected = expected_full[: len(got)]
        if got != expected:
            report.problems.append(
                f"campaign {campaign[:12]}: stored seqs are not the "
                f"schedule {'stripe' if shard else 'prefix'} "
                f"(first divergence at position "
                f"{next((i for i, (a, b) in enumerate(zip(got, expected)) if a != b), min(len(got), len(expected)))})"
            )
        if manifest.get("completed") and manifest.get("executed") is not None:
            if len(got) != manifest["executed"]:
                report.problems.append(
                    f"campaign {campaign[:12]}: manifest says "
                    f"{manifest['executed']} executed but journal holds "
                    f"{len(got)} record(s)"
                )
    return report
