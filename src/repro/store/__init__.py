"""Durable, resumable fault-injection campaigns.

The paper's headline figures come from six-figure injection counts
(108,000 for Fig. 11 alone); this subsystem makes such sweeps restartable
and incremental.  Every experiment lands in an append-only, crc-framed
journal under a deterministic content key, a manifest pins each campaign
cell's full identity, and a resumed campaign replays completed experiments
from the index instead of re-executing them — bit-identical, by
construction, to the uninterrupted run.

Entry points: :class:`CampaignStore` (open/create a store directory),
``CampaignStore.recorder`` (per-cell recording), and
:func:`repro.analysis.report.rebuild_report` (regenerate figure tables
from a store without executing anything).
"""

from .journal import (
    Journal,
    StoreCorruption,
    StoreError,
    TornTailWarning,
    scan_frames,
)
from .keys import cell_key, experiment_key, module_fingerprint, stable_json
from .merge import MergeReport, merge_shards
from .recorder import CampaignAborted, CampaignRecorder
from .records import decode_result, encode_result
from .shard import (
    ShardSpec,
    find_shard_dirs,
    is_shard_parent,
    parse_shards,
    render_sharded_status,
    shard_dir,
    sharded_status_rows,
)
from .store import FORMAT, CampaignStore
from .verify import VerifyReport, verify_store

__all__ = [
    "CampaignAborted",
    "CampaignRecorder",
    "CampaignStore",
    "FORMAT",
    "Journal",
    "MergeReport",
    "ShardSpec",
    "StoreCorruption",
    "StoreError",
    "TornTailWarning",
    "VerifyReport",
    "cell_key",
    "decode_result",
    "encode_result",
    "experiment_key",
    "find_shard_dirs",
    "is_shard_parent",
    "merge_shards",
    "module_fingerprint",
    "parse_shards",
    "render_sharded_status",
    "scan_frames",
    "shard_dir",
    "sharded_status_rows",
    "stable_json",
    "verify_store",
]
