"""Deterministic fingerprints: how the store addresses its content.

An experiment's identity is everything that determines its result under
the deterministic two-execution protocol:

* the **campaign identity** — pristine-module content hash, engine,
  site category, step limit, mask policy, campaign seed, and the campaign
  config fingerprint (the schedule's ``Random(seed)`` stream is a pure
  function of these);
* the **schedule position** — sequence index plus the drawn ``(input
  params, site k, bit)`` triple.

``checkpoint_interval`` and ``--jobs`` are deliberately *excluded*: both
are proven bit-identical to their baselines (see DESIGN.md), so a store
recorded serially without checkpoints can resume a ``--jobs 8``
checkpointed run and vice versa.
"""

from __future__ import annotations

import hashlib
import json


def stable_json(obj) -> str:
    """Canonical JSON for hashing (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)


def digest(obj) -> str:
    return hashlib.sha256(stable_json(obj).encode()).hexdigest()


def module_fingerprint(module) -> str:
    """Content hash of a module's printed IR, memoized per version."""
    cached = getattr(module, "_store_fingerprint", None)
    if cached is not None and cached[0] == module.version:
        return cached[1]
    from ..ir.printer import print_module

    fingerprint = hashlib.sha256(print_module(module).encode()).hexdigest()
    module._store_fingerprint = (module.version, fingerprint)
    return fingerprint


def campaign_identity(injector, seed: int, config: dict) -> dict:
    """The campaign-scope fields of the experiment key, as a plain dict."""
    return {**injector.engine_identity(), "seed": seed, "config": config}


def experiment_key(campaign_key: str, seq: int, k: int, bit: int, params) -> str:
    """Content address of one experiment within a campaign's schedule."""
    return digest(
        {"campaign": campaign_key, "seq": seq, "k": k, "bit": bit, "params": params}
    )


def cell_key(fields: dict) -> str:
    """Content address of one non-campaign result cell (table1, fig10...)."""
    return digest(fields)
