"""Bit-exact (de)serialization of :class:`ExperimentResult` records.

JSON cannot carry every IEEE-754 value faithfully (NaN payloads, and the
standard forbids NaN/Infinity outright), yet the resume invariant demands
*byte-identical* injection records.  Floats therefore travel as their
binary64 bit pattern — ``{"f64": "<16 hex digits>"}`` — and everything
else as plain JSON.  ``decode_result(encode_result(r))`` reproduces the
record the engine would have produced live, field for field and bit for
bit.
"""

from __future__ import annotations

import struct

import numpy as np

from ..core.outcomes import ExperimentResult, Outcome
from ..core.runtime import InjectionRecord


def encode_value(value):
    """One injected value (original/corrupted) as JSON-safe data."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return {"f64": struct.pack("<d", value).hex()}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return {"f64": struct.pack("<d", float(value)).hex()}
    raise TypeError(f"cannot journal injected value of type {type(value).__name__}")


def decode_value(value):
    if isinstance(value, dict) and "f64" in value:
        return struct.unpack("<d", bytes.fromhex(value["f64"]))[0]
    return value


def encode_rows(rows: list[dict]) -> list[dict]:
    """Result-cell rows (table1/fig10/bitpos/ablations) as JSON-safe data.

    Floats travel as bit patterns like injected values do — a cell row may
    legitimately hold NaN (e.g. a vector fraction over zero sites), which
    the journal's strict JSON would reject, and rebuilt reports must equal
    live ones bit for bit anyway.
    """
    return _map_tree(rows, _encode_tree_value)


def decode_rows(rows: list[dict]) -> list[dict]:
    return _decode_tree(rows)


def _map_tree(obj, fn):
    if isinstance(obj, dict):
        return {k: _map_tree(v, fn) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_map_tree(v, fn) for v in obj]
    return fn(obj)


def _decode_tree(obj):
    if isinstance(obj, dict):
        # The float wrapper is itself a dict — unwrap it before recursing.
        if set(obj) == {"f64"}:
            return decode_value(obj)
        return {k: _decode_tree(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode_tree(v) for v in obj]
    return obj


def _encode_tree_value(value):
    if value is None or isinstance(value, str):
        return value
    return encode_value(value)


def encode_injection(record: InjectionRecord | None) -> dict | None:
    if record is None:
        return None
    return {
        "site_id": record.site_id,
        "dynamic_index": record.dynamic_index,
        "bit": record.bit,
        "type_name": record.type_name,
        "original": encode_value(record.original),
        "corrupted": encode_value(record.corrupted),
    }


def decode_injection(data: dict | None) -> InjectionRecord | None:
    if data is None:
        return None
    return InjectionRecord(
        site_id=data["site_id"],
        dynamic_index=data["dynamic_index"],
        bit=data["bit"],
        type_name=data["type_name"],
        original=decode_value(data["original"]),
        corrupted=decode_value(data["corrupted"]),
    )


def encode_result(result: ExperimentResult) -> dict:
    return {
        "outcome": result.outcome.value,
        "detected": result.detected,
        "crash_kind": result.crash_kind,
        "injection": encode_injection(result.injection),
        "dynamic_sites": result.dynamic_sites,
        "target_index": result.target_index,
        "site_categories": sorted(result.site_categories),
        "golden_dynamic_instructions": result.golden_dynamic_instructions,
        "faulty_dynamic_instructions": result.faulty_dynamic_instructions,
        "notes": dict(result.notes),
    }


def decode_result(data: dict) -> ExperimentResult:
    return ExperimentResult(
        outcome=Outcome(data["outcome"]),
        detected=data["detected"],
        crash_kind=data["crash_kind"],
        injection=decode_injection(data["injection"]),
        dynamic_sites=data["dynamic_sites"],
        target_index=data["target_index"],
        site_categories=frozenset(data["site_categories"]),
        golden_dynamic_instructions=data["golden_dynamic_instructions"],
        faulty_dynamic_instructions=data["faulty_dynamic_instructions"],
        notes=dict(data["notes"]),
    )
