"""Append-only, crash-tolerant record journals — the store's disk primitive.

Every record is one JSON object framed as a single line::

    <crc32 of payload, 8 lowercase hex digits> <compact JSON payload>\\n

Appends are buffered and flushed in batches of ``flush_every`` records;
each flush is a single ``write()`` on an ``O_APPEND`` descriptor, so
concurrent readers never observe an interleaved batch and a crash can tear
at most the *final* line (payloads contain no newlines, so a partial write
is always a strict prefix of the batch).  :meth:`Journal.load` exploits
that: a damaged final record is dropped with a warning and the file is
truncated back to its last intact frame, while damage anywhere *before*
the tail — which no append-only crash can produce — raises
:class:`StoreCorruption` instead of being silently repaired away.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
import zlib
from pathlib import Path

from ..errors import ReproError


class StoreError(ReproError):
    """Misuse of the campaign store (wrong directory, identity mismatch...)."""


class StoreCorruption(StoreError):
    """A journal is damaged somewhere other than its final record."""


class TornTailWarning(UserWarning):
    """A journal's final record was torn by a crash and has been dropped."""


def frame(record: dict) -> bytes:
    """One record as a crc-framed journal line."""
    # allow_nan=False: floats that need bit-exactness travel as hex bit
    # patterns (see records.py); a bare NaN/Infinity here is a bug upstream.
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode()
    return b"%08x %s\n" % (zlib.crc32(payload), payload)


def parse_frame(line: bytes) -> dict:
    """Decode one journal line; raises ``ValueError`` on any damage."""
    if len(line) < 10 or line[8:9] != b" ":
        raise ValueError("unframed or truncated journal line")
    crc = int(line[:8], 16)
    payload = line[9:]
    if zlib.crc32(payload) != crc:
        raise ValueError("crc mismatch")
    record = json.loads(payload)
    if not isinstance(record, dict):
        raise ValueError("journal payload is not an object")
    return record


def scan_frames(path: str | Path) -> list[dict]:
    """All records of a journal, refusing *any* damage — tail included.

    The strict, read-only counterpart of :meth:`Journal.load`: ``merge``
    and ``verify`` must never mutate the stores they inspect, and a torn
    tail there means a shard crashed mid-run — the right response is
    "resume that shard", not a silent repair that would merge a journal
    missing its last record.
    """
    path = Path(path)
    if not path.exists():
        return []
    data = path.read_bytes()
    records: list[dict] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            raise StoreError(
                f"{path}: unterminated final record at byte {offset} "
                f"(crash mid-append) — resume the owning run to repair it"
            )
        try:
            records.append(parse_frame(data[offset:newline]))
        except ValueError as exc:
            raise StoreError(
                f"{path}: damaged record at byte {offset} ({exc})"
            ) from exc
        offset = newline + 1
    return records


class Journal:
    """One crc-framed JSONL file with batched, append-only writes.

    Appends are safe from concurrent threads: the buffer swap and the
    ``write()`` happen under one lock, so two recorders sharing a store
    (the campaign service runs many tenants' campaigns over one journal)
    can never interleave *within* a frame batch or emit a torn frame.
    Concurrent *processes* are likewise safe at frame granularity — every
    flush is a single ``write()`` on an ``O_APPEND`` descriptor.

    ``durable=True`` adds an ``fsync`` after every flush: the record is on
    stable storage before :meth:`flush` returns.  The campaign service
    journals manifests this way, so an accepted-submission acknowledgement
    implies the manifest survives a machine crash, not just a process one.
    """

    def __init__(
        self, path: str | Path, flush_every: int = 16, durable: bool = False
    ):
        self.path = Path(path)
        self.flush_every = max(1, flush_every)
        self.durable = durable
        self._buffer: list[bytes] = []
        self._fh = None
        self._lock = threading.Lock()

    # -- reading ---------------------------------------------------------------

    def load(self) -> list[dict]:
        """All intact records; repairs (warns + truncates) a torn tail.

        Call before the first :meth:`append` — repair truncates the file in
        place so later appends continue from the last intact frame.
        """
        if not self.path.exists():
            return []
        data = self.path.read_bytes()
        records: list[dict] = []
        offset = 0
        damage = None
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline == -1:
                damage = "unterminated final record (crash mid-append)"
                break
            try:
                records.append(parse_frame(data[offset:newline]))
            except ValueError as exc:
                if newline + 1 >= len(data):
                    damage = f"damaged final record ({exc})"
                    break
                raise StoreCorruption(
                    f"{self.path}: damaged record at byte {offset}, not at "
                    f"the journal tail — this is real corruption, not a "
                    f"torn append; refusing to repair"
                ) from exc
            offset = newline + 1
        if damage is not None:
            warnings.warn(
                f"{self.path}: dropping {damage} at byte {offset}; "
                f"{len(records)} records intact, journal truncated",
                TornTailWarning,
                stacklevel=2,
            )
            with open(self.path, "r+b") as fh:
                fh.truncate(offset)
        return records

    # -- writing ---------------------------------------------------------------

    def append(self, record: dict) -> None:
        # frame() outside the lock: serialization is the expensive half.
        line = frame(record)
        with self._lock:
            self._buffer.append(line)
            full = len(self._buffer) >= self.flush_every
        if full:
            self.flush()

    def flush(self) -> None:
        """Write the buffered batch as one append; no-op when empty."""
        with self._lock:
            if not self._buffer:
                return
            data = b"".join(self._buffer)
            self._buffer.clear()
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                # Unbuffered: every flush is exactly one OS-level append.
                self._fh = open(self.path, "ab", buffering=0)
            self._fh.write(data)
            if self.durable:
                os.fsync(self._fh.fileno())

    @property
    def pending(self) -> int:
        """Records buffered but not yet flushed to disk."""
        return len(self._buffer)

    def close(self) -> None:
        self.flush()
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
