"""The campaign store: a durable, content-addressed experiment database.

On disk a store is a directory::

    <root>/STORE           format marker (refuses to adopt foreign dirs)
    <root>/journal.jsonl   crc-framed experiment + cell records, append-only
    <root>/manifests.jsonl crc-framed campaign/cell manifests, append-only

Both journals share the framing in :mod:`repro.store.journal`; the index
(``key -> record``) is rebuilt from the journals at open, so "already
done?" is an O(1) dict probe from then on and a crash can never leave a
stale index behind — there is no on-disk index to invalidate.

Record kinds:

* ``campaign`` (manifests journal) — pins one campaign cell's identity:
  module content hash, engine, category, seed, config fingerprint, the
  workload-registry version/fingerprint, planned experiment budget, and —
  re-appended at completion (last manifest wins) — the executed total and
  convergence flag.
* ``experiment`` (journal) — one fault-injection experiment: its content
  key, campaign key, schedule position ``seq``, the drawn ``(k, bit,
  params)`` triple, and the bit-exact result record.
* ``cell`` (journal) — one whole result cell of a non-campaign experiment
  (table1 / fig10 / bitpos / ablations rows), memoized by content key.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

from collections import Counter

from .journal import Journal, StoreError
from .keys import campaign_identity, digest
from .recorder import CampaignRecorder
from .records import decode_rows, encode_rows
from .shard import ShardSpec, read_shard_file, write_shard_file

FORMAT = "repro-campaign-store-v1"


class CampaignStore:
    """Durable, resumable campaign persistence rooted at a directory.

    One store object is safe to share between threads: journal appends are
    frame-atomic (see :class:`~repro.store.journal.Journal`) and the
    in-memory index is guarded by an internal lock, so concurrent
    recorders (the campaign service runs many tenants' campaigns over one
    store) never corrupt the index a reader is iterating.  ``durable=True``
    fsyncs every journal flush — the service's accepted-submission
    acknowledgement rests on it.
    """

    def __init__(
        self, root: str | Path, flush_every: int = 16, durable: bool = False
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        marker = self.root / "STORE"
        if marker.exists():
            found = marker.read_text().strip()
            if found != FORMAT:
                raise StoreError(
                    f"{self.root} is a {found!r} store; this build reads "
                    f"{FORMAT!r}"
                )
        else:
            if any(self.root.iterdir()):
                raise StoreError(
                    f"{self.root} exists, is not empty, and has no STORE "
                    f"marker; refusing to adopt it as a campaign store"
                )
            _atomic_write_text(marker, FORMAT + "\n")
        self._journal = Journal(
            self.root / "journal.jsonl", flush_every, durable=durable
        )
        # Manifests are rare and pin resumability; land them immediately.
        self._manifests_journal = Journal(
            self.root / "manifests.jsonl", 1, durable=durable
        )
        #: Guards the in-memory index (experiments/cells/manifests dicts)
        #: against concurrent recorder writes vs. status/report reads.
        #: Reentrant: readers like ``status_rows`` call other locked
        #: accessors.
        self._index_lock = threading.RLock()
        self._experiments: dict[str, dict] = {}
        self._by_campaign: dict[str, dict[int, dict]] = {}
        self._cells: dict[str, dict] = {}
        self._manifests: dict[str, dict] = {}
        #: Replay hits / executed misses across every recorder this process
        #: opened on the store — what a shard run persists for the merge
        #: tool's per-shard accounting (see :meth:`save_shard_state`).
        self.session_counters: Counter = Counter()
        self._shard: ShardSpec | None = read_shard_file(self.root)
        for record in self._manifests_journal.load():
            self._index_manifest(record)
        for record in self._journal.load():
            self._index_record(record)

    # -- indexing --------------------------------------------------------------

    def _index_manifest(self, record: dict) -> None:
        with self._index_lock:
            self._manifests[record["campaign_key"]] = record

    def _index_record(self, record: dict) -> None:
        kind = record.get("kind")
        if kind == "experiment":
            with self._index_lock:
                self._experiments[record["key"]] = record
                self._by_campaign.setdefault(record["campaign"], {})[
                    record["seq"]
                ] = record
        elif kind == "cell":
            # The index holds live values; floats travel as bit patterns
            # only on disk (see records.encode_rows).
            with self._index_lock:
                self._cells[record["key"]] = {
                    **record,
                    "rows": decode_rows(record["rows"]),
                }

    # -- campaign recording ----------------------------------------------------

    def recorder(
        self,
        *,
        experiment: str,
        cell: dict,
        scale: str,
        injector,
        seed: int,
        config: dict,
        planned: int,
        extras: dict | None = None,
        abort_after: int | None = None,
    ) -> CampaignRecorder:
        """Build (and immediately manifest) a recorder for one campaign cell.

        The manifest lands on disk *now*, before any experiment executes,
        so an interrupted sweep leaves a complete inventory of every cell
        it intended to run — ``resume`` neither shrinks a crashed-early
        sweep nor expands a ``--benchmark``-restricted one.
        """
        from ..workloads.registry import REGISTRY_VERSION, registry_fingerprint

        identity = campaign_identity(injector, seed, config)
        campaign_key = digest(identity)
        manifest = {
            "kind": "campaign",
            "campaign_key": campaign_key,
            "experiment": experiment,
            "cell": dict(cell),
            "scale": scale,
            **identity,
            "registry_version": REGISTRY_VERSION,
            "registry_fingerprint": registry_fingerprint(),
            "planned": planned,
            "extras": dict(extras or {}),
            "completed": False,
            "executed": None,
            "converged": None,
        }
        with self._index_lock:
            existing = self._manifests.get(campaign_key)
            if existing is not None and (
                existing["registry_version"] != manifest["registry_version"]
                or existing["registry_fingerprint"]
                != manifest["registry_fingerprint"]
            ):
                raise StoreError(
                    f"workload registry changed since campaign "
                    f"{campaign_key[:12]} was recorded (version "
                    f"{existing['registry_version']} -> "
                    f"{manifest['registry_version']}); resuming would splice "
                    f"results from different workloads — use a fresh store"
                )
            if existing is not None:
                # Keep the recorded progress fields (identity already
                # matches — the key is a digest of it) but fold in any
                # fresher extras, e.g. an overhead measured on this run but
                # not the crashed one.
                merged_extras = {**existing.get("extras", {}), **(extras or {})}
                if merged_extras != existing.get("extras"):
                    existing = {**existing, "extras": merged_extras}
                    self.add_manifest(existing)
                manifest = self._manifests[campaign_key]
            else:
                self.add_manifest(manifest)
        return CampaignRecorder(self, manifest, abort_after=abort_after)

    def add_manifest(self, manifest: dict) -> None:
        with self._index_lock:
            if self._manifests.get(manifest["campaign_key"]) == manifest:
                return
            self._manifests_journal.append(manifest)
            self._manifests_journal.flush()
            self._index_manifest(manifest)

    def lookup_experiment(self, key: str) -> dict | None:
        with self._index_lock:
            return self._experiments.get(key)

    # -- shard assignment ------------------------------------------------------

    def shard_spec(self) -> ShardSpec | None:
        """This store's stripe of a sharded sweep (``None``: a full store)."""
        return self._shard

    def set_shard(self, spec: ShardSpec) -> None:
        """Pin this store as one stripe of a sharded sweep.

        Refuses to reassign an already-pinned store to a different stripe —
        the journal would interleave two partitions and never merge.
        """
        write_shard_file(self.root, spec)
        self._shard = spec

    def save_shard_state(self) -> None:
        """Persist this session's hit/miss counters into ``shard.json``.

        The counters are advisory provenance for ``merge``'s per-shard
        report (the journal itself is the source of truth for records);
        repeated sessions accumulate.
        """
        if self._shard is None:
            return
        import json

        path = self.root / "shard.json"
        data = {"index": self._shard.index, "count": self._shard.count}
        if path.exists():
            data = json.loads(path.read_text())
        counters = Counter(data.get("counters", {}))
        counters.update(self.session_counters)
        data["counters"] = dict(counters)
        _atomic_write_text(path, json.dumps(data, sort_keys=True) + "\n")
        # Persisted — start the next accumulation window from zero so a
        # second save in the same session cannot double-count.
        self.session_counters.clear()

    def record_experiment(self, record: dict) -> None:
        self._journal.append(record)
        self._index_record(record)

    # -- cell memoization (non-campaign experiments) ---------------------------

    def lookup_cell(self, key: str) -> dict | None:
        with self._index_lock:
            return self._cells.get(key)

    def record_cell(
        self, key: str, experiment: str, scale: str, cell: dict, rows: list[dict]
    ) -> None:
        record = {
            "kind": "cell",
            "key": key,
            "experiment": experiment,
            "scale": scale,
            "cell": dict(cell),
            "rows": encode_rows(list(rows)),
        }
        self._journal.append(record)
        self._journal.flush()
        self._index_record(record)

    # -- queries ---------------------------------------------------------------

    def manifests(self, experiment: str | None = None) -> list[dict]:
        """Campaign manifests in recording order."""
        with self._index_lock:
            out = list(self._manifests.values())
        if experiment is not None:
            out = [m for m in out if m["experiment"] == experiment]
        return out

    def experiments_for(self, campaign_key: str) -> list[dict]:
        """A campaign's experiment records in schedule order."""
        with self._index_lock:
            by_seq = dict(self._by_campaign.get(campaign_key, {}))
        return [by_seq[seq] for seq in sorted(by_seq)]

    def experiment_count(self, campaign_key: str) -> int:
        with self._index_lock:
            return len(self._by_campaign.get(campaign_key, {}))

    def cells(self, experiment: str | None = None) -> list[dict]:
        with self._index_lock:
            out = list(self._cells.values())
        if experiment is not None:
            out = [c for c in out if c["experiment"] == experiment]
        return out

    def stored_experiments(self) -> list[str]:
        """Distinct experiment names present, in first-recorded order."""
        names: dict[str, None] = {}
        with self._index_lock:
            for manifest in self._manifests.values():
                names.setdefault(manifest["experiment"])
            for cell in self._cells.values():
                names.setdefault(cell["experiment"])
        return list(names)

    # -- status / resume -------------------------------------------------------

    def status_rows(self) -> list[dict]:
        """One progress row per campaign cell plus per cell-group.

        On a shard store, ``planned`` is this stripe's share of the global
        budget (the manifest pins the whole sweep's budget so merge can
        check coverage; the shard only ever executes its stripe of it);
        the global figure rides along as ``global_planned``.
        """
        rows = []
        for manifest in self.manifests():
            done = self.experiment_count(manifest["campaign_key"])
            planned = global_planned = manifest["planned"]
            if self._shard is not None:
                planned = self._shard.stripe_size(global_planned)
            if manifest["completed"]:
                state = "complete"
                planned = manifest["executed"]
            elif done:
                state = "partial"
            else:
                state = "pending"
            rows.append(
                {
                    "experiment": manifest["experiment"],
                    "cell": "/".join(
                        str(v) for v in manifest["cell"].values()
                    ),
                    "scale": manifest["scale"],
                    "engine": manifest["engine"],
                    "done": done,
                    "planned": planned,
                    "global_planned": global_planned,
                    "state": state,
                }
            )
        groups: dict[tuple, int] = {}
        for cell in self.cells():
            key = (cell["experiment"], cell["scale"])
            groups[key] = groups.get(key, 0) + 1
        for (experiment, scale), count in sorted(groups.items()):
            rows.append(
                {
                    "experiment": experiment,
                    "cell": f"{count} result cells",
                    "scale": scale,
                    "engine": "-",
                    "done": count,
                    "planned": count,
                    "state": "cached",
                }
            )
        return rows

    def render_status(self) -> str:
        from ..analysis.report import render_table

        rows = self.status_rows()
        if not rows:
            return f"{self.root}: empty store"
        table = render_table(
            ["experiment", "cell", "scale", "engine", "done", "planned", "state"],
            [
                [
                    r["experiment"],
                    r["cell"],
                    r["scale"],
                    r["engine"],
                    r["done"],
                    r["planned"],
                    r["state"],
                ]
                for r in rows
            ],
            title=f"Campaign store {self.root}",
        )
        pending = sum(1 for r in rows if r["state"] in ("partial", "pending"))
        footer = (
            f"\n\n{pending} cell(s) incomplete — run `resume --store "
            f"{self.root}` to finish them."
            if pending
            else "\n\nall cells complete."
        )
        return table + footer

    def resume_plans(self) -> list[dict]:
        """Driver invocations that would complete this store.

        One plan per (experiment, scale, engine) group of campaign
        manifests — covering *all* manifested cells, finished or not
        (finished ones replay from the index at no injection cost) — plus
        one per cell-group for the memoized experiments.
        """
        plans: dict[tuple, dict] = {}
        for manifest in self.manifests():
            if manifest["scale"] not in ("smoke", "quick", "full"):
                # Recorded through the API with a custom config; the CLI
                # cannot reconstruct that schedule.
                continue
            key = (manifest["experiment"], manifest["scale"], manifest["engine"])
            plan = plans.setdefault(
                key,
                {
                    "experiment": manifest["experiment"],
                    "scale": manifest["scale"],
                    "engine": manifest["engine"],
                    "benchmarks": set(),
                },
            )
            benchmark = manifest["cell"].get("benchmark")
            if benchmark is not None:
                plan["benchmarks"].add(benchmark)
        out = []
        for plan in plans.values():
            plan["benchmarks"] = sorted(plan["benchmarks"]) or None
            out.append(plan)
        seen_cells = {
            (c["experiment"], c["scale"]) for c in self.cells()
        }
        for experiment, scale in sorted(seen_cells):
            if scale not in ("smoke", "quick", "full"):
                continue
            out.append(
                {
                    "experiment": experiment,
                    "scale": scale,
                    "engine": None,
                    "benchmarks": None,
                }
            )
        return out

    # -- lifecycle -------------------------------------------------------------

    def flush(self) -> None:
        self._journal.flush()
        self._manifests_journal.flush()

    def close(self) -> None:
        self._journal.close()
        self._manifests_journal.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _atomic_write_text(path: Path, text: str) -> None:
    """Write via temp file + ``os.replace`` so readers never see a torn file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
