"""Per-campaign recording/replay façade the campaign driver talks to.

One :class:`CampaignRecorder` follows one campaign cell's schedule in
order: the driver *claims* a key for each drawn experiment, *replays* it
from the store when the key is already present (a hit — the faulty run is
skipped entirely), and otherwise executes it and *records* the bit-exact
result.  The hit/miss counters mirror :class:`~repro.core.injector.
GoldenCache`'s naming so campaign summaries, ``status`` output, and perf
reports share one accounting vocabulary.
"""

from __future__ import annotations

from ..errors import ReproError
from .keys import experiment_key
from .records import decode_result, encode_result


class CampaignAborted(ReproError):
    """Deliberate mid-campaign abort (the ``--abort-after`` crash driver).

    Raised *after* the store has flushed, so everything recorded so far
    survives — exactly what a SIGKILL at the same point would leave behind,
    minus at most one torn journal tail (which :meth:`Journal.load` drops).
    """


class CampaignRecorder:
    """Streams one campaign's experiments through a :class:`CampaignStore`."""

    def __init__(self, store, manifest: dict, abort_after: int | None = None):
        self.store = store
        self.manifest = manifest
        self.campaign_key = manifest["campaign_key"]
        self.abort_after = abort_after
        #: Experiments replayed from the store (faulty run skipped).
        self.hits = 0
        #: Experiments actually executed (and recorded) this run.
        self.misses = 0
        self._seq = 0

    def claim(self, k: int, bit: int, params) -> tuple[str, int]:
        """The content key for the next experiment in schedule order."""
        seq = self._seq
        self._seq += 1
        return experiment_key(self.campaign_key, seq, k, bit, params), seq

    def replay(self, key: str):
        """The stored result for ``key``, or ``None`` if it must execute."""
        record = self.store.lookup_experiment(key)
        if record is None:
            return None
        self.hits += 1
        self.store.session_counters["hits"] += 1
        return decode_result(record["result"])

    def record(self, key: str, seq: int, k: int, bit: int, params, result) -> None:
        self.store.record_experiment(
            {
                "kind": "experiment",
                "key": key,
                "campaign": self.campaign_key,
                "seq": seq,
                "k": k,
                "bit": bit,
                "params": params,
                "result": encode_result(result),
            }
        )
        self.misses += 1
        self.store.session_counters["misses"] += 1
        if self.abort_after is not None and self.misses >= self.abort_after:
            self.store.flush()
            raise CampaignAborted(
                f"aborted after {self.misses} newly executed experiments "
                f"(abort_after={self.abort_after}); store flushed — resume "
                f"from it to finish the campaign"
            )

    def finish(self, executed_total: int, converged: bool | None = None) -> None:
        """Mark the campaign complete and pin its final budget."""
        manifest = {
            **self.manifest,
            "completed": True,
            "executed": executed_total,
            "converged": converged,
        }
        self.manifest = manifest
        self.store.add_manifest(manifest)
        self.store.flush()

    def counters(self) -> dict:
        """Hit/skip accounting, GoldenCache-style."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "recorded": self.store.experiment_count(self.campaign_key),
        }
