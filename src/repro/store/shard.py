"""Deterministic campaign partitioning: schedule stripes over N shards.

A sweep's schedule is a pure function of the campaign seed — experiment
keys are sha256 over campaign identity + schedule position, with ``--jobs``
and ``checkpoint_interval`` deliberately excluded — so the schedule can be
partitioned *by position* without touching identity at all.  Shard ``i`` of
``N`` owns every schedule position ``seq`` with ``seq % N == i`` (a round-
robin stripe, so campaign-sized prefixes stay balanced even when a sweep is
cut short), runs those experiments into its own store directory, and skips
the rest while still consuming the campaign RNG stream entry for entry.
The union of N shard journals is therefore exactly the serial journal, and
:mod:`repro.store.merge` reassembles it byte for byte.

``--shards`` never enters the experiment key or the campaign manifest
identity: a shard store's records are bit-identical to the records a
single-host run would journal at the same positions, which is the whole
merge invariant.  The shard *assignment* is store-local bookkeeping and
lives in a ``shard.json`` sidecar next to the journals.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path

from .journal import StoreError

#: Shard store directories created under a sweep's parent directory.
SHARD_DIR_PREFIX = "shard-"

_SHARD_DIR_RE = re.compile(r"^shard-(\d+)$")


@dataclass(frozen=True)
class ShardSpec:
    """One partition of a campaign schedule: stripe ``index`` of ``count``."""

    index: int
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise StoreError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise StoreError(
                f"shard index {self.index} out of range for {self.count} "
                f"shard(s); indices are 0-based"
            )

    def owns(self, seq: int) -> bool:
        """Does this shard execute schedule position ``seq``?"""
        return seq % self.count == self.index

    def stripe(self, total: int) -> list[int]:
        """Every schedule position this shard owns in a ``total``-long run."""
        return list(range(self.index, total, self.count))

    def stripe_size(self, total: int) -> int:
        if total <= self.index:
            return 0
        return (total - self.index + self.count - 1) // self.count

    @property
    def spec(self) -> str:
        return f"{self.index}/{self.count}"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.spec


def parse_shards(text: str) -> ShardSpec | int:
    """Parse a CLI ``--shards`` value.

    ``"i/N"`` selects one partition (a :class:`ShardSpec`); a bare integer
    ``"N"`` asks for all N partitions — ``1`` is a plain single-store run
    and ``N > 1`` the simulated-cluster orchestrator (fork N shard runs,
    merge, rebuild).
    """
    text = text.strip()
    if "/" in text:
        left, _, right = text.partition("/")
        try:
            index, count = int(left), int(right)
        except ValueError:
            raise StoreError(
                f"--shards expects 'i/N' or 'N', got {text!r}"
            ) from None
        return ShardSpec(index, count)
    try:
        count = int(text)
    except ValueError:
        raise StoreError(f"--shards expects 'i/N' or 'N', got {text!r}") from None
    if count < 1:
        raise StoreError(f"--shards needs a positive shard count, got {count}")
    return count


def shard_dir(parent: str | Path, index: int) -> Path:
    return Path(parent) / f"{SHARD_DIR_PREFIX}{index}"


def find_shard_dirs(parent: str | Path) -> list[Path]:
    """The ``shard-<i>/`` store directories under ``parent``, by index."""
    parent = Path(parent)
    if not parent.is_dir():
        return []
    found = []
    for entry in parent.iterdir():
        match = _SHARD_DIR_RE.match(entry.name)
        if match and entry.is_dir():
            found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found)]


def is_shard_parent(path: str | Path) -> bool:
    """A directory holding ``shard-*/`` stores but not itself a store."""
    path = Path(path)
    return not (path / "STORE").exists() and bool(find_shard_dirs(path))


def read_shard_file(root: str | Path) -> ShardSpec | None:
    """The shard assignment recorded in a store's ``shard.json``, if any."""
    path = Path(root) / "shard.json"
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    return ShardSpec(data["index"], data["count"])


def write_shard_file(root: str | Path, spec: ShardSpec) -> None:
    """Pin a store's shard assignment (atomic, like the STORE marker)."""
    path = Path(root) / "shard.json"
    existing = read_shard_file(root)
    if existing is not None and existing != spec:
        raise StoreError(
            f"{root} is shard {existing.spec} of its sweep; refusing to "
            f"re-run it as shard {spec.spec} — that would interleave two "
            f"different stripes in one journal"
        )
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps({"index": spec.index, "count": spec.count}, sort_keys=True)
        + "\n"
    )
    os.replace(tmp, path)


# -- sharded status (satellite: `status --store <parent>`) ---------------------


def sharded_status_rows(parent: str | Path) -> tuple[list[dict], list[dict]]:
    """Per-shard progress rows plus combined per-cell totals.

    Opens each ``shard-*/`` store under ``parent``; returns ``(per_shard,
    combined)`` where ``per_shard`` rows carry a ``shard`` column and
    ``combined`` aggregates done counts per (experiment, cell, scale,
    engine) against the *global* planned budget (every shard manifests the
    full budget; only its stripe of it executes locally).
    """
    from .store import CampaignStore

    per_shard: list[dict] = []
    combined: dict[tuple, dict] = {}
    for path in find_shard_dirs(parent):
        store = CampaignStore(path)
        try:
            spec = store.shard_spec()
            label = spec.spec if spec is not None else path.name
            for row in store.status_rows():
                per_shard.append({"shard": label, **row})
                key = (row["experiment"], row["cell"], row["scale"], row["engine"])
                cell = combined.setdefault(
                    key,
                    {
                        "experiment": row["experiment"],
                        "cell": row["cell"],
                        "scale": row["scale"],
                        "engine": row["engine"],
                        "done": 0,
                        "planned": row.get("global_planned", row["planned"]),
                        "complete": True,
                    },
                )
                cell["done"] += row["done"]
                cell["complete"] &= row["state"] in ("complete", "cached")
        finally:
            store.close()
    rows = []
    for cell in combined.values():
        state = "complete" if cell.pop("complete") else "partial"
        if state == "partial" and cell["done"] == 0:
            state = "pending"
        rows.append({**cell, "state": state})
    return per_shard, rows


def render_sharded_status(parent: str | Path) -> str:
    from ..analysis.report import render_table

    per_shard, combined = sharded_status_rows(parent)
    if not per_shard:
        return f"{parent}: no shard stores found"
    shard_table = render_table(
        ["shard", "experiment", "cell", "scale", "engine", "done", "planned", "state"],
        [
            [
                r["shard"], r["experiment"], r["cell"], r["scale"],
                r["engine"], r["done"], r["planned"], r["state"],
            ]
            for r in per_shard
        ],
        title=f"Sharded campaign sweep {parent}",
    )
    total_table = render_table(
        ["experiment", "cell", "scale", "engine", "done", "planned", "state"],
        [
            [
                r["experiment"], r["cell"], r["scale"], r["engine"],
                r["done"], r["planned"], r["state"],
            ]
            for r in combined
        ],
        title="Combined across shards",
    )
    incomplete = sum(1 for r in combined if r["state"] != "complete")
    if incomplete:
        footer = (
            f"\n\n{incomplete} cell(s) incomplete across shards — re-run the "
            f"unfinished shards (each resumes from its own store), then "
            f"`merge --store {parent}`."
        )
    else:
        footer = (
            f"\n\nall shards complete — `merge --store {parent}` assembles "
            f"the serial-identical journal."
        )
    return shard_table + "\n\n" + total_table + footer
