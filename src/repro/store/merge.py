"""``store merge``: reassemble N shard journals into the serial journal.

The merge invariant: because experiment records are pure functions of
campaign identity + schedule position (``--shards``, like ``--jobs``,
never enters the key), the union of N disjoint schedule stripes *is* the
single-host serial journal — and because :func:`repro.store.journal.frame`
is deterministic (sorted keys, compact separators, floats as bit
patterns), re-framing the parsed shard records reproduces the serial
file **byte for byte**.  The merged store is indistinguishable from one a
``--shards 1`` run wrote locally: ``report`` rebuilds the figures from it
alone.

The merge refuses rather than guesses: torn shard tails (resume that
shard, don't repair here), shard-count or stripe-assignment disagreements,
campaign manifests that differ in anything but completion progress
(including the workload-registry fingerprint), incomplete shards, and
overlapping or missing schedule positions each abort with a message naming
the offending shard.  Output files land atomically (``mkstemp`` + fsync +
``os.replace``, the :meth:`ExperimentReport.save` idiom) and the final
step re-verifies the merged store with :func:`repro.store.verify.
verify_store`.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from .journal import StoreError, frame, scan_frames
from .shard import ShardSpec, find_shard_dirs, read_shard_file
from .verify import VerifyReport, verify_store

#: Manifest fields a shard legitimately completes differently from the
#: merged whole; everything else must be identical across shards.
_PROGRESS_FIELDS = ("completed", "executed", "converged")


@dataclass
class ShardMergeRow:
    """Per-shard accounting for the merge report."""

    spec: ShardSpec
    path: Path
    records: int
    hits: int
    misses: int
    outcomes: Counter
    seconds: float | None = None


@dataclass
class MergeReport:
    out: Path
    shards: list[ShardMergeRow]
    campaigns: int
    records: int
    outcomes: Counter
    journal_bytes: int
    verify: VerifyReport

    def render(self) -> str:
        from ..analysis.report import render_table

        outcome_names = sorted(self.outcomes)
        rows = []
        for row in self.shards:
            rows.append(
                [row.spec.spec, row.records, row.hits, row.misses]
                + [row.outcomes.get(name, 0) for name in outcome_names]
            )
        rows.append(
            ["merged", self.records, sum(r.hits for r in self.shards),
             sum(r.misses for r in self.shards)]
            + [self.outcomes.get(name, 0) for name in outcome_names]
        )
        table = render_table(
            ["shard", "records", "hits", "misses"] + outcome_names,
            rows,
            title=f"Merged {len(self.shards)} shard(s) -> {self.out}",
        )
        tail = (
            f"\n\n{self.campaigns} campaign(s), {self.records} record(s), "
            f"{self.journal_bytes} journal byte(s); verify: "
            f"{'OK' if self.verify.ok else 'FAILED'}"
        )
        return table + tail


@dataclass
class _LoadedShard:
    spec: ShardSpec
    path: Path
    manifest_order: list[str]
    manifests: dict[str, dict]
    records: dict[str, dict[int, dict]]
    counters: dict


def _load_shard(path: Path) -> _LoadedShard:
    spec = read_shard_file(path)
    if spec is None:
        raise StoreError(
            f"{path} has no shard.json — it is a plain store, not one "
            f"stripe of a sharded sweep"
        )
    expected_index = int(path.name.rsplit("-", 1)[1])
    if spec.index != expected_index:
        raise StoreError(
            f"{path} says it is shard {spec.spec} but sits in the "
            f"shard-{expected_index} directory; refusing a mislabeled stripe"
        )
    marker = path / "STORE"
    if not marker.exists():
        raise StoreError(f"{path}: no STORE marker; not a campaign store")
    try:
        manifests = scan_frames(path / "manifests.jsonl")
        journal = scan_frames(path / "journal.jsonl")
    except StoreError as exc:
        raise StoreError(f"shard {spec.spec}: {exc}") from exc

    manifest_order: list[str] = []
    manifest_map: dict[str, dict] = {}
    for manifest in manifests:
        key = manifest["campaign_key"]
        if key not in manifest_map:
            manifest_order.append(key)
        manifest_map[key] = manifest  # last manifest wins, as at store open

    records: dict[str, dict[int, dict]] = {}
    for record in journal:
        if record.get("kind") != "experiment":
            raise StoreError(
                f"shard {spec.spec}: journal holds a "
                f"{record.get('kind')!r} record; only campaign sweeps "
                f"shard — memoized result cells never do"
            )
        by_seq = records.setdefault(record["campaign"], {})
        if record["seq"] in by_seq:
            raise StoreError(
                f"shard {spec.spec}: duplicate record for seq "
                f"{record['seq']} of campaign {record['campaign'][:12]}"
            )
        by_seq[record["seq"]] = record

    counters = json.loads((path / "shard.json").read_text()).get("counters", {})
    return _LoadedShard(spec, path, manifest_order, manifest_map, records, counters)


def _identity(manifest: dict) -> dict:
    return {k: v for k, v in manifest.items() if k not in _PROGRESS_FIELDS}


def _check_manifests(shards: list[_LoadedShard]) -> None:
    first = shards[0]
    for other in shards[1:]:
        if other.manifest_order != first.manifest_order:
            missing = set(first.manifest_order) ^ set(other.manifest_order)
            what = (
                f"different campaign sets (symmetric difference "
                f"{sorted(k[:12] for k in missing)})"
                if missing
                else "the same campaigns in a different recording order"
            )
            raise StoreError(
                f"shard {other.spec.spec} manifests {what} than shard "
                f"{first.spec.spec} — these stripes are not one sweep"
            )
        for key in first.manifest_order:
            a, b = first.manifests[key], other.manifests[key]
            if _identity(a) == _identity(b):
                continue
            if (
                a["registry_fingerprint"] != b["registry_fingerprint"]
                or a["registry_version"] != b["registry_version"]
            ):
                raise StoreError(
                    f"campaign {key[:12]}: shard {first.spec.spec} and "
                    f"shard {other.spec.spec} were recorded against "
                    f"different workload registries (fingerprint "
                    f"{a['registry_fingerprint'][:12]} vs "
                    f"{b['registry_fingerprint'][:12]}); their records "
                    f"describe different workloads and cannot be merged"
                )
            fields = sorted(
                k
                for k in _identity(a)
                if _identity(a)[k] != _identity(b).get(k)
            )
            raise StoreError(
                f"campaign {key[:12]}: manifest identity differs between "
                f"shard {first.spec.spec} and shard {other.spec.spec} in "
                f"field(s) {fields} — same key, different sweeps; refusing"
            )
    for shard in shards:
        for key in shard.manifest_order:
            manifest = shard.manifests[key]
            if not manifest.get("completed"):
                done = len(shard.records.get(key, {}))
                raise StoreError(
                    f"shard {shard.spec.spec}: campaign {key[:12]} is "
                    f"incomplete ({done} record(s)); resume that shard to "
                    f"finish its stripe, then merge"
                )


def _check_coverage(shards: list[_LoadedShard]) -> None:
    for key in shards[0].manifest_order:
        planned = shards[0].manifests[key]["planned"]
        owner: dict[int, ShardSpec] = {}
        for shard in shards:
            stripe = set(shard.spec.stripe(planned))
            for seq in shard.records.get(key, {}):
                if seq not in stripe:
                    other = seq % shard.spec.count
                    raise StoreError(
                        f"campaign {key[:12]}: shard {shard.spec.spec} "
                        f"holds seq {seq}, which belongs to stripe "
                        f"{other}/{shard.spec.count} — overlapping key "
                        f"ranges; these stores did not run disjoint "
                        f"partitions"
                    )
                owner[seq] = shard.spec
        missing = [seq for seq in range(planned) if seq not in owner]
        if missing:
            raise StoreError(
                f"campaign {key[:12]}: missing {len(missing)} of {planned} "
                f"schedule position(s) (first: seq {missing[0]}, stripe "
                f"{missing[0] % shards[0].spec.count}) — incomplete or "
                f"absent shard stores"
            )


def _recompute_converged(manifest: dict, records: list[dict]):
    """The convergence flag a full-budget serial run would manifest.

    Only campaigns recorded with a :class:`CampaignConfig`-shaped config
    carry convergence semantics (``run_batch`` sweeps don't); for those,
    chunk the merged schedule into campaigns and prefix-evaluate the same
    predicate the live driver uses.
    """
    from ..core.campaign import CampaignConfig, CampaignStats, would_converge
    from .records import decode_result

    config = manifest.get("config")
    if not isinstance(config, dict):
        return None
    try:
        campaign_config = CampaignConfig(**config)
    except TypeError:
        return None
    per = campaign_config.experiments_per_campaign
    samples = []
    for start in range(0, len(records), per):
        chunk = records[start : start + per]
        stats = CampaignStats()
        for record in chunk:
            stats.add(decode_result(record["result"]))
        samples.append(stats.rate("sdc"))
    return would_converge(samples, campaign_config)


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def merge_shards(
    parent: str | Path,
    out: str | Path | None = None,
    durations: dict[int, float] | None = None,
) -> MergeReport:
    """Merge the ``shard-*/`` stores under ``parent`` into one serial store.

    Returns a :class:`MergeReport`; raises :class:`StoreError` on any
    refusal.  ``out`` defaults to ``<parent>/merged``.  ``durations``
    (shard index -> seconds, from the cluster orchestrator) only annotates
    the report's per-shard rows.
    """
    parent = Path(parent)
    if (parent / "STORE").exists():
        raise StoreError(
            f"{parent} is itself a campaign store, not a sharded sweep "
            f"parent; merge wants the directory *containing* shard-*/"
        )
    dirs = find_shard_dirs(parent)
    if not dirs:
        raise StoreError(f"{parent}: no shard-*/ stores to merge")
    shards = [_load_shard(path) for path in dirs]

    counts = {shard.spec.count for shard in shards}
    if len(counts) != 1:
        raise StoreError(
            f"shard stores disagree on the shard count: "
            f"{sorted(s.spec.spec for s in shards)} — these stripes belong "
            f"to different partitionings"
        )
    count = counts.pop()
    have = {shard.spec.index for shard in shards}
    missing = sorted(set(range(count)) - have)
    if missing:
        raise StoreError(
            f"{parent}: missing shard store(s) for stripe(s) "
            f"{['%d/%d' % (i, count) for i in missing]} — every stripe of "
            f"the sweep must be present to reassemble the serial journal"
        )

    _check_manifests(shards)
    _check_coverage(shards)

    by_index = {shard.spec.index: shard for shard in shards}
    rows = {
        shard.spec.index: ShardMergeRow(
            spec=shard.spec,
            path=shard.path,
            records=0,
            hits=int(shard.counters.get("hits", 0)),
            misses=int(shard.counters.get("misses", 0)),
            outcomes=Counter(),
            seconds=(durations or {}).get(shard.spec.index),
        )
        for shard in shards
    }

    # Reassembly: campaigns in manifest-recording order, records in seq
    # order — exactly the layout a serial sweep journals (drivers manifest
    # every cell upfront, then run cells sequentially).
    journal_parts: list[bytes] = []
    manifest_parts: list[bytes] = []
    completed_parts: list[bytes] = []
    totals = Counter()
    records_total = 0
    first = shards[0]
    for key in first.manifest_order:
        merged_manifest = dict(first.manifests[key])
        planned = merged_manifest["planned"]
        ordered: list[dict] = []
        for seq in range(planned):
            shard = by_index[seq % count]
            record = shard.records[key][seq]
            journal_parts.append(frame(record))
            ordered.append(record)
            outcome = record["result"]["outcome"]
            rows[shard.spec.index].records += 1
            rows[shard.spec.index].outcomes[outcome] += 1
            totals[outcome] += 1
        records_total += planned
        initial = {
            **merged_manifest,
            "completed": False,
            "executed": None,
            "converged": None,
        }
        manifest_parts.append(frame(initial))
        completed_parts.append(
            frame(
                {
                    **merged_manifest,
                    "completed": True,
                    "executed": planned,
                    "converged": _recompute_converged(merged_manifest, ordered),
                }
            )
        )

    out = Path(out) if out is not None else parent / "merged"
    out.mkdir(parents=True, exist_ok=True)
    marker = out / "STORE"
    from .store import FORMAT

    if marker.exists():
        found = marker.read_text().strip()
        if found != FORMAT:
            raise StoreError(
                f"{out} is a {found!r} store; refusing to overwrite it "
                f"with a {FORMAT!r} merge"
            )
    elif any(out.iterdir()):
        raise StoreError(
            f"{out} exists, is not empty, and has no STORE marker; "
            f"refusing to merge into it"
        )
    journal_bytes = b"".join(journal_parts)
    _atomic_write_bytes(marker, (FORMAT + "\n").encode())
    _atomic_write_bytes(out / "journal.jsonl", journal_bytes)
    _atomic_write_bytes(
        out / "manifests.jsonl", b"".join(manifest_parts + completed_parts)
    )

    verify = verify_store(out)
    report = MergeReport(
        out=out,
        shards=[rows[i] for i in sorted(rows)],
        campaigns=len(first.manifest_order),
        records=records_total,
        outcomes=totals,
        journal_bytes=len(journal_bytes),
        verify=verify,
    )
    if not verify.ok:
        raise StoreError(
            f"merged store failed verification:\n{verify.render()}"
        )
    return report
