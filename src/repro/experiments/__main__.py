"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments table1 [--scale smoke|quick|full]
    python -m repro.experiments fig10
    python -m repro.experiments fig11 [--scale full] [--benchmark stencil ...]
    python -m repro.experiments fig12 [--scale full]
    python -m repro.experiments perf
    python -m repro.experiments all [--json-dir results/]

``--jobs N`` fans the fault-injection campaigns (fig11/fig12/perf) out over
N worker processes; results are bit-identical to ``--jobs 1``.

``--engine direct|instrumented`` selects the injection engine
(fig11/fig12/perf/ablations).  Both engines produce bit-identical
experiment streams; ``direct`` (the default) folds fault sites into the
decoded interpreter, ``instrumented`` splices VULFI's ``injectFault<Ty>Ty``
calls into a cloned module.  ``perf`` benchmarks both side by side unless
one is forced.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from . import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    parser.add_argument("--scale", choices=("smoke", "quick", "full"), default="quick")
    parser.add_argument(
        "--benchmark",
        action="append",
        help="restrict fig11 to specific benchmarks (repeatable)",
    )
    parser.add_argument("--json-dir", type=Path, help="also dump JSON reports here")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for campaign experiments (bit-identical to 1)",
    )
    parser.add_argument(
        "--engine",
        choices=("direct", "instrumented"),
        default=None,
        help="injection engine for campaign experiments (default: direct; "
        "both engines are bit-identical — 'instrumented' is VULFI's "
        "IR-splicing reference semantics; perf benchmarks both unless "
        "one is forced here)",
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        mod = EXPERIMENTS[name]
        t0 = time.time()
        engine = args.engine or "direct"
        if name == "fig11":
            report = mod.run(
                args.scale, benchmarks=args.benchmark, jobs=args.jobs,
                engine=engine,
            )
        elif name == "fig12":
            report = mod.run(args.scale, jobs=args.jobs, engine=engine)
        elif name == "perf":
            # None = benchmark both engines side by side.
            report = mod.run(args.scale, jobs=args.jobs, engine=args.engine)
        elif name == "ablations":
            report = mod.run(args.scale, engine=engine)
        else:
            report = mod.run(args.scale)
        print(mod.render(report))
        print(f"\n[{name} completed in {time.time() - t0:.1f}s at scale={args.scale}]\n")
        if args.json_dir:
            args.json_dir.mkdir(parents=True, exist_ok=True)
            report.save(args.json_dir / f"{name}.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
