"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments table1 [--scale smoke|quick|full]
    python -m repro.experiments fig10
    python -m repro.experiments fig11 [--scale full] [--benchmark stencil ...]
    python -m repro.experiments fig12 [--scale full]
    python -m repro.experiments perf
    python -m repro.experiments all [--json-dir results/]
    python -m repro.experiments fig11 --store store/   # record as you go
    python -m repro.experiments status --store store/  # progress per cell
    python -m repro.experiments resume --store store/  # finish what's stored
    python -m repro.experiments report --store store/  # tables, no execution

``--jobs N`` fans the fault-injection campaigns (fig11/fig12/perf) out over
N worker processes; results are bit-identical to ``--jobs 1``.

``--store DIR`` journals every fault-injection experiment into a durable
campaign store as it completes (and memoizes the non-campaign tables).  An
interrupted run loses at most one in-flight batch; ``resume`` replays the
stored experiments and executes only the remainder — the finished campaign
is byte-identical to one that never crashed, at any ``--jobs`` and across
engines.  ``report`` rebuilds any stored experiment's tables from the
journal alone.  ``--abort-after N`` deliberately crashes a recorded run
after N new experiments (testing hook for the resume machinery).

``--engine direct|instrumented|compiled`` selects the injection engine
(fig11/fig12/perf/ablations).  All engines produce bit-identical
experiment streams; ``direct`` (the default) folds fault sites into the
decoded interpreter, ``instrumented`` splices VULFI's ``injectFault<Ty>Ty``
calls into a cloned module, and ``compiled`` exec-compiles superblock
chains into specialized closures (fastest; checkpoints hook at superblock
boundaries, so it refuses ``--no-checkpoints``).  ``perf`` benchmarks all
engines side by side unless one is forced.

``--checkpoint-interval N`` records a golden VM snapshot every N dynamic
sites (fig11/fig12/perf); faulty runs then restore the nearest snapshot
before their target site and replay only the suffix — bit-identical to
full replay.  ``--no-checkpoints`` disables snapshots entirely (perf
defaults them on; fig11/fig12 default off).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from . import EXPERIMENTS


#: CLI verbs that operate on an existing store instead of running anything.
STORE_COMMANDS = ("status", "resume", "report")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument("experiment", choices=[*EXPERIMENTS, "all", *STORE_COMMANDS])
    parser.add_argument("--scale", choices=("smoke", "quick", "full"), default="quick")
    parser.add_argument(
        "--benchmark",
        action="append",
        help="restrict fig11 to specific benchmarks (repeatable)",
    )
    parser.add_argument("--json-dir", type=Path, help="also dump JSON reports here")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for campaign experiments (bit-identical to 1)",
    )
    parser.add_argument(
        "--engine",
        choices=("direct", "instrumented", "compiled"),
        default=None,
        help="injection engine for campaign experiments (default: direct; "
        "all engines are bit-identical — 'instrumented' is VULFI's "
        "IR-splicing reference semantics, 'compiled' the threaded-code "
        "superblock engine; perf benchmarks every engine unless one is "
        "forced here)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="N",
        help="record a golden VM snapshot every N dynamic sites; faulty "
        "runs restore the nearest one before their target site "
        "(bit-identical prefix skipping; fig11/fig12 default off, perf "
        "defaults on)",
    )
    parser.add_argument(
        "--no-checkpoints",
        action="store_true",
        help="disable golden-run snapshots even where they default on (perf)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help="journal experiments into a durable campaign store at DIR "
        "(created if missing); also the target of status/resume/report",
    )
    parser.add_argument(
        "--abort-after",
        type=int,
        default=None,
        metavar="N",
        help="crash deliberately after N newly executed experiments "
        "(requires --store; exercises the resume machinery)",
    )
    args = parser.parse_args(argv)
    if args.no_checkpoints and args.checkpoint_interval is not None:
        parser.error("--no-checkpoints conflicts with --checkpoint-interval")
    if args.no_checkpoints and args.engine == "compiled":
        parser.error(
            "--engine compiled --no-checkpoints would silently fall "
            "faulty-run prefix skipping back to full replays (the compiled "
            "engine takes snapshots at superblock boundaries); drop "
            "--no-checkpoints or pick --engine direct"
        )
    if args.experiment in STORE_COMMANDS and args.store is None:
        parser.error(f"{args.experiment} requires --store DIR")
    if args.abort_after is not None and args.store is None:
        parser.error("--abort-after requires --store")

    store = None
    if args.store is not None:
        from ..store import CampaignStore

        store = CampaignStore(args.store)

    try:
        if args.experiment == "status":
            print(store.render_status())
            return 0
        if args.experiment == "report":
            return _report_from_store(store, args)
        if args.experiment == "resume":
            return _resume(store, args)
        return _run_experiments(store, args)
    finally:
        if store is not None:
            store.close()


def _run_one(name: str, args, store=None, benchmarks=None, scale=None, engine=None):
    """Dispatch one experiment driver with the CLI's knobs."""
    mod = EXPERIMENTS[name]
    scale = scale or args.scale
    engine = engine if engine is not None else (args.engine or "direct")
    # fig11/fig12 default checkpoints off (None); perf defaults them on
    # and only needs an override when the user forced a value or none.
    interval = None if args.no_checkpoints else args.checkpoint_interval
    if name == "fig11":
        return mod.run(
            scale, benchmarks=benchmarks, jobs=args.jobs, engine=engine,
            checkpoint_interval=interval, store=store,
            abort_after=args.abort_after,
        )
    if name == "fig12":
        return mod.run(
            scale, jobs=args.jobs, engine=engine, checkpoint_interval=interval,
            store=store, abort_after=args.abort_after,
        )
    if name == "perf":
        # None = benchmark both engines side by side; perf measures wall
        # clock, so it never records to or replays from a store.
        if args.no_checkpoints:
            return mod.run(
                scale, jobs=args.jobs, engine=args.engine,
                checkpoint_interval=None,
            )
        if args.checkpoint_interval is not None:
            return mod.run(
                scale, jobs=args.jobs, engine=args.engine,
                checkpoint_interval=args.checkpoint_interval,
            )
        return mod.run(scale, jobs=args.jobs, engine=args.engine)
    if name == "ablations":
        return mod.run(scale, engine=engine, store=store)
    return mod.run(scale, store=store)


def _emit(name: str, report, args) -> None:
    print(EXPERIMENTS[name].render(report))
    if args.json_dir:
        args.json_dir.mkdir(parents=True, exist_ok=True)
        report.save(args.json_dir / f"{name}.json")


def _run_experiments(store, args) -> int:
    from ..store import CampaignAborted

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        benchmarks = args.benchmark if name == "fig11" else None
        try:
            report = _run_one(name, args, store=store, benchmarks=benchmarks)
        except CampaignAborted as aborted:
            print(f"{name}: {aborted}", file=sys.stderr)
            print(
                f"resume with: python -m repro.experiments resume --store "
                f"{args.store}",
                file=sys.stderr,
            )
            return 3
        _emit(name, report, args)
        print(f"\n[{name} completed in {time.time() - t0:.1f}s at scale={args.scale}]\n")
    return 0


def _resume(store, args) -> int:
    """Finish every incomplete cell the store has manifests for."""
    plans = store.resume_plans()
    if not plans:
        print(f"{store.root}: nothing to resume (empty store)")
        return 0
    for plan in plans:
        name = plan["experiment"]
        if name not in EXPERIMENTS:
            print(f"skipping unknown stored experiment {name!r}", file=sys.stderr)
            continue
        t0 = time.time()
        report = _run_one(
            name,
            args,
            store=store,
            benchmarks=plan["benchmarks"],
            scale=plan["scale"],
            engine=plan["engine"],
        )
        _emit(name, report, args)
        print(
            f"\n[{name} resumed in {time.time() - t0:.1f}s at "
            f"scale={plan['scale']}]\n"
        )
    return 0


def _report_from_store(store, args) -> int:
    from ..analysis.report import rebuild_report

    names = store.stored_experiments()
    if not names:
        print(f"{store.root}: empty store, nothing to report")
        return 0
    for name in names:
        if name not in EXPERIMENTS:
            print(f"skipping unknown stored experiment {name!r}", file=sys.stderr)
            continue
        report = rebuild_report(store, name)
        _emit(name, report, args)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
