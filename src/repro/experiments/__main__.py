"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments table1 [--scale smoke|quick|full]
    python -m repro.experiments fig10
    python -m repro.experiments fig11 [--scale full] [--benchmark stencil ...]
    python -m repro.experiments fig12 [--scale full]
    python -m repro.experiments perf
    python -m repro.experiments all [--json-dir results/]
    python -m repro.experiments fig11 --store store/   # record as you go
    python -m repro.experiments status --store store/  # progress per cell
    python -m repro.experiments resume --store store/  # finish what's stored
    python -m repro.experiments report --store store/  # tables, no execution
    python -m repro.experiments fig11 --store sweep/ --shards 2/4  # one stripe
    python -m repro.experiments fig11 --store sweep/ --shards 4    # simulated cluster
    python -m repro.experiments merge --store sweep/   # shards -> serial journal
    python -m repro.experiments verify --store DIR     # integrity check, no execution
    python -m repro.experiments serve --store DIR      # multi-tenant campaign daemon
    python -m repro.experiments submit --workload vcopy --category pure-data
    python -m repro.experiments watch --campaign KEY   # stream SSE progress
    python -m repro.experiments status --store DIR --json  # machine-readable rows

``--shards i/N`` runs stripe ``i`` of an N-way partition of the campaign
schedule into its own store at ``<store>/shard-i/`` — run the N stripes on
N hosts against a shared filesystem (or N processes here), then ``merge``
reassembles ``<store>/merged/`` byte-identical to a single-host ``--shards
1`` run.  A bare ``--shards N`` does all of that locally in N forked
processes.  ``--shards`` (like ``--jobs``) never enters experiment keys:
shard runs disable the convergence early-exit and always cover the full
``max_campaigns`` budget, so every stripe sees the same schedule.

``--jobs N`` fans the fault-injection campaigns (fig11/fig12/perf) out over
N worker processes; results are bit-identical to ``--jobs 1``.

``--store DIR`` journals every fault-injection experiment into a durable
campaign store as it completes (and memoizes the non-campaign tables).  An
interrupted run loses at most one in-flight batch; ``resume`` replays the
stored experiments and executes only the remainder — the finished campaign
is byte-identical to one that never crashed, at any ``--jobs`` and across
engines.  ``report`` rebuilds any stored experiment's tables from the
journal alone.  ``--abort-after N`` deliberately crashes a recorded run
after N new experiments (testing hook for the resume machinery).

``--engine direct|instrumented|compiled`` selects the injection engine
(fig11/fig12/perf/ablations).  All engines produce bit-identical
experiment streams; ``direct`` (the default) folds fault sites into the
decoded interpreter, ``instrumented`` splices VULFI's ``injectFault<Ty>Ty``
calls into a cloned module, and ``compiled`` exec-compiles superblock
chains into specialized closures (fastest; checkpoints hook at superblock
boundaries, so it refuses ``--no-checkpoints``).  ``perf`` benchmarks all
engines side by side unless one is forced.

``--checkpoint-interval N`` records a golden VM snapshot every N dynamic
sites (fig11/fig12/perf); faulty runs then restore the nearest snapshot
before their target site and replay only the suffix — bit-identical to
full replay.  ``--no-checkpoints`` disables snapshots entirely (perf
defaults them on; fig11/fig12 default off).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from . import EXPERIMENTS


#: CLI verbs that operate on an existing store instead of running anything.
STORE_COMMANDS = ("status", "resume", "report", "merge", "verify")

#: CLI verbs for the campaign service (see :mod:`repro.service`):
#: ``serve`` runs the daemon, ``submit`` posts one campaign (or runs it
#: in-process with ``--local``), ``watch`` tails a campaign's SSE stream.
SERVICE_COMMANDS = ("serve", "submit", "watch")

#: Experiments that accept ``--shards`` (campaign sweeps; the memoized
#: table experiments have no schedule to stripe).
SHARDABLE = ("fig11", "fig12", "perf", "vecdiff")

#: Campaign experiments whose cell set ``--benchmark`` can restrict.
BENCHMARK_FILTERED = ("fig11", "vecdiff")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", *STORE_COMMANDS, *SERVICE_COMMANDS],
    )
    parser.add_argument("--scale", choices=("smoke", "quick", "full"), default="quick")
    parser.add_argument(
        "--benchmark",
        action="append",
        help="restrict fig11/vecdiff to specific benchmarks (repeatable; "
        "for vecdiff, a base kernel like gen-map0 or a form workload name)",
    )
    parser.add_argument("--json-dir", type=Path, help="also dump JSON reports here")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for campaign experiments (bit-identical to 1)",
    )
    parser.add_argument(
        "--engine",
        choices=("direct", "instrumented", "compiled"),
        default=None,
        help="injection engine for campaign experiments (default: direct; "
        "all engines are bit-identical — 'instrumented' is VULFI's "
        "IR-splicing reference semantics, 'compiled' the threaded-code "
        "superblock engine; perf benchmarks every engine unless one is "
        "forced here)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="N",
        help="record a golden VM snapshot every N dynamic sites; faulty "
        "runs restore the nearest one before their target site "
        "(bit-identical prefix skipping; fig11/fig12 default off, perf "
        "defaults on)",
    )
    parser.add_argument(
        "--no-checkpoints",
        action="store_true",
        help="disable golden-run snapshots even where they default on (perf)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help="journal experiments into a durable campaign store at DIR "
        "(created if missing); also the target of status/resume/report",
    )
    parser.add_argument(
        "--abort-after",
        type=int,
        default=None,
        metavar="N",
        help="crash deliberately after N newly executed experiments "
        "(requires --store; exercises the resume machinery)",
    )
    parser.add_argument(
        "--shards",
        default=None,
        metavar="SPEC",
        help="partition the campaign schedule: 'i/N' runs stripe i into "
        "<store>/shard-i/ (one distributed worker); a bare N forks N such "
        "runs locally and merges them; '1' is the full-budget serial "
        "baseline the merged journal is byte-identical to (fig11/fig12 "
        "with --store; for perf, a bare count to sweep in shard_bench)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="output store directory for merge (default: <store>/merged)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output for status/report (the same schema "
        "the campaign service streams over SSE and serves at /v1/status)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="campaign service address"
    )
    parser.add_argument(
        "--port", type=int, default=8765, help="campaign service port"
    )
    parser.add_argument(
        "--max-concurrent",
        type=int,
        default=4,
        metavar="N",
        help="serve: campaigns executing at once (queued beyond that)",
    )
    parser.add_argument(
        "--workload", default=None, help="submit: registry workload name"
    )
    parser.add_argument(
        "--category", default="pure-data", help="submit: fault-site category"
    )
    parser.add_argument(
        "--target", default="avx", help="submit: ISA target (avx|sse)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="submit: campaign seed (default: the fig11 cell seed, so the "
        "journal matches a CLI fig11 run of the same cell)",
    )
    parser.add_argument("--tenant", default="cli", help="submit: tenant name")
    parser.add_argument(
        "--priority",
        type=int,
        default=1,
        help="submit: weighted-fair share under contention (1-16)",
    )
    parser.add_argument(
        "--local",
        action="store_true",
        help="submit: run the campaign in this process against --store "
        "(no daemon; the cold baseline the service benchmark compares to)",
    )
    parser.add_argument(
        "--campaign", default=None, metavar="KEY", help="watch: campaign key"
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="submit: stream the campaign's events after submitting",
    )
    args = parser.parse_args(argv)
    if args.no_checkpoints and args.checkpoint_interval is not None:
        parser.error("--no-checkpoints conflicts with --checkpoint-interval")
    if args.no_checkpoints and args.engine == "compiled":
        parser.error(
            "--engine compiled --no-checkpoints would silently fall "
            "faulty-run prefix skipping back to full replays (the compiled "
            "engine takes snapshots at superblock boundaries); drop "
            "--no-checkpoints or pick --engine direct"
        )
    if args.experiment in STORE_COMMANDS and args.store is None:
        parser.error(f"{args.experiment} requires --store DIR")
    if args.abort_after is not None and args.store is None:
        parser.error("--abort-after requires --store")

    if args.experiment in SERVICE_COMMANDS:
        if args.experiment == "serve" and args.store is None:
            parser.error("serve requires --store DIR")
        if args.experiment == "submit" and args.workload is None:
            parser.error("submit requires --workload NAME")
        if args.experiment == "submit" and args.local and args.store is None:
            parser.error("submit --local requires --store DIR")
        if args.experiment == "watch" and args.campaign is None:
            parser.error("watch requires --campaign KEY")
        if args.experiment == "serve":
            return _serve(args)
        if args.experiment == "submit":
            return _submit(args)
        return _watch(args)

    shards = None
    if args.shards is not None:
        from ..store import ShardSpec, StoreError, parse_shards

        if args.experiment not in SHARDABLE:
            parser.error(
                f"--shards applies to {', '.join(SHARDABLE)}, not "
                f"{args.experiment} (a resumed shard store remembers its "
                f"own stripe)"
            )
        try:
            shards = parse_shards(args.shards)
        except StoreError as exc:
            parser.error(str(exc))
        if args.experiment == "perf":
            if isinstance(shards, ShardSpec):
                parser.error(
                    "perf takes a bare shard count (--shards N) to sweep "
                    "in shard_bench, not a partition"
                )
        elif args.store is None:
            parser.error("--shards requires --store (shards are stores)")

    # merge / verify / sharded status never open (or create) a store in
    # this process — they inspect what shard runs left behind.
    if args.experiment == "merge":
        return _merge(args)
    if args.experiment == "verify":
        return _verify(args)
    if args.store is not None and args.experiment in (
        "status", "resume", "report"
    ):
        from ..store import is_shard_parent

        if is_shard_parent(args.store):
            if args.experiment == "status":
                from ..store import render_sharded_status

                print(render_sharded_status(args.store))
                return 0
            if args.experiment == "resume":
                return _resume_shard_parent(args)
            # report: the merged store is the serial-identical journal;
            # point at it if it exists, otherwise ask for a merge first.
            merged = args.store / "merged"
            if not (merged / "STORE").exists():
                print(
                    f"{args.store} holds unmerged shard stores; run "
                    f"`merge --store {args.store}` first, then report",
                    file=sys.stderr,
                )
                return 3
            args.store = merged

    # A bare --shards N>1 is the simulated cluster: each stripe opens its
    # own store inside a forked child, so no store opens here either.
    if isinstance(shards, int) and shards > 1 and args.experiment != "perf":
        return _run_cluster(args, shards)

    store = None
    shard_spec = None
    if args.store is not None:
        from ..store import CampaignStore, ShardSpec, shard_dir

        if isinstance(shards, ShardSpec):
            store = CampaignStore(shard_dir(args.store, shards.index))
            store.set_shard(shards)
            shard_spec = shards
        else:
            store = CampaignStore(args.store)
            if shards == 1 and args.experiment != "perf":
                store.set_shard(ShardSpec(0, 1))
            # A store that is one stripe of a sweep stays one: plain runs
            # and resumes pick the pinned spec back up.
            shard_spec = store.shard_spec()

    try:
        if args.experiment == "status":
            if args.json:
                import json as _json

                from ..service.protocol import status_payload

                print(_json.dumps(status_payload(store), indent=2))
            else:
                print(store.render_status())
            return 0
        if args.experiment == "report":
            return _report_from_store(store, args)
        if args.experiment == "resume":
            return _resume(store, args, shard=shard_spec)
        return _run_experiments(store, args, shard=shard_spec, shards=shards)
    finally:
        if store is not None:
            if shard_spec is not None:
                store.save_shard_state()
            store.close()


def _run_one(
    name: str, args, store=None, benchmarks=None, scale=None, engine=None,
    shard=None, shards=None,
):
    """Dispatch one experiment driver with the CLI's knobs."""
    mod = EXPERIMENTS[name]
    scale = scale or args.scale
    engine = engine if engine is not None else (args.engine or "direct")
    # fig11/fig12 default checkpoints off (None); perf defaults them on
    # and only needs an override when the user forced a value or none.
    interval = None if args.no_checkpoints else args.checkpoint_interval
    if name in BENCHMARK_FILTERED:
        return mod.run(
            scale, benchmarks=benchmarks, jobs=args.jobs, engine=engine,
            checkpoint_interval=interval, store=store,
            abort_after=args.abort_after, shard=shard,
        )
    if name == "fig12":
        return mod.run(
            scale, jobs=args.jobs, engine=engine, checkpoint_interval=interval,
            store=store, abort_after=args.abort_after, shard=shard,
        )
    if name == "perf":
        # None = benchmark both engines side by side; perf measures wall
        # clock, so it never records to or replays from a store.  A bare
        # --shards N narrows the shard-scaling sweep to (1, N).
        from .perf import SHARD_BENCH_COUNTS

        shard_counts = SHARD_BENCH_COUNTS
        if isinstance(shards, int):
            shard_counts = (1,) if shards == 1 else (1, shards)
        if args.no_checkpoints:
            return mod.run(
                scale, jobs=args.jobs, engine=args.engine,
                checkpoint_interval=None, shard_counts=shard_counts,
            )
        if args.checkpoint_interval is not None:
            return mod.run(
                scale, jobs=args.jobs, engine=args.engine,
                checkpoint_interval=args.checkpoint_interval,
                shard_counts=shard_counts,
            )
        return mod.run(
            scale, jobs=args.jobs, engine=args.engine,
            shard_counts=shard_counts,
        )
    if name == "ablations":
        return mod.run(scale, engine=engine, store=store)
    return mod.run(scale, store=store)


def _emit(name: str, report, args) -> None:
    print(EXPERIMENTS[name].render(report))
    if args.json_dir:
        args.json_dir.mkdir(parents=True, exist_ok=True)
        report.save(args.json_dir / f"{name}.json")


def _run_experiments(store, args, shard=None, shards=None) -> int:
    from ..store import CampaignAborted

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        benchmarks = args.benchmark if name in BENCHMARK_FILTERED else None
        try:
            report = _run_one(
                name, args, store=store, benchmarks=benchmarks,
                shard=shard if name in SHARDABLE else None,
                shards=shards,
            )
        except CampaignAborted as aborted:
            print(f"{name}: {aborted}", file=sys.stderr)
            print(
                f"resume with: python -m repro.experiments resume --store "
                f"{args.store}",
                file=sys.stderr,
            )
            return 3
        _emit(name, report, args)
        print(f"\n[{name} completed in {time.time() - t0:.1f}s at scale={args.scale}]\n")
    return 0


def _resume(store, args, shard=None) -> int:
    """Finish every incomplete cell the store has manifests for.

    A shard store resumes as the stripe it was pinned to (``shard.json``);
    ``--shards`` is never needed — or allowed — to resume one.
    """
    plans = store.resume_plans()
    if not plans:
        print(f"{store.root}: nothing to resume (empty store)")
        return 0
    for plan in plans:
        name = plan["experiment"]
        if name not in EXPERIMENTS:
            print(f"skipping unknown stored experiment {name!r}", file=sys.stderr)
            continue
        t0 = time.time()
        report = _run_one(
            name,
            args,
            store=store,
            benchmarks=plan["benchmarks"],
            scale=plan["scale"],
            engine=plan["engine"],
            shard=shard if name in SHARDABLE else None,
        )
        _emit(name, report, args)
        stripe = f" (stripe {shard.spec})" if shard is not None else ""
        print(
            f"\n[{name} resumed in {time.time() - t0:.1f}s at "
            f"scale={plan['scale']}{stripe}]\n"
        )
    return 0


def _resume_shard_parent(args) -> int:
    """Resume every ``shard-*/`` store under a sweep parent, in turn."""
    from ..store import CampaignStore, find_shard_dirs

    code = 0
    for path in find_shard_dirs(args.store):
        store = CampaignStore(path)
        try:
            code = max(code, _resume(store, args, shard=store.shard_spec()))
        finally:
            store.save_shard_state()
            store.close()
    if code == 0:
        print(
            f"all shards of {args.store} resumed — `merge --store "
            f"{args.store}` assembles the serial-identical journal."
        )
    return code


def _merge(args) -> int:
    """``merge``: reassemble shard journals into one serial store."""
    from ..store import StoreError, merge_shards

    try:
        report = merge_shards(args.store, out=args.out)
    except StoreError as exc:
        print(f"merge: {exc}", file=sys.stderr)
        return 3
    print(report.render())
    return 0


def _verify(args) -> int:
    """``verify``: integrity-check a store (or every shard of a sweep).

    Exit 0 when every journal checks out, 3 otherwise; never executes an
    experiment and never mutates the store.
    """
    from ..store import find_shard_dirs, is_shard_parent, verify_store

    if is_shard_parent(args.store):
        targets = find_shard_dirs(args.store)
        merged = Path(args.store) / "merged"
        if (merged / "STORE").exists():
            targets = [*targets, merged]
    else:
        targets = [args.store]
    ok = True
    for target in targets:
        report = verify_store(target)
        print(report.render())
        ok = ok and report.ok
    return 0 if ok else 3


def _run_cluster(args, count: int) -> int:
    """A bare ``--shards N``: fork N stripe runs, merge, rebuild, report."""
    from ..analysis.report import rebuild_report
    from ..core.cluster import run_sharded
    from ..errors import ReproError
    from ..store import CampaignStore

    name = args.experiment
    benchmarks = args.benchmark if name == "fig11" else None

    def worker(store, shard):
        _run_one(
            name, args, store=store, benchmarks=benchmarks, shard=shard
        )
        return dict(store.session_counters)

    t0 = time.time()
    try:
        result = run_sharded(args.store, count, worker)
    except ReproError as exc:
        print(f"cluster: {exc}", file=sys.stderr)
        return 3
    print(result.merge.render())
    print()
    merged = CampaignStore(result.merged_store)
    try:
        report = rebuild_report(merged, name)
    finally:
        merged.close()
    _emit(name, report, args)
    print(
        f"\n[{name} completed on {count} simulated hosts in "
        f"{time.time() - t0:.1f}s (slowest shard "
        f"{max(result.shard_seconds):.1f}s, merge "
        f"{result.merge_seconds:.2f}s) at scale={args.scale}; merged store: "
        f"{result.merged_store}]\n"
    )
    return 0


def _report_from_store(store, args) -> int:
    from ..analysis.report import rebuild_report

    names = store.stored_experiments()
    if not names:
        print(f"{store.root}: empty store, nothing to report")
        return 0
    for name in names:
        if name not in EXPERIMENTS:
            print(f"skipping unknown stored experiment {name!r}", file=sys.stderr)
            continue
        report = rebuild_report(store, name)
        if args.json:
            # Exactly the daemon's /v1/report?format=json body: the CLI
            # and the service are byte-interchangeable report sources.
            print(report.to_json())
            if args.json_dir:
                args.json_dir.mkdir(parents=True, exist_ok=True)
                report.save(args.json_dir / f"{name}.json")
        else:
            _emit(name, report, args)
            print()
    return 0


# -- campaign service verbs ----------------------------------------------------


def _serve(args) -> int:
    """``serve``: run the multi-tenant campaign daemon until interrupted."""
    from ..service import CampaignService

    service = CampaignService(
        args.store,
        host=args.host,
        port=args.port,
        jobs=args.jobs if args.jobs > 1 else 0,
        max_concurrent=args.max_concurrent,
    )
    service.serve_forever()
    return 0


def _submission_payload(args) -> dict:
    payload = {
        "workload": args.workload,
        "target": args.target,
        "category": args.category,
        "engine": args.engine or "direct",
        "scale": args.scale,
        "tenant": args.tenant,
        "priority": args.priority,
    }
    if args.seed is not None:
        payload["seed"] = args.seed
    return payload


def _submit(args) -> int:
    import json as _json

    if args.local:
        return _submit_local(args)
    from ..service import ServiceClient, ServiceUnavailable

    client = ServiceClient(args.host, args.port, tenant=args.tenant)
    try:
        ack = client.submit(**_submission_payload(args))
    except (ServiceUnavailable, ValueError) as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 3
    print(_json.dumps(ack, indent=2))
    if args.watch and not ack.get("cached"):
        return _stream_events(client, ack["campaign"])
    return 0


def _submit_local(args) -> int:
    """``submit --local``: one campaign, this process, no daemon.

    The service benchmark's cold baseline: pays interpreter start-up,
    compilation, and an empty golden cache on every invocation — exactly
    what a warm daemon amortises away.
    """
    from ..service.protocol import BadSubmission, normalize_submission
    from ..service.workers import EngineCache, execute_submission
    from ..store import CampaignStore

    try:
        sub = normalize_submission(_submission_payload(args))
    except BadSubmission as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 3
    store = CampaignStore(args.store)
    try:
        summary = execute_submission(
            store, sub, pool=None, engines=EngineCache(), emit=lambda e: None
        )
    finally:
        store.close()
    totals = summary.totals
    print(
        f"{sub.workload}/{sub.target}/{sub.category}: {totals.total} "
        f"experiments (sdc={totals.sdc} benign={totals.benign} "
        f"crash={totals.crash}), converged={summary.converged}"
    )
    return 0


def _watch(args) -> int:
    from ..service import ServiceClient

    client = ServiceClient(args.host, args.port, tenant=args.tenant)
    return _stream_events(client, args.campaign)


def _stream_events(client, key: str) -> int:
    import json as _json

    from ..service import ServiceUnavailable

    try:
        for name, payload in client.events(key):
            print(_json.dumps({"event": name, **payload}))
            if name == "failed":
                return 3
    except ServiceUnavailable as exc:
        print(f"watch: {exc}", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
