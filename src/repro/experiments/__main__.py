"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments table1 [--scale smoke|quick|full]
    python -m repro.experiments fig10
    python -m repro.experiments fig11 [--scale full] [--benchmark stencil ...]
    python -m repro.experiments fig12 [--scale full]
    python -m repro.experiments perf
    python -m repro.experiments all [--json-dir results/]

``--jobs N`` fans the fault-injection campaigns (fig11/fig12/perf) out over
N worker processes; results are bit-identical to ``--jobs 1``.

``--engine direct|instrumented|compiled`` selects the injection engine
(fig11/fig12/perf/ablations).  All engines produce bit-identical
experiment streams; ``direct`` (the default) folds fault sites into the
decoded interpreter, ``instrumented`` splices VULFI's ``injectFault<Ty>Ty``
calls into a cloned module, and ``compiled`` exec-compiles superblock
chains into specialized closures (fastest; checkpoints hook at superblock
boundaries, so it refuses ``--no-checkpoints``).  ``perf`` benchmarks all
engines side by side unless one is forced.

``--checkpoint-interval N`` records a golden VM snapshot every N dynamic
sites (fig11/fig12/perf); faulty runs then restore the nearest snapshot
before their target site and replay only the suffix — bit-identical to
full replay.  ``--no-checkpoints`` disables snapshots entirely (perf
defaults them on; fig11/fig12 default off).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from . import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    parser.add_argument("--scale", choices=("smoke", "quick", "full"), default="quick")
    parser.add_argument(
        "--benchmark",
        action="append",
        help="restrict fig11 to specific benchmarks (repeatable)",
    )
    parser.add_argument("--json-dir", type=Path, help="also dump JSON reports here")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for campaign experiments (bit-identical to 1)",
    )
    parser.add_argument(
        "--engine",
        choices=("direct", "instrumented", "compiled"),
        default=None,
        help="injection engine for campaign experiments (default: direct; "
        "all engines are bit-identical — 'instrumented' is VULFI's "
        "IR-splicing reference semantics, 'compiled' the threaded-code "
        "superblock engine; perf benchmarks every engine unless one is "
        "forced here)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="N",
        help="record a golden VM snapshot every N dynamic sites; faulty "
        "runs restore the nearest one before their target site "
        "(bit-identical prefix skipping; fig11/fig12 default off, perf "
        "defaults on)",
    )
    parser.add_argument(
        "--no-checkpoints",
        action="store_true",
        help="disable golden-run snapshots even where they default on (perf)",
    )
    args = parser.parse_args(argv)
    if args.no_checkpoints and args.checkpoint_interval is not None:
        parser.error("--no-checkpoints conflicts with --checkpoint-interval")
    if args.no_checkpoints and args.engine == "compiled":
        parser.error(
            "--engine compiled --no-checkpoints would silently fall "
            "faulty-run prefix skipping back to full replays (the compiled "
            "engine takes snapshots at superblock boundaries); drop "
            "--no-checkpoints or pick --engine direct"
        )

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        mod = EXPERIMENTS[name]
        t0 = time.time()
        engine = args.engine or "direct"
        # fig11/fig12 default checkpoints off (None); perf defaults them on
        # and only needs an override when the user forced a value or none.
        interval = None if args.no_checkpoints else args.checkpoint_interval
        if name == "fig11":
            report = mod.run(
                args.scale, benchmarks=args.benchmark, jobs=args.jobs,
                engine=engine, checkpoint_interval=interval,
            )
        elif name == "fig12":
            report = mod.run(
                args.scale, jobs=args.jobs, engine=engine,
                checkpoint_interval=interval,
            )
        elif name == "perf":
            # None = benchmark both engines side by side.
            if args.no_checkpoints:
                report = mod.run(
                    args.scale, jobs=args.jobs, engine=args.engine,
                    checkpoint_interval=None,
                )
            elif args.checkpoint_interval is not None:
                report = mod.run(
                    args.scale, jobs=args.jobs, engine=args.engine,
                    checkpoint_interval=args.checkpoint_interval,
                )
            else:
                report = mod.run(args.scale, jobs=args.jobs, engine=args.engine)
        elif name == "ablations":
            report = mod.run(args.scale, engine=engine)
        else:
            report = mod.run(args.scale)
        print(mod.render(report))
        print(f"\n[{name} completed in {time.time() - t0:.1f}s at scale={args.scale}]\n")
        if args.json_dir:
            args.json_dir.mkdir(parents=True, exist_ok=True)
            report.save(args.json_dir / f"{name}.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
