"""Per-figure experiment regeneration drivers (Table I, Figs 10-12)."""

from . import ablations, bitpos, fig10, fig11, fig12, perf, table1, vecdiff
from .common import CATEGORIES, ExperimentReport, SCALES, TARGETS, cell_seed

EXPERIMENTS = {
    "table1": table1,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "ablations": ablations,
    "bitpos": bitpos,
    "perf": perf,
    "vecdiff": vecdiff,
}

__all__ = [
    "CATEGORIES",
    "ExperimentReport",
    "SCALES",
    "TARGETS",
    "cell_seed",
    "EXPERIMENTS",
    "ablations",
    "bitpos",
    "fig10",
    "fig11",
    "fig12",
    "perf",
    "table1",
    "vecdiff",
]
