"""Table I: benchmark inventory with average dynamic instruction counts.

For every benchmark and target ISA, run several golden (fault-free)
executions over inputs drawn from the predefined input space and report the
mean dynamic instruction count.  The paper's absolute counts (its inputs
are 30-3000x larger — Table I runs into the hundreds of millions) are shown
alongside for shape comparison: the *ordering* of benchmarks by cost and
the AVX-vs-SSE relationship are the reproducible signal.
"""

from __future__ import annotations

from random import Random

import numpy as np

from ..analysis.report import render_table
from ..vm.interpreter import Interpreter
from ..workloads.registry import benchmark_workloads
from .common import ExperimentReport, TABLE1_SAMPLES, TARGETS, cell_seed

#: Paper Table I, "Average Dynamic Instruction Count (in millions)".
PAPER_COUNTS_MILLIONS = {
    ("fluidanimate", "avx"): 170.8,
    ("fluidanimate", "sse"): 199.7,
    ("swaptions", "avx"): 19.7,
    ("swaptions", "sse"): 16.0,
    ("blackscholes", "avx"): 2.0,
    ("blackscholes", "sse"): 1.9,
    ("sorting", "avx"): 5.9,
    ("sorting", "sse"): 5.4,
    ("stencil", "avx"): 57.4,
    ("stencil", "sse"): 69.3,
    ("raytracing", "avx"): 69.6,
    ("raytracing", "sse"): 68.8,
    ("chebyshev", "avx"): 1.8,
    ("chebyshev", "sse"): 0.8,
    ("jacobi", "avx"): 52.0,
    ("jacobi", "sse"): 44.5,
    ("cg", "avx"): 45.6,
    ("cg", "sse"): 43.6,
}


HEADERS = [
    "benchmark",
    "suite",
    "language",
    "target",
    "avg dynamic instrs",
    "vector frac",
    "paper (millions)",
    "test input",
]


def run(scale: str = "quick", store=None) -> ExperimentReport:
    samples = TABLE1_SAMPLES[scale]
    report = ExperimentReport(name="table1", scale=scale, headers=list(HEADERS))
    for w in benchmark_workloads():
        for target in TARGETS:
            module = w.compile(target)
            seed = cell_seed("table1", w.name, target)
            cell = {"benchmark": w.name, "target": target}
            key = None
            if store is not None:
                from ..store import cell_key, module_fingerprint

                key = cell_key(
                    {
                        "experiment": "table1",
                        **cell,
                        "module": module_fingerprint(module),
                        "seed": seed,
                        "samples": samples,
                    }
                )
                cached = store.lookup_cell(key)
                if cached is not None:
                    report.rows.extend(cached["rows"])
                    continue
            rng = Random(seed)
            totals, vecs = [], []
            for _ in range(samples):
                runner = w.make_runner(w.sample_input(rng))
                vm = Interpreter(module)
                runner(vm)
                totals.append(vm.stats.total)
                vecs.append(vm.stats.vector / max(vm.stats.total, 1))
            rows = [
                {
                    "benchmark": w.name,
                    "suite": w.suite,
                    "language": w.language,
                    "target": target,
                    "avg_dynamic_instructions": float(np.mean(totals)),
                    "vector_fraction": float(np.mean(vecs)),
                    "paper_millions": PAPER_COUNTS_MILLIONS.get((w.name, target)),
                    "input": w.input_summary,
                }
            ]
            if store is not None:
                store.record_cell(key, "table1", scale, cell, rows)
            report.rows.extend(rows)
    report.notes.append(
        "Inputs are scaled down ~30-3000x from Table I (pure-Python "
        "interpreter); compare ordering and AVX/SSE ratios, not magnitudes."
    )
    return report


def render(report: ExperimentReport) -> str:
    rows = [
        [
            r["benchmark"],
            r["suite"],
            r["language"],
            r["target"].upper(),
            f"{r['avg_dynamic_instructions']:.0f}",
            f"{100 * r['vector_fraction']:.0f}%",
            r["paper_millions"],
            r["input"],
        ]
        for r in report.rows
    ]
    return render_table(report.headers, rows, title="Table I — benchmarks and dynamic instruction counts")
