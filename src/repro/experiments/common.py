"""Shared experiment machinery: scales, seeds, result containers.

Every experiment is deterministic given (scale, seed): per-cell RNGs are
derived from a stable hash of the cell coordinates, so partial reruns
reproduce the same numbers.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..core.campaign import CampaignConfig
from ..core.injector import FaultInjector
from ..core.parallel import WorkerContext
from ..workloads.registry import Workload, build_runner

#: Experiment scale presets.  The paper runs 20 campaigns x 100 experiments
#: per cell (108,000 total injections for Fig. 11); the reduced presets keep
#: the estimator identical and shrink only the sample budget.
SCALES: dict[str, CampaignConfig] = {
    "smoke": CampaignConfig(experiments_per_campaign=8, max_campaigns=1, min_campaigns=1),
    "quick": CampaignConfig(experiments_per_campaign=25, max_campaigns=3, min_campaigns=2),
    "full": CampaignConfig(experiments_per_campaign=100, max_campaigns=20, min_campaigns=3),
}

#: Per-category experiment counts for the Fig. 12 micro-benchmark study
#: (the paper uses 2000 per micro-benchmark per category).
FIG12_EXPERIMENTS = {"smoke": 40, "quick": 150, "full": 2000}

#: Golden-run samples per benchmark for Table I's average dynamic counts.
TABLE1_SAMPLES = {"smoke": 2, "quick": 5, "full": 20}

TARGETS = ("avx", "sse")
CATEGORIES = ("pure-data", "control", "address")

BASE_SEED = 20160516  # the venue's year+month, fixed once


def cell_seed(*coords) -> int:
    """A stable 32-bit seed for one experiment cell."""
    text = ":".join(str(c) for c in (BASE_SEED, *coords))
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:4], "big")


def campaign_worker_context(
    injector: FaultInjector, workload: Workload, with_detectors: bool = False
) -> WorkerContext:
    """Build the picklable context for running ``--jobs > 1`` campaigns.

    Ships the injector's pristine-module payload plus a by-name runner
    builder; with ``with_detectors`` each worker also instantiates its own
    detector bindings factory (the factory itself is a closure and cannot
    travel pickled).
    """
    maker = None
    if with_detectors:
        from ..detectors.runtime import detector_bindings_factory

        maker = functools.partial(detector_bindings_factory)
    return WorkerContext(
        injector=injector.worker_payload(),
        make_runner=functools.partial(build_runner, workload.name),
        bindings_factory_maker=maker,
    )


@dataclass
class ExperimentReport:
    """A rendered experiment: table text plus machine-readable rows."""

    name: str
    scale: str
    headers: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, default=str)

    def save(self, path: str | Path) -> None:
        """Write the report atomically: a crash mid-save never leaves a
        half-written ``results/*.json`` behind (the reader sees either the
        old file or the complete new one)."""
        path = Path(path)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(self.to_json())
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
