"""Fig. 11: SDC / Benign / Crash rates per benchmark x site category x ISA.

The paper's headline experiment: statistically converged fault-injection
campaigns for all nine benchmarks under pure-data, control, and address
site selection, on AVX and SSE (108,000 injections at full scale).

Expected shape (paper §IV-D): Stencil and Blackscholes among the highest
SDC rates; Swaptions and Conjugate Gradient the most resilient; the address
category produces the most crashes; for Chebyshev the address-category SDC
rate is the highest of its three categories.
"""

from __future__ import annotations

from dataclasses import asdict

from ..analysis.report import pct, render_table
from ..core.campaign import CampaignConfig, run_campaigns
from ..core.injector import FaultInjector
from ..core.parallel import SweepPool
from ..workloads.registry import Workload, benchmark_workloads
from .common import (
    CATEGORIES,
    ExperimentReport,
    SCALES,
    TARGETS,
    campaign_worker_context,
    cell_seed,
)

HEADERS = ["benchmark", "target", "category", "n", "SDC", "benign", "crash", "±moe"]


def cell_recorder(
    store,
    workload: Workload,
    target: str,
    category: str,
    scale: str,
    config: CampaignConfig,
    injector: FaultInjector,
    abort_after: int | None = None,
):
    """One cell's store recorder (manifested eagerly — see ``store.recorder``)."""
    return store.recorder(
        experiment="fig11",
        cell={"benchmark": workload.name, "target": target, "category": category},
        scale=scale,
        injector=injector,
        seed=cell_seed("fig11", workload.name, target, category),
        config=asdict(config),
        planned=config.max_campaigns * config.experiments_per_campaign,
        extras={"static_sites": len(injector.sites)},
        abort_after=abort_after,
    )


def run_cell(
    workload: Workload,
    target: str,
    category: str,
    config: CampaignConfig,
    step_limit: int = 2_000_000,
    jobs: int = 1,
    engine: str = "direct",
    checkpoint_interval: int | None = None,
    pool=None,
    injector: FaultInjector | None = None,
    scale: str = "custom",
    store=None,
    recorder=None,
    abort_after: int | None = None,
    shard=None,
) -> dict:
    """One Fig.-11 cell: campaigns for (benchmark, ISA, site category).

    ``pool``/``injector``/``recorder`` are supplied by :func:`run` when a
    whole sweep shares one :class:`~repro.core.parallel.SweepPool` and/or a
    :class:`~repro.store.CampaignStore`; standalone callers leave them unset
    and get a per-cell pool (``jobs > 1``), serial runs, and — with
    ``store`` — a per-cell recorder.  ``shard`` (a :class:`~repro.store.
    ShardSpec`) restricts execution to one schedule stripe; see
    :mod:`repro.store.shard`.
    """
    if injector is None:
        module = workload.compile(target)
        injector = FaultInjector(
            module, category=category, step_limit=step_limit, engine=engine,
            checkpoint_interval=checkpoint_interval,
        )
    if recorder is None and store is not None:
        recorder = cell_recorder(
            store, workload, target, category, scale, config, injector,
            abort_after=abort_after,
        )
    worker_context = (
        campaign_worker_context(injector, workload)
        if jobs > 1 and pool is None
        else None
    )
    summary = run_campaigns(
        injector,
        workload.runner_factory(),
        config,
        seed=cell_seed("fig11", workload.name, target, category),
        jobs=jobs,
        worker_context=worker_context,
        pool=pool,
        recorder=recorder,
        shard=shard,
    )
    totals = summary.totals
    return {
        "benchmark": workload.name,
        "target": target,
        "category": category,
        "experiments": totals.total,
        "campaigns": summary.campaigns_run,
        "sdc": totals.rate("sdc"),
        "benign": totals.rate("benign"),
        "crash": totals.rate("crash"),
        "sdc_moe": summary.sdc_rate.margin,
        "converged": summary.converged,
        "crash_kinds": dict(totals.crash_kinds),
        "static_sites": len(injector.sites),
    }


def run(
    scale: str = "quick",
    benchmarks: list[str] | None = None,
    jobs: int = 1,
    engine: str = "direct",
    checkpoint_interval: int | None = None,
    store=None,
    abort_after: int | None = None,
    shard=None,
) -> ExperimentReport:
    if shard is not None and store is None:
        raise ValueError("fig11.run(shard=...) requires a store")
    config = SCALES[scale]
    report = ExperimentReport(name="fig11", scale=scale, headers=list(HEADERS))
    cells = [
        (w, target, category)
        for w in benchmark_workloads()
        if benchmarks is None or w.name in benchmarks
        for target in TARGETS
        for category in CATEGORIES
    ]
    # With --jobs, every cell's engine is built in the parent first and one
    # SweepPool serves the whole sweep: the workers fork once with all cell
    # contexts instead of re-spawning (and re-pickling modules) per cell.
    # With --store, injectors are likewise built upfront so every cell's
    # manifest lands before the first injection — a crash mid-sweep leaves a
    # complete inventory for `resume`.
    injectors: dict = {}
    recorders: dict = {}
    pool: SweepPool | None = None
    if jobs > 1 or store is not None:
        contexts = {}
        for w, target, category in cells:
            key = (w.name, target, category)
            injectors[key] = FaultInjector(
                w.compile(target),
                category=category,
                step_limit=2_000_000,
                engine=engine,
                checkpoint_interval=checkpoint_interval,
            )
            contexts[key] = campaign_worker_context(injectors[key], w)
            if store is not None:
                recorders[key] = cell_recorder(
                    store, w, target, category, scale, config,
                    injectors[key], abort_after=abort_after,
                )
        if jobs > 1:
            pool = SweepPool(jobs, contexts)
    try:
        for w, target, category in cells:
            key = (w.name, target, category)
            report.rows.append(
                run_cell(
                    w,
                    target,
                    category,
                    config,
                    jobs=jobs,
                    engine=engine,
                    checkpoint_interval=checkpoint_interval,
                    pool=pool.cell(key) if pool is not None else None,
                    injector=injectors.get(key),
                    scale=scale,
                    recorder=recorders.get(key),
                    shard=shard,
                )
            )
    finally:
        if pool is not None:
            pool.close()
        if store is not None:
            store.flush()
    report.notes.append(
        "Paper shape: Stencil/Blackscholes highest SDC; Swaptions/CG most "
        "resilient; address faults crash the most; Chebyshev's address SDC "
        "is its highest category."
    )
    return report


def render(report: ExperimentReport) -> str:
    rows = [
        [
            r["benchmark"],
            r["target"].upper(),
            r["category"],
            r["experiments"],
            pct(r["sdc"]),
            pct(r["benign"]),
            pct(r["crash"]),
            pct(r["sdc_moe"]),
        ]
        for r in report.rows
    ]
    out = render_table(
        report.headers, rows, title="Fig. 11 — fault-injection outcomes per benchmark"
    )
    return out + "\n\n" + "\n".join(report.notes)
