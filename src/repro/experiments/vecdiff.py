"""vecdiff: auto-vectorized vs hand-vectorized resiliency, side by side.

A scenario axis the paper never had: both forms of one generated kernel
(:mod:`repro.workloads.generated`) compute bit-identical golden outputs,
so any difference in their fault-outcome distributions is attributable to
the *vectorization strategy* — the predicated select chains, lane-mask
insertelement towers, and epilogue structure the auto-vectorizer emits
versus the frontend-style masked stride loop a human would write.

Cells are keyed like fig11's (``benchmark`` carries the form workload's
registry name, e.g. ``gen-map0`` / ``gen-map0-auto``), so store resume,
sharding, merge, and the campaign service treat vecdiff campaigns exactly
like any other.
"""

from __future__ import annotations

from dataclasses import asdict

from ..analysis.report import pct, render_table
from ..core.campaign import CampaignConfig, run_campaigns
from ..core.injector import FaultInjector
from ..core.parallel import SweepPool
from ..workloads.generated import GeneratedWorkload, form_pairs
from ..workloads.registry import Workload
from .common import (
    CATEGORIES,
    ExperimentReport,
    SCALES,
    TARGETS,
    campaign_worker_context,
    cell_seed,
)

HEADERS = [
    "kernel", "form", "target", "category", "n", "SDC", "benign", "crash",
    "±moe",
]

#: The forms a vecdiff sweep compares (scalar is the common ancestor, not
#: a subject — the paper's question is vec strategy vs vec strategy).
COMPARED_FORMS = ("handvec", "auto")


def _cells(benchmarks: list[str] | None) -> list[Workload]:
    """The form workloads of every (default-seed) recipe, filtered by
    ``benchmarks`` — names match either the base kernel or a form."""
    out = []
    for base, hand, auto in form_pairs():
        for w in (hand, auto):
            if benchmarks is None or base in benchmarks or w.name in benchmarks:
                out.append(w)
    return out


def cell_recorder(
    store,
    workload: GeneratedWorkload,
    target: str,
    category: str,
    scale: str,
    config: CampaignConfig,
    injector: FaultInjector,
    abort_after: int | None = None,
):
    return store.recorder(
        experiment="vecdiff",
        cell={
            "benchmark": workload.name,
            "kernel": f"gen-{workload.shape}{workload.seed}",
            "form": workload.form,
            "target": target,
            "category": category,
        },
        scale=scale,
        injector=injector,
        seed=cell_seed("vecdiff", workload.name, target, category),
        config=asdict(config),
        planned=config.max_campaigns * config.experiments_per_campaign,
        extras={"static_sites": len(injector.sites)},
        abort_after=abort_after,
    )


def run_cell(
    workload: GeneratedWorkload,
    target: str,
    category: str,
    config: CampaignConfig,
    step_limit: int = 2_000_000,
    jobs: int = 1,
    engine: str = "direct",
    checkpoint_interval: int | None = None,
    pool=None,
    injector: FaultInjector | None = None,
    scale: str = "custom",
    store=None,
    recorder=None,
    abort_after: int | None = None,
    shard=None,
) -> dict:
    """One vecdiff cell: campaigns for (form workload, ISA, site category)."""
    if injector is None:
        module = workload.compile(target)
        injector = FaultInjector(
            module, category=category, step_limit=step_limit, engine=engine,
            checkpoint_interval=checkpoint_interval,
        )
    if recorder is None and store is not None:
        recorder = cell_recorder(
            store, workload, target, category, scale, config,
            injector, abort_after=abort_after,
        )
    worker_context = (
        campaign_worker_context(injector, workload)
        if jobs > 1 and pool is None
        else None
    )
    summary = run_campaigns(
        injector,
        workload.runner_factory(),
        config,
        seed=cell_seed("vecdiff", workload.name, target, category),
        jobs=jobs,
        worker_context=worker_context,
        pool=pool,
        recorder=recorder,
        shard=shard,
    )
    totals = summary.totals
    return {
        "benchmark": workload.name,
        "kernel": f"gen-{workload.shape}{workload.seed}",
        "form": workload.form,
        "target": target,
        "category": category,
        "experiments": totals.total,
        "campaigns": summary.campaigns_run,
        "sdc": totals.rate("sdc"),
        "benign": totals.rate("benign"),
        "crash": totals.rate("crash"),
        "sdc_moe": summary.sdc_rate.margin,
        "converged": summary.converged,
        "crash_kinds": dict(totals.crash_kinds),
        "static_sites": len(injector.sites),
    }


def run(
    scale: str = "quick",
    benchmarks: list[str] | None = None,
    jobs: int = 1,
    engine: str = "direct",
    checkpoint_interval: int | None = None,
    store=None,
    abort_after: int | None = None,
    shard=None,
) -> ExperimentReport:
    if shard is not None and store is None:
        raise ValueError("vecdiff.run(shard=...) requires a store")
    config = SCALES[scale]
    report = ExperimentReport(name="vecdiff", scale=scale, headers=list(HEADERS))
    cells = [
        (w, target, category)
        for w in _cells(benchmarks)
        for target in TARGETS
        for category in CATEGORIES
    ]
    # Mirrors fig11: with --jobs or --store, every injector is built in the
    # parent upfront (one SweepPool for the sweep; manifests land before
    # the first injection so a crash leaves a resumable inventory).
    injectors: dict = {}
    recorders: dict = {}
    pool: SweepPool | None = None
    if jobs > 1 or store is not None:
        contexts = {}
        for w, target, category in cells:
            key = (w.name, target, category)
            injectors[key] = FaultInjector(
                w.compile(target),
                category=category,
                step_limit=2_000_000,
                engine=engine,
                checkpoint_interval=checkpoint_interval,
            )
            contexts[key] = campaign_worker_context(injectors[key], w)
            if store is not None:
                recorders[key] = cell_recorder(
                    store, w, target, category, scale, config,
                    injectors[key], abort_after=abort_after,
                )
        if jobs > 1:
            pool = SweepPool(jobs, contexts)
    try:
        for w, target, category in cells:
            key = (w.name, target, category)
            report.rows.append(
                run_cell(
                    w,
                    target,
                    category,
                    config,
                    jobs=jobs,
                    engine=engine,
                    checkpoint_interval=checkpoint_interval,
                    pool=pool.cell(key) if pool is not None else None,
                    injector=injectors.get(key),
                    scale=scale,
                    recorder=recorders.get(key),
                    shard=shard,
                )
            )
    finally:
        if pool is not None:
            pool.close()
        if store is not None:
            store.flush()
    report.notes.append(
        "Same recipe, same golden outputs: outcome deltas between the "
        "handvec and auto rows measure the vectorization strategy alone."
    )
    return report


def render(report: ExperimentReport) -> str:
    rows = [
        [
            r["kernel"],
            r["form"],
            r["target"].upper(),
            r["category"],
            r["experiments"],
            pct(r["sdc"]),
            pct(r["benign"]),
            pct(r["crash"]),
            pct(r["sdc_moe"]),
        ]
        for r in sorted(
            report.rows,
            key=lambda r: (r["kernel"], r["target"], r["category"], r["form"]),
        )
    ]
    out = render_table(
        report.headers, rows,
        title="vecdiff — auto-vec vs hand-vec fault-injection outcomes",
    )
    deltas = _sdc_deltas(report.rows)
    if deltas:
        worst = max(deltas, key=lambda d: abs(d[1]))
        out += (
            f"\n\nmean |SDC(auto) - SDC(handvec)| over {len(deltas)} "
            f"comparable cells: {pct(sum(abs(d) for _, d in deltas) / len(deltas))}"
            f"; largest gap: {worst[0]} ({pct(worst[1])})"
        )
    return out + "\n\n" + "\n".join(report.notes)


def _sdc_deltas(rows: list[dict]) -> list[tuple[str, float]]:
    """(cell-label, SDC(auto)-SDC(handvec)) for every fully-paired cell."""
    by_key: dict[tuple, dict[str, float]] = {}
    for r in rows:
        key = (r["kernel"], r["target"], r["category"])
        by_key.setdefault(key, {})[r["form"]] = r["sdc"]
    out = []
    for (kernel, target, category), forms in sorted(by_key.items()):
        if set(COMPARED_FORMS) <= set(forms):
            out.append(
                (
                    f"{kernel}/{target}/{category}",
                    forms["auto"] - forms["handvec"],
                )
            )
    return out
