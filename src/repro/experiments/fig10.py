"""Fig. 10: composition of scalar vs vector instructions per fault-site
category, per benchmark, per ISA.

Pure static analysis (no execution): enumerate fault sites, classify them,
and count how many of the hosting instructions are vector instructions.
The paper's headline numbers: vector instructions average 67% of pure-data
sites and 43% of control sites across the nine benchmarks, while address
sites skew scalar (address arithmetic happens on scalar pointers that are
cast to vectors on demand).
"""

from __future__ import annotations

import numpy as np

from ..analysis.instmix import instruction_mix
from ..analysis.report import pct, render_table
from ..workloads.registry import benchmark_workloads
from .common import CATEGORIES, ExperimentReport, TARGETS


HEADERS = ["benchmark", "target", "category", "scalar", "vector", "vector %"]


def run(scale: str = "quick", store=None) -> ExperimentReport:
    report = ExperimentReport(name="fig10", scale=scale, headers=list(HEADERS))
    for w in benchmark_workloads():
        for target in TARGETS:
            module = w.compile(target)
            cell = {"benchmark": w.name, "target": target}
            key = None
            if store is not None:
                from ..store import cell_key, module_fingerprint

                key = cell_key(
                    {
                        "experiment": "fig10",
                        **cell,
                        "module": module_fingerprint(module),
                    }
                )
                cached = store.lookup_cell(key)
                if cached is not None:
                    report.rows.extend(cached["rows"])
                    continue
            mix = instruction_mix(module)
            rows = []
            for cat in CATEGORIES:
                entry = mix[cat]
                rows.append(
                    {
                        "benchmark": w.name,
                        "target": target,
                        "category": cat,
                        "scalar": entry.scalar,
                        "vector": entry.vector,
                        "vector_fraction": entry.vector_fraction,
                    }
                )
            if store is not None:
                store.record_cell(key, "fig10", scale, cell, rows)
            report.rows.extend(rows)
    # Cross-benchmark averages, the numbers the paper quotes in prose.
    for cat in CATEGORIES:
        fracs = [
            r["vector_fraction"]
            for r in report.rows
            if r["category"] == cat and r["vector_fraction"] == r["vector_fraction"]
        ]
        report.notes.append(
            f"average vector fraction, {cat}: {100 * float(np.mean(fracs)):.0f}% "
            f"(paper: pure-data 67%, control 43%, address low)"
        )
    return report


def render(report: ExperimentReport) -> str:
    rows = [
        [
            r["benchmark"],
            r["target"].upper(),
            r["category"],
            r["scalar"],
            r["vector"],
            pct(r["vector_fraction"]),
        ]
        for r in report.rows
    ]
    out = render_table(
        report.headers, rows, title="Fig. 10 — scalar/vector instruction mix per fault-site category"
    )
    return out + "\n\n" + "\n".join(report.notes)
