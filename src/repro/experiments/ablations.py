"""Ablation studies for the design choices DESIGN.md calls out.

Not a paper figure — these quantify *why* two of VULFI's design decisions
matter, using the same campaign machinery:

* **mask awareness** (§II-D): run the Fig.-12-style study with the
  execution-mask decoding disabled (every lane treated as active) and
  compare dynamic-site counts and outcome rates;
* **detector placement** (§III-A): measure the invariant detector's
  dynamic-instruction overhead when checked per iteration instead of only
  upon loop exit.
"""

from __future__ import annotations

from random import Random

import numpy as np

from ..analysis.report import pct, render_table
from ..core.campaign import CampaignStats
from ..core.injector import FaultInjector
from ..detectors.foreach_invariants import insert_foreach_detectors
from ..detectors.runtime import DetectorRuntime
from ..frontend.codegen import generate_module
from ..frontend.parser import parse_source
from ..frontend.sema import analyze
from ..frontend.target import AVX
from ..passes.manager import optimize
from ..vm.interpreter import Interpreter
from ..workloads.registry import micro_workloads
from .common import CATEGORIES, ExperimentReport, FIG12_EXPERIMENTS, cell_seed


def _mask_ablation_rows(
    scale: str, engine: str = "direct", store=None
) -> list[dict]:
    experiments = max(FIG12_EXPERIMENTS[scale] // 4, 20)
    rows = []
    for w in micro_workloads():
        module = w.compile("avx")
        for respect in (True, False):
            key = None
            if store is not None:
                from ..store import cell_key, module_fingerprint

                key = cell_key(
                    {
                        "experiment": "ablations",
                        "study": "mask-awareness",
                        "benchmark": w.name,
                        "respect_masks": respect,
                        "engine": engine,
                        "module": module_fingerprint(module),
                        "experiments": experiments,
                        "seed": cell_seed("ablation-mask", w.name, respect),
                    }
                )
                cached = store.lookup_cell(key)
                if cached is not None:
                    rows.extend(cached["rows"])
                    continue
            injector = FaultInjector(
                module, category="pure-data", respect_masks=respect, engine=engine
            )
            # Site population measured on one fixed reference input so the
            # aware/unaware columns are directly comparable.
            dynamic_sites = injector.golden(w.reference_runner(0)).dynamic_sites
            rng = Random(cell_seed("ablation-mask", w.name, respect))
            stats = CampaignStats()
            for _ in range(experiments):
                runner = w.make_runner(w.sample_input(rng))
                result = injector.experiment(runner, rng)
                stats.add(result)
            cell_rows = [
                {
                    "study": "mask-awareness",
                    "benchmark": w.name,
                    "variant": "mask-aware" if respect else "mask-unaware",
                    "experiments": stats.total,
                    "dynamic_sites": dynamic_sites,
                    "sdc": stats.rate("sdc"),
                    "benign": stats.rate("benign"),
                    "crash": stats.rate("crash"),
                }
            ]
            if store is not None:
                store.record_cell(
                    key,
                    "ablations",
                    scale,
                    {"benchmark": w.name, "study": "mask-awareness"},
                    cell_rows,
                )
            rows.extend(cell_rows)
    return rows


def _placement_ablation_rows(scale: str = "custom", store=None) -> list[dict]:
    rows = []
    for w in micro_workloads():
        plain = w.compile("avx")
        runner = w.reference_runner(0)
        base = None
        for every in (False, True):
            key = None
            if store is not None:
                from ..store import cell_key, module_fingerprint

                key = cell_key(
                    {
                        "experiment": "ablations",
                        "study": "detector-placement",
                        "benchmark": w.name,
                        "every_iteration": every,
                        "module": module_fingerprint(plain),
                    }
                )
                cached = store.lookup_cell(key)
                if cached is not None:
                    rows.extend(cached["rows"])
                    continue
            if base is None:
                vm0 = Interpreter(plain)
                runner(vm0)
                base = vm0.stats.total
            module = generate_module(analyze(parse_source(w.source)), AVX)
            insert_foreach_detectors(module, every_iteration=every)
            optimize(module)
            vm = Interpreter(module)
            vm.bind_all(DetectorRuntime().bindings())
            runner(vm)
            cell_rows = [
                {
                    "study": "detector-placement",
                    "benchmark": w.name,
                    "variant": "per-iteration" if every else "exit-only",
                    "experiments": 1,
                    "dynamic_sites": 0,
                    "overhead": vm.stats.total / base - 1.0,
                }
            ]
            if store is not None:
                store.record_cell(
                    key,
                    "ablations",
                    scale,
                    {"benchmark": w.name, "study": "detector-placement"},
                    cell_rows,
                )
            rows.extend(cell_rows)
    return rows


HEADERS = ["study", "micro", "variant", "metric"]


def run(scale: str = "quick", engine: str = "direct", store=None) -> ExperimentReport:
    report = ExperimentReport(name="ablations", scale=scale, headers=list(HEADERS))
    report.rows.extend(_mask_ablation_rows(scale, engine=engine, store=store))
    report.rows.extend(_placement_ablation_rows(scale, store=store))
    report.notes.append(
        "mask-unaware injection counts dead remainder lanes as sites and "
        "dilutes SDC with benign hits; per-iteration invariant checking "
        "multiplies the detector's cost without new golden-run coverage."
    )
    return report


def render(report: ExperimentReport) -> str:
    rows = []
    for r in report.rows:
        if r["study"] == "mask-awareness":
            metric = (
                f"sites={r['dynamic_sites']}, sdc={pct(r['sdc'])}, "
                f"benign={pct(r['benign'])}, crash={pct(r['crash'])} "
                f"(n={r['experiments']})"
            )
        else:
            metric = f"overhead={pct(r['overhead'])}"
        rows.append([r["study"], r["benchmark"], r["variant"], metric])
    return (
        render_table(report.headers, rows, title="Ablations — mask awareness & detector placement")
        + "\n\n"
        + "\n".join(report.notes)
    )
