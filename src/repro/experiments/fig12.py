"""Fig. 12: the foreach-invariant detector study on the micro-benchmarks.

For vector copy, dot product, and vector sum, under each fault-site
category (2000 experiments each at paper scale):

* **Avg. Overhead** — detector cost, measured here as the dynamic-
  instruction-count ratio of the kernel with vs without the detector block
  (paper: wall clock; ~8% on all three micros);
* **SDC** — the SDC rate with the detector-equipped binary;
* **SDC Detection Rate** — fraction of SDC outcomes flagged by
  ``checkInvariantsForeachFullBody``.

Expected shape (§IV-E): **zero** detected SDCs under pure-data (the loop
iterator can never be a pure-data site — Fig. 2 containment); the highest
SDC rates and detection rates (~50-57%) under control; address faults
mostly crash, leaving low SDC rates.
"""

from __future__ import annotations

from random import Random

import numpy as np

from ..analysis.report import pct, render_table
from ..core.campaign import run_batch
from ..core.injector import FaultInjector
from ..detectors.runtime import detector_bindings_factory
from ..vm.interpreter import Interpreter
from ..workloads.registry import Workload, micro_workloads
from .common import (
    CATEGORIES,
    ExperimentReport,
    FIG12_EXPERIMENTS,
    campaign_worker_context,
    cell_seed,
)

#: Paper Fig. 12 values for comparison (SDC rate, SDC detection rate).
PAPER_FIG12 = {
    ("vcopy", "pure-data"): (0.9995, 0.0),
    ("vcopy", "control"): (0.753, 0.571),
    ("vcopy", "address"): (0.3945, 0.0875),
    ("dot_product", "pure-data"): (0.978, 0.0),
    ("dot_product", "control"): (0.9525, 0.5765),
    ("dot_product", "address"): (0.4195, 0.08),
    ("vector_sum", "pure-data"): (1.0, 0.0),
    ("vector_sum", "control"): (0.965, 0.487),
    ("vector_sum", "address"): (0.4325, 0.055),
}
PAPER_OVERHEADS = {"vcopy": 0.086, "dot_product": 0.0809, "vector_sum": 0.0839}

HEADERS = [
    "micro",
    "category",
    "n",
    "overhead",
    "SDC",
    "SDC detect",
    "paper SDC",
    "paper detect",
]


def cell_recorder(
    store,
    workload: Workload,
    category: str,
    experiments: int,
    scale: str,
    injector: FaultInjector,
    extras: dict | None = None,
    abort_after: int | None = None,
):
    """One (micro, category) cell's store recorder."""
    return store.recorder(
        experiment="fig12",
        cell={"benchmark": workload.name, "category": category},
        scale=scale,
        injector=injector,
        seed=cell_seed("fig12", workload.name, "avx", category),
        config={"experiments": experiments},
        planned=experiments,
        extras=extras,
        abort_after=abort_after,
    )


def measure_overhead(workload: Workload, target: str = "avx", samples: int = 5) -> float:
    """Dynamic-instruction overhead of the detector block (mean over inputs)."""
    plain = workload.compile(target, foreach_detectors=False)
    detected = workload.compile(target, foreach_detectors=True)
    rng = Random(cell_seed("fig12-overhead", workload.name, target))
    ratios = []
    factory = detector_bindings_factory()
    for _ in range(samples):
        runner = workload.make_runner(workload.sample_input(rng))
        vm0 = Interpreter(plain)
        runner(vm0)
        vm1 = Interpreter(detected)
        bindings, _fired = factory()
        vm1.bind_all(bindings)
        runner(vm1)
        ratios.append(vm1.stats.total / vm0.stats.total - 1.0)
    return float(np.mean(ratios))


def run_cell(
    workload: Workload,
    category: str,
    experiments: int,
    target: str = "avx",
    jobs: int = 1,
    engine: str = "direct",
    checkpoint_interval: int | None = None,
    pool=None,
    injector: FaultInjector | None = None,
    scale: str = "custom",
    store=None,
    recorder=None,
    abort_after: int | None = None,
    shard=None,
) -> dict:
    if injector is None:
        module = workload.compile(target, foreach_detectors=True)
        injector = FaultInjector(
            module, category=category, step_limit=500_000, engine=engine,
            checkpoint_interval=checkpoint_interval,
        )
    if recorder is None and store is not None:
        recorder = cell_recorder(
            store, workload, category, experiments, scale, injector,
            abort_after=abort_after,
        )
    rng = Random(cell_seed("fig12", workload.name, target, category))
    factory = detector_bindings_factory()
    worker_context = (
        campaign_worker_context(injector, workload, with_detectors=True)
        if jobs > 1 and pool is None
        else None
    )
    stats = run_batch(
        injector,
        workload.runner_factory(),
        experiments,
        rng,
        bindings_factory=factory,
        jobs=jobs,
        worker_context=worker_context,
        pool=pool,
        recorder=recorder,
        shard=shard,
    )
    paper = PAPER_FIG12.get((workload.name, category))
    return {
        "benchmark": workload.name,
        "category": category,
        "experiments": stats.total,
        "sdc": stats.rate("sdc"),
        "crash": stats.rate("crash"),
        "detection_rate": stats.sdc_detection_rate,
        "detected_sdc": stats.detected_sdc,
        "paper_sdc": paper[0] if paper else None,
        "paper_detection": paper[1] if paper else None,
    }


def run(
    scale: str = "quick",
    jobs: int = 1,
    engine: str = "direct",
    checkpoint_interval: int | None = None,
    store=None,
    abort_after: int | None = None,
    shard=None,
) -> ExperimentReport:
    if shard is not None and store is None:
        raise ValueError("fig12.run(shard=...) requires a store")
    experiments = FIG12_EXPERIMENTS[scale]
    report = ExperimentReport(name="fig12", scale=scale, headers=list(HEADERS))
    cells = [(w, category) for w in micro_workloads() for category in CATEGORIES]
    overheads = {w.name: measure_overhead(w) for w in micro_workloads()}
    # One SweepPool serves all (micro, category) cells — same pattern as
    # Fig. 11: fork once with every cell's context, build injectors lazily
    # in the workers.  With --store, injectors and recorders are built
    # upfront so every cell is manifested (with its measured overhead)
    # before the first injection.
    injectors: dict = {}
    recorders: dict = {}
    pool = None
    if jobs > 1 or store is not None:
        from ..core.parallel import SweepPool

        contexts = {}
        for w, category in cells:
            key = (w.name, category)
            module = w.compile("avx", foreach_detectors=True)
            injectors[key] = FaultInjector(
                module, category=category, step_limit=500_000, engine=engine,
                checkpoint_interval=checkpoint_interval,
            )
            contexts[key] = campaign_worker_context(
                injectors[key], w, with_detectors=True
            )
            if store is not None:
                recorders[key] = cell_recorder(
                    store, w, category, experiments, scale, injectors[key],
                    extras={
                        "overhead": overheads[w.name],
                        "paper_overhead": PAPER_OVERHEADS.get(w.name),
                    },
                    abort_after=abort_after,
                )
        if jobs > 1:
            pool = SweepPool(jobs, contexts)
    try:
        for w in micro_workloads():
            for category in CATEGORIES:
                key = (w.name, category)
                row = run_cell(
                    w,
                    category,
                    experiments,
                    jobs=jobs,
                    engine=engine,
                    checkpoint_interval=checkpoint_interval,
                    pool=pool.cell(key) if pool is not None else None,
                    injector=injectors.get(key),
                    scale=scale,
                    recorder=recorders.get(key),
                    shard=shard,
                )
                row["overhead"] = overheads[w.name]
                row["paper_overhead"] = PAPER_OVERHEADS.get(w.name)
                report.rows.append(row)
    finally:
        if pool is not None:
            pool.close()
        if store is not None:
            store.flush()
    report.notes.append(
        "Overhead is a dynamic-instruction ratio (deterministic proxy for "
        "the paper's ~8% wall-clock figure). Expect 0% detection under "
        "pure-data and the highest detection under control."
    )
    return report


def render(report: ExperimentReport) -> str:
    rows = [
        [
            r["benchmark"],
            r["category"],
            r["experiments"],
            pct(r["overhead"]),
            pct(r["sdc"]),
            pct(r["detection_rate"]),
            pct(r["paper_sdc"]) if r["paper_sdc"] is not None else "-",
            pct(r["paper_detection"]) if r["paper_detection"] is not None else "-",
        ]
        for r in report.rows
    ]
    out = render_table(report.headers, rows, title="Fig. 12 — detector study on micro-benchmarks")
    return out + "\n\n" + "\n".join(report.notes)
