"""Bit-position sensitivity study (extension beyond the paper's figures).

The paper's fault model draws the flipped bit uniformly; this study instead
sweeps the bit position deterministically and reports, per position, the
outcome distribution over many dynamic sites — the classic "which bits
matter" view of an injection campaign.  For IEEE-754 data the expectation
is a strong gradient (mantissa LSBs mostly benign or tolerable, exponent
and sign bits violently SDC/crash-prone); for integer loop state the high
bits crash (wild addresses / runaway loops) while low bits silently corrupt.
"""

from __future__ import annotations

from random import Random

from ..analysis.report import pct, render_table
from ..core.campaign import CampaignStats
from ..core.injector import FaultInjector
from ..core.outcomes import ExperimentResult, Outcome, outputs_equal
from ..core.runtime import FaultRuntime, MODE_INJECT
from ..errors import VMTrap
from ..workloads.registry import get_workload
from .common import ExperimentReport, cell_seed

#: experiments per (workload, category, bit) cell per scale
_PER_BIT = {"smoke": 4, "quick": 12, "full": 60}


def run_cell(
    workload_name: str,
    category: str,
    bits: range,
    experiments_per_bit: int,
    target: str = "avx",
    scale: str = "custom",
    store=None,
) -> list[dict]:
    w = get_workload(workload_name)
    module = w.compile(target)
    cell = {"benchmark": workload_name, "category": category}
    key = None
    if store is not None:
        from ..store import cell_key, module_fingerprint

        key = cell_key(
            {
                "experiment": "bitpos",
                **cell,
                "target": target,
                "module": module_fingerprint(module),
                "bits": list(bits),
                "per_bit": experiments_per_bit,
            }
        )
        cached = store.lookup_cell(key)
        if cached is not None:
            return list(cached["rows"])
    injector = FaultInjector(module, category=category)
    rows = []
    for bit in bits:
        rng = Random(cell_seed("bitpos", workload_name, category, bit))
        stats = CampaignStats()
        for _ in range(experiments_per_bit):
            runner = w.make_runner(w.sample_input(rng))
            golden = injector.golden(runner)
            k = rng.randint(1, golden.dynamic_sites)
            rt = FaultRuntime(MODE_INJECT, target_index=k, bit=bit)
            vm, _fired = injector._prepare_vm(rt, None)
            try:
                output = runner(vm)
            except VMTrap as trap:
                stats.add(ExperimentResult(outcome=Outcome.CRASH, crash_kind=trap.kind))
                continue
            assert rt.record is not None  # fixed bits wrap modulo the width
            outcome = (
                Outcome.BENIGN
                if outputs_equal(golden.output, output)
                else Outcome.SDC
            )
            stats.add(ExperimentResult(outcome=outcome))
        rows.append(
            {
                "workload": workload_name,
                "category": category,
                "bit": bit,
                "experiments": stats.total,
                "sdc": stats.rate("sdc"),
                "benign": stats.rate("benign"),
                "crash": stats.rate("crash"),
            }
        )
    if store is not None:
        store.record_cell(key, "bitpos", scale, cell, rows)
    return rows


HEADERS = ["workload", "category", "bit", "n", "SDC", "benign", "crash"]


def run(scale: str = "quick", store=None) -> ExperimentReport:
    per_bit = _PER_BIT[scale]
    report = ExperimentReport(name="bitpos", scale=scale, headers=list(HEADERS))
    # Float data path: dot product pure-data sites are f32 values.
    report.rows.extend(
        run_cell(
            "dot_product", "pure-data", range(0, 32, 4), per_bit,
            scale=scale, store=store,
        )
    )
    # Integer/control path: vcopy control sites are loop state.
    report.rows.extend(
        run_cell("vcopy", "control", range(0, 32, 4), per_bit, scale=scale, store=store)
    )
    report.notes.append(
        "f32 pure-data: mantissa LSB flips are far more benign than "
        "exponent/sign flips; i32 control: high-bit flips crash or derail "
        "the loop, low bits silently corrupt."
    )
    return report


def render(report: ExperimentReport) -> str:
    rows = [
        [
            r["workload"],
            r["category"],
            r["bit"],
            r["experiments"],
            pct(r["sdc"]),
            pct(r["benign"]),
            pct(r["crash"]),
        ]
        for r in report.rows
    ]
    return (
        render_table(report.headers, rows, title="Bit-position sensitivity (extension)")
        + "\n\n"
        + "\n".join(report.notes)
    )
