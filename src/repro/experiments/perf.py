"""Campaign-throughput benchmark (``python -m repro.experiments perf``).

Times a fixed, seeded mini-campaign on the vector-sum micro-benchmark in
two input regimes:

* **unique** — every experiment draws a fresh input (the workload's own
  input space), so the golden cache cannot help and the timing isolates the
  interpreter fast path;
* **pooled** — experiments draw from a small fixed input pool, the regime
  the golden cache is built for (each distinct input's golden run executes
  once per injector).

The outcome totals are part of the benchmark contract: they are asserted
against the frozen values below, so a speedup that perturbs the published
numbers fails instead of silently shipping.  ``benchmarks/
test_perf_campaign.py`` reuses :func:`bench_results` and writes
``BENCH_campaign.json`` comparing against the pre-optimization baseline.
"""

from __future__ import annotations

import time
from random import Random

from ..analysis.report import render_table
from ..core.campaign import CampaignConfig, run_campaigns
from ..core.injector import ENGINES, FaultInjector
from ..workloads.registry import get_workload
from .common import ExperimentReport

#: Wall-clock seconds for the same two mini-campaigns measured at the seed
#: commit (naive interpreter, no golden cache), on the reference container.
#: Frozen here so the benchmark reports a speedup against a fixed point
#: rather than against whatever happened to be HEAD~1.
BASELINE = {"unique": 1.3278, "pooled": 1.4323}

#: Frozen outcome totals (sdc, benign, crash) for seed 7 — the speedup is
#: only valid while these stay byte-identical to the pre-optimization runs.
EXPECTED_TOTALS = {"unique": (121, 49, 30), "pooled": (127, 39, 34)}

MINI_CONFIG = CampaignConfig(
    experiments_per_campaign=50,
    max_campaigns=4,
    min_campaigns=4,
    require_normality=False,
    margin_target=0.0,
)

#: The pooled regime's fixed input pool: (n, seed) pairs.
POOLED_INPUTS = (
    (67, 101),
    (93, 202),
    (131, 303),
    (185, 404),
    (67, 505),
    (93, 606),
    (131, 707),
    (185, 808),
)

SEED = 7

#: Default golden-checkpoint interval (dynamic sites) for the mini
#: campaigns.  Checkpoint fast-forward is bit-identical to full replay, so
#: running the frozen-totals contract *with* checkpoints on keeps the
#: restore path continuously verified by CI; ``--no-checkpoints`` reverts
#: to full replays.
MINI_CHECKPOINT_INTERVAL = 64

#: The checkpoint micro-benchmark's fixed input and late-fault bias: every
#: target site k is drawn from the last LATE_FRACTION of the dynamic-site
#: range, the regime prefix skipping is built for (a restore skips ~the
#: whole prefix instead of ~half on average).
CHECKPOINT_INPUT = {"n": 1024, "seed": 1234}
LATE_FRACTION = 0.1
CHECKPOINT_EXPERIMENTS = 150


def _mini_campaign(
    regime: str,
    jobs: int = 1,
    engine: str = "direct",
    checkpoint_interval: int | None = MINI_CHECKPOINT_INTERVAL,
) -> dict:
    workload = get_workload("vector_sum")
    module = workload.compile("avx")
    injector = FaultInjector(
        module, category="all", step_limit=500_000, engine=engine,
        checkpoint_interval=checkpoint_interval,
    )
    if regime == "unique":
        factory = workload.runner_factory()
    else:
        def factory(rng: Random):
            n, seed = rng.choice(POOLED_INPUTS)
            return workload.build_runner({"n": n, "seed": seed})

    worker_context = None
    if jobs > 1:
        from .common import campaign_worker_context

        worker_context = campaign_worker_context(injector, workload)

    # Faulty-run-only timing split (serial runs only: with --jobs the
    # faulty halves execute in workers): shadow the bound method with a
    # timing wrapper, so golden-run and classification time is excluded
    # from the per-engine comparison the direct engine is judged on.  With
    # checkpoints on, the split further separates prefix-skipped (restored)
    # from full-replay faulty runs, attributed by watching the injector's
    # restore counter across each call.
    faulty_seconds = 0.0
    restored = {"runs": 0, "seconds": 0.0}
    full = {"runs": 0, "seconds": 0.0}
    if jobs == 1:
        inner_faulty = injector.faulty
        cstats = injector.checkpoint_stats

        def timed_faulty(*args, **kwargs):
            nonlocal faulty_seconds
            before = cstats["restores"]
            t = time.perf_counter()
            try:
                return inner_faulty(*args, **kwargs)
            finally:
                dt = time.perf_counter() - t
                faulty_seconds += dt
                split = restored if cstats["restores"] > before else full
                split["runs"] += 1
                split["seconds"] += dt

        injector.faulty = timed_faulty

    t0 = time.perf_counter()
    summary = run_campaigns(
        injector, factory, MINI_CONFIG, seed=SEED,
        jobs=jobs, worker_context=worker_context,
    )
    elapsed = time.perf_counter() - t0
    totals = (summary.totals.sdc, summary.totals.benign, summary.totals.crash)
    return {
        "regime": regime,
        "engine": engine,
        "jobs": jobs,
        "checkpoint_interval": checkpoint_interval,
        "experiments": summary.totals.total,
        "seconds": elapsed,
        "faulty_seconds": faulty_seconds if jobs == 1 else None,
        "faulty_split": (
            {"restored": restored, "full": full} if jobs == 1 else None
        ),
        "baseline_seconds": BASELINE[regime],
        "speedup": BASELINE[regime] / elapsed,
        "totals": totals,
        "totals_match_baseline": totals == EXPECTED_TOTALS[regime],
        "golden_cache": injector.golden_cache.cache_info(),
        "golden_cache_hits": injector.golden_cache.hits,
        "golden_cache_misses": injector.golden_cache.misses,
        "checkpoints": dict(injector.checkpoint_stats),
    }


def checkpoint_bench(interval: int | None = None) -> dict:
    """Faulty-run speedup from checkpoint restore on a late-fault workload.

    One fixed large input, every target site drawn from the last
    ``LATE_FRACTION`` of the dynamic range — the regime the tentpole
    optimization targets (a restore skips ~90% of the replay).  Runs the
    *same* pre-drawn (k, bit) schedule through a plain direct injector and
    a checkpointing one and requires the result streams to agree
    experiment-for-experiment (outcome, crash kind, injection record, and
    faulty dynamic-instruction totals), so the reported speedup is only
    ever attached to a bit-identical run.
    """
    workload = get_workload("vector_sum")
    module = workload.compile("avx")
    runner = workload.build_runner(dict(CHECKPOINT_INPUT))

    plain = FaultInjector(module, category="all", step_limit=2_000_000)
    golden = plain.golden(runner)
    n = golden.dynamic_sites
    if interval is None:
        interval = max(1, n // 64)
    ck = FaultInjector(
        module, category="all", step_limit=2_000_000,
        checkpoint_interval=interval,
    )
    golden_ck = ck.golden(runner)

    rng = Random(SEED)
    lo = int(n * (1.0 - LATE_FRACTION)) + 1
    schedule = []
    for _ in range(CHECKPOINT_EXPERIMENTS):
        k = rng.randint(lo, n)
        schedule.append((k, rng.randrange(golden.site_widths[k - 1])))

    def sweep(injector, g):
        results = []
        t0 = time.perf_counter()
        for k, bit in schedule:
            results.append(injector.faulty(runner, g, k, bit=bit))
        return time.perf_counter() - t0, results

    plain_seconds, plain_results = sweep(plain, golden)
    ck_seconds, ck_results = sweep(ck, golden_ck)

    def signature(r):
        return (
            r.outcome.value,
            r.crash_kind,
            repr(r.injection),
            r.dynamic_sites,
            r.faulty_dynamic_instructions,
        )

    matches = all(
        signature(a) == signature(b)
        for a, b in zip(plain_results, ck_results)
    )
    return {
        "workload": "vector_sum",
        "input": dict(CHECKPOINT_INPUT),
        "dynamic_sites": n,
        "experiments": len(schedule),
        "late_fraction": LATE_FRACTION,
        "checkpoint_interval": interval,
        "checkpoints_recorded": len(golden_ck.checkpoints)
        if golden_ck.checkpoints is not None
        else 0,
        "baseline_seconds": plain_seconds,
        "checkpointed_seconds": ck_seconds,
        "faulty_speedup": plain_seconds / ck_seconds,
        "totals_match_baseline": matches,
        "stats": dict(ck.checkpoint_stats),
    }


def bench_results(
    jobs: int = 1,
    engines: tuple = ENGINES,
    checkpoint_interval: int | None = MINI_CHECKPOINT_INTERVAL,
) -> dict:
    """Per-engine timings for both regimes — the ``BENCH_campaign.json``
    payload.

    ``regimes`` (the first engine's, i.e. the direct engine's, numbers)
    keeps the pre-existing shape; ``engines`` adds the per-engine split,
    and ``direct_vs_instrumented`` the cross-engine speedups, including
    the faulty-run-only ratio the direct engine's ≥2x claim rests on.
    """
    per_engine = {
        engine: {
            r["regime"]: r
            for r in (
                _mini_campaign("unique", jobs, engine, checkpoint_interval),
                _mini_campaign("pooled", jobs, engine, checkpoint_interval),
            )
        }
        for engine in engines
    }
    payload = {
        "benchmark": "campaign-throughput",
        "workload": "vector_sum",
        "seed": SEED,
        "config": {
            "experiments_per_campaign": MINI_CONFIG.experiments_per_campaign,
            "campaigns": MINI_CONFIG.max_campaigns,
        },
        "jobs": jobs,
        "checkpoint_interval": checkpoint_interval,
        "regimes": per_engine[engines[0]],
        "engines": per_engine,
        "checkpoint": checkpoint_bench(),
    }
    if "direct" in per_engine and "instrumented" in per_engine:
        comparison = {}
        for regime in per_engine["direct"]:
            d = per_engine["direct"][regime]
            i = per_engine["instrumented"][regime]
            cell = {"seconds": i["seconds"] / d["seconds"]}
            if d["faulty_seconds"] and i["faulty_seconds"]:
                cell["faulty_seconds"] = i["faulty_seconds"] / d["faulty_seconds"]
            comparison[regime] = cell
        payload["direct_vs_instrumented"] = comparison
    return payload


def run(
    scale: str = "quick",
    jobs: int = 1,
    engine: str | None = None,
    checkpoint_interval: int | None = MINI_CHECKPOINT_INTERVAL,
) -> ExperimentReport:
    engines = ENGINES if engine is None else (engine,)
    results = bench_results(
        jobs=jobs, engines=engines, checkpoint_interval=checkpoint_interval
    )
    rows = [
        cell
        for engine_cells in results["engines"].values()
        for cell in engine_cells.values()
    ]
    report = ExperimentReport(
        name="perf",
        scale=scale,
        headers=[
            "engine", "regime", "n", "seconds", "faulty", "baseline",
            "speedup", "totals ok",
        ],
        rows=rows,
    )
    report.notes.append(
        "Fixed seeded mini-campaign (vector_sum, seed 7, 4x50 experiments). "
        "'unique' isolates the interpreter fast path; 'pooled' adds "
        "golden-run memoization. Baselines were measured at the seed "
        "commit; 'totals ok' checks the outcome counts are byte-identical "
        "to the pre-optimization runs — and, across engines, that direct "
        "and instrumented injection agree experiment-for-experiment."
    )
    comparison = results.get("direct_vs_instrumented")
    if comparison:
        parts = [
            f"{regime}: {cell['seconds']:.2f}x overall"
            + (
                f", {cell['faulty_seconds']:.2f}x faulty-run-only"
                if "faulty_seconds" in cell
                else ""
            )
            for regime, cell in comparison.items()
        ]
        report.notes.append("direct vs instrumented — " + "; ".join(parts))
    ck = results.get("checkpoint")
    if ck:
        report.notes.append(
            f"checkpoint restore (late-fault bias, interval "
            f"{ck['checkpoint_interval']}): {ck['faulty_speedup']:.2f}x "
            f"faulty-run speedup over full replay, "
            f"{ck['stats']['sites_skipped']} sites skipped, "
            f"{ck['stats']['convergence_exits']} convergence exits, "
            f"bit-identical={'yes' if ck['totals_match_baseline'] else 'NO'}"
        )
    return report


def render(report: ExperimentReport) -> str:
    rows = [
        [
            r["engine"],
            r["regime"],
            r["experiments"],
            f"{r['seconds']:.3f}s",
            f"{r['faulty_seconds']:.3f}s" if r["faulty_seconds"] else "-",
            f"{r['baseline_seconds']:.3f}s",
            f"{r['speedup']:.1f}x",
            "yes" if r["totals_match_baseline"] else "NO",
        ]
        for r in report.rows
    ]
    out = render_table(
        report.headers, rows, title="Campaign throughput vs seed-commit baseline"
    )
    return out + "\n\n" + "\n".join(report.notes)
