"""Campaign-throughput benchmark (``python -m repro.experiments perf``).

Times a fixed, seeded mini-campaign on the vector-sum micro-benchmark in
two input regimes:

* **unique** — every experiment draws a fresh input (the workload's own
  input space), so the golden cache cannot help and the timing isolates the
  interpreter fast path;
* **pooled** — experiments draw from a small fixed input pool, the regime
  the golden cache is built for (each distinct input's golden run executes
  once per injector).

The outcome totals are part of the benchmark contract: they are asserted
against the frozen values below, so a speedup that perturbs the published
numbers fails instead of silently shipping.  ``benchmarks/
test_perf_campaign.py`` reuses :func:`bench_results` and writes
``BENCH_campaign.json`` comparing against the pre-optimization baseline.
"""

from __future__ import annotations

import gc
import time
from random import Random

from ..analysis.report import render_table
from ..core.campaign import CampaignConfig, run_campaigns
from ..core.injector import ENGINES, FaultInjector
from ..vm.bits import VECTOR_EVENTS
from ..workloads.registry import get_workload
from .common import ExperimentReport

#: Wall-clock seconds for the same two mini-campaigns measured at the seed
#: commit (naive interpreter, no golden cache), on the reference container.
#: Frozen here so the benchmark reports a speedup against a fixed point
#: rather than against whatever happened to be HEAD~1.
BASELINE = {"unique": 1.3278, "pooled": 1.4323}

#: Frozen outcome totals (sdc, benign, crash) for seed 7 — the speedup is
#: only valid while these stay byte-identical to the pre-optimization runs.
EXPECTED_TOTALS = {"unique": (121, 49, 30), "pooled": (127, 39, 34)}

MINI_CONFIG = CampaignConfig(
    experiments_per_campaign=50,
    max_campaigns=4,
    min_campaigns=4,
    require_normality=False,
    margin_target=0.0,
)

#: The pooled regime's fixed input pool: (n, seed) pairs.
POOLED_INPUTS = (
    (67, 101),
    (93, 202),
    (131, 303),
    (185, 404),
    (67, 505),
    (93, 606),
    (131, 707),
    (185, 808),
)

SEED = 7

#: Default golden-checkpoint interval (dynamic sites) for the mini
#: campaigns.  Checkpoint fast-forward is bit-identical to full replay, so
#: running the frozen-totals contract *with* checkpoints on keeps the
#: restore path continuously verified by CI; ``--no-checkpoints`` reverts
#: to full replays.
MINI_CHECKPOINT_INTERVAL = 64

#: The checkpoint micro-benchmark's fixed input and late-fault bias: every
#: target site k is drawn from the last LATE_FRACTION of the dynamic-site
#: range, the regime prefix skipping is built for (a restore skips ~the
#: whole prefix instead of ~half on average).
CHECKPOINT_INPUT = {"n": 1024, "seed": 1234}
LATE_FRACTION = 0.1
CHECKPOINT_EXPERIMENTS = 150

#: The dispatch micro-benchmark's fixed input and repeat count: golden
#: (count-mode) executions only, so the measured rate is raw engine
#: dispatch — no injection bookkeeping beyond site counting, no
#: classification, no campaign machinery.  The timed loop runs
#: ``DISPATCH_SERIES`` times and the fastest series is reported — the
#: standard microbenchmark defence against scheduler noise, which at
#: ~150 microseconds per run would otherwise dominate the measurement.
DISPATCH_INPUT = {"n": 512, "seed": 42}
DISPATCH_REPEATS = 25
DISPATCH_SERIES = 5

#: Frozen compiled-engine dispatch rate (dynamic instructions per second)
#: measured on the reference container *before* the batched vector tier,
#: with the same input and warmed caches.  The packed-register speedup in
#: ``BENCH_campaign.json`` is reported against this fixed point.
DISPATCH_BASELINE_COMPILED = 9_242_823

#: Shard-scaling sweep: shard counts, and the fixed (large) input that
#: makes execution dominate drawing.  Every shard redraws the *whole*
#: schedule (one shared RNG stream) but executes only its stripe; a single
#: fixed input means the redraw cost is one golden run plus cheap RNG
#: calls, so the per-shard wall tracks the stripe's faulty-run share.
#: Checkpoints stay off: full replays are the regime where distributing
#: the faulty runs pays.
SHARD_BENCH_COUNTS = (1, 2, 4, 8)
SHARD_BENCH_INPUT = {"n": 2048, "seed": 777}


def _mini_injector(
    engine: str, checkpoint_interval: int | None
) -> FaultInjector:
    workload = get_workload("vector_sum")
    module = workload.compile("avx")
    return FaultInjector(
        module, category="all", step_limit=500_000, engine=engine,
        checkpoint_interval=checkpoint_interval,
    )


def _mini_campaign(
    regime: str,
    jobs: int = 1,
    engine: str = "direct",
    checkpoint_interval: int | None = MINI_CHECKPOINT_INTERVAL,
    injector: FaultInjector | None = None,
) -> dict:
    workload = get_workload("vector_sum")
    if injector is None:
        injector = _mini_injector(engine, checkpoint_interval)
    else:
        # One injector serves every regime of an engine (so decode/compile
        # caches stay warm across blocks), which means the golden-cache and
        # checkpoint counters would otherwise leak from one regime's report
        # into the next.  Reset them so each block covers only its own runs.
        injector.reset_perf_counters()
    if regime == "unique":
        factory = workload.runner_factory()
    else:
        def factory(rng: Random):
            n, seed = rng.choice(POOLED_INPUTS)
            return workload.build_runner({"n": n, "seed": seed})

    worker_context = None
    if jobs > 1:
        from .common import campaign_worker_context

        worker_context = campaign_worker_context(injector, workload)

    # Engine blocks run back to back in one process; without this, the
    # previous block's garbage (checkpoint tapes hold full memory images)
    # is collected inside the next block's timed window and charges one
    # engine for another's cleanup.
    gc.collect()

    # Faulty-run-only timing split (serial runs only: with --jobs the
    # faulty halves execute in workers): shadow the bound method with a
    # timing wrapper, so golden-run and classification time is excluded
    # from the per-engine comparison the direct engine is judged on.  With
    # checkpoints on, the split further separates prefix-skipped (restored)
    # from full-replay faulty runs, attributed by watching the injector's
    # restore counter across each call.
    faulty_seconds = 0.0
    restored = {"runs": 0, "seconds": 0.0}
    full = {"runs": 0, "seconds": 0.0}
    if jobs == 1:
        inner_faulty = injector.faulty
        cstats = injector.checkpoint_stats

        def timed_faulty(*args, **kwargs):
            nonlocal faulty_seconds
            before = cstats["restores"]
            t = time.perf_counter()
            try:
                return inner_faulty(*args, **kwargs)
            finally:
                dt = time.perf_counter() - t
                faulty_seconds += dt
                split = restored if cstats["restores"] > before else full
                split["runs"] += 1
                split["seconds"] += dt

        injector.faulty = timed_faulty

    slots_before = VECTOR_EVENTS["ndarray_slots"]
    t0 = time.perf_counter()
    try:
        summary = run_campaigns(
            injector, factory, MINI_CONFIG, seed=SEED,
            jobs=jobs, worker_context=worker_context,
        )
    finally:
        if jobs == 1:
            # Un-shadow the bound method so a shared injector's next regime
            # does not stack timing wrappers.
            del injector.faulty
    elapsed = time.perf_counter() - t0
    totals = (summary.totals.sdc, summary.totals.benign, summary.totals.crash)
    return {
        "regime": regime,
        "engine": engine,
        "jobs": jobs,
        "checkpoint_interval": checkpoint_interval,
        "experiments": summary.totals.total,
        "seconds": elapsed,
        "faulty_seconds": faulty_seconds if jobs == 1 else None,
        "faulty_split": (
            {"restored": restored, "full": full} if jobs == 1 else None
        ),
        "baseline_seconds": BASELINE[regime],
        "speedup": BASELINE[regime] / elapsed,
        "totals": totals,
        "totals_match_baseline": totals == EXPECTED_TOTALS[regime],
        "golden_cache": injector.golden_cache.cache_info(),
        "golden_cache_hits": injector.golden_cache.hits,
        "golden_cache_misses": injector.golden_cache.misses,
        "checkpoints": dict(injector.checkpoint_stats),
        # Packed ndarray register slots materialized during this regime
        # (vm/bits.VECTOR_EVENTS delta) — the batched tier's allocation
        # pressure, serial runs only (workers count in their own process).
        "ndarray_slots": (
            VECTOR_EVENTS["ndarray_slots"] - slots_before if jobs == 1 else None
        ),
    }


def checkpoint_bench(interval: int | None = None) -> dict:
    """Faulty-run speedup from checkpoint restore on a late-fault workload.

    One fixed large input, every target site drawn from the last
    ``LATE_FRACTION`` of the dynamic range — the regime the tentpole
    optimization targets (a restore skips ~90% of the replay).  Runs the
    *same* pre-drawn (k, bit) schedule through a plain direct injector and
    a checkpointing one and requires the result streams to agree
    experiment-for-experiment (outcome, crash kind, injection record, and
    faulty dynamic-instruction totals), so the reported speedup is only
    ever attached to a bit-identical run.
    """
    workload = get_workload("vector_sum")
    module = workload.compile("avx")
    runner = workload.build_runner(dict(CHECKPOINT_INPUT))

    plain = FaultInjector(module, category="all", step_limit=2_000_000)
    golden = plain.golden(runner)
    n = golden.dynamic_sites
    if interval is None:
        interval = max(1, n // 64)
    ck = FaultInjector(
        module, category="all", step_limit=2_000_000,
        checkpoint_interval=interval,
    )
    golden_ck = ck.golden(runner)

    rng = Random(SEED)
    lo = int(n * (1.0 - LATE_FRACTION)) + 1
    schedule = []
    for _ in range(CHECKPOINT_EXPERIMENTS):
        k = rng.randint(lo, n)
        schedule.append((k, rng.randrange(golden.site_widths[k - 1])))

    def sweep(injector, g):
        results = []
        t0 = time.perf_counter()
        for k, bit in schedule:
            results.append(injector.faulty(runner, g, k, bit=bit))
        return time.perf_counter() - t0, results

    plain_seconds, plain_results = sweep(plain, golden)
    ck_seconds, ck_results = sweep(ck, golden_ck)

    def signature(r):
        return (
            r.outcome.value,
            r.crash_kind,
            repr(r.injection),
            r.dynamic_sites,
            r.faulty_dynamic_instructions,
        )

    matches = all(
        signature(a) == signature(b)
        for a, b in zip(plain_results, ck_results)
    )
    return {
        "workload": "vector_sum",
        "input": dict(CHECKPOINT_INPUT),
        "dynamic_sites": n,
        "experiments": len(schedule),
        "late_fraction": LATE_FRACTION,
        "checkpoint_interval": interval,
        "checkpoints_recorded": len(golden_ck.checkpoints)
        if golden_ck.checkpoints is not None
        else 0,
        "baseline_seconds": plain_seconds,
        "checkpointed_seconds": ck_seconds,
        "faulty_speedup": plain_seconds / ck_seconds,
        "totals_match_baseline": matches,
        "stats": dict(ck.checkpoint_stats),
    }


#: The compiled-vs-direct faulty sweep's fixed input and experiment count:
#: full replays (no checkpoints), so the ratio measures raw engine
#: execution rather than restore overhead shared by both engines.
COMPILED_INPUT = {"n": 768, "seed": 4321}
COMPILED_EXPERIMENTS = 120


def compiled_bench() -> dict:
    """Faulty-run speedup of the compiled engine over the direct engine.

    One fixed input, one pre-drawn (k, bit) schedule, run through a direct
    and a compiled injector as full replays — the regime where per-run
    costs are execution itself, not checkpoint restores both engines share.
    The two result streams must agree experiment-for-experiment (outcome,
    crash kind, injection record, faulty dynamic-instruction total), so the
    reported speedup is only ever attached to a bit-identical run.
    """
    workload = get_workload("vector_sum")
    module = workload.compile("avx")
    runner = workload.build_runner(dict(COMPILED_INPUT))

    injectors = {}
    goldens = {}
    for engine in ("direct", "compiled"):
        injector = FaultInjector(
            module, category="all", step_limit=2_000_000, engine=engine
        )
        injector.warm()
        injectors[engine] = injector
        goldens[engine] = injector.golden(runner)

    n = goldens["direct"].dynamic_sites
    rng = Random(SEED)
    schedule = []
    for _ in range(COMPILED_EXPERIMENTS):
        k = rng.randint(1, n)
        schedule.append((k, rng.randrange(goldens["direct"].site_widths[k - 1])))

    def sweep(engine):
        injector, golden = injectors[engine], goldens[engine]
        results = []
        gc.collect()
        t0 = time.perf_counter()
        for k, bit in schedule:
            results.append(injector.faulty(runner, golden, k, bit=bit))
        return time.perf_counter() - t0, results

    direct_seconds, direct_results = sweep("direct")
    compiled_seconds, compiled_results = sweep("compiled")

    def signature(r):
        return (
            r.outcome.value,
            r.crash_kind,
            repr(r.injection),
            r.dynamic_sites,
            r.faulty_dynamic_instructions,
        )

    matches = all(
        signature(a) == signature(b)
        for a, b in zip(direct_results, compiled_results)
    )
    return {
        "workload": "vector_sum",
        "input": dict(COMPILED_INPUT),
        "dynamic_sites": n,
        "experiments": len(schedule),
        "direct_seconds": direct_seconds,
        "compiled_seconds": compiled_seconds,
        "faulty_speedup": direct_seconds / compiled_seconds,
        "totals_match_baseline": matches,
    }


def dispatch_bench(engines: tuple = ENGINES) -> dict:
    """Raw dispatch rate per engine: dynamic instructions per second.

    Times repeated golden (count-mode) executions of one fixed input, with
    every engine's code caches warmed first, so the measured rate isolates
    instruction dispatch itself — the thing the compiled engine's threaded
    superblocks exist to accelerate — from one-time decode/compile cost and
    from campaign bookkeeping.
    """
    workload = get_workload("vector_sum")
    module = workload.compile("avx")
    out = {}
    for engine in engines:
        injector = FaultInjector(
            module, category="all", step_limit=2_000_000, engine=engine
        )
        injector.warm()
        runner = workload.build_runner(dict(DISPATCH_INPUT))
        golden = injector.golden(runner)  # warm-up lap, gives the count
        slots_before = VECTOR_EVENTS["ndarray_slots"]
        gc.collect()
        elapsed = float("inf")
        for _ in range(DISPATCH_SERIES):
            t0 = time.perf_counter()
            for _ in range(DISPATCH_REPEATS):
                injector.golden(runner)
            elapsed = min(elapsed, time.perf_counter() - t0)
        rate = golden.dynamic_instructions * DISPATCH_REPEATS / elapsed
        out[engine] = {
            "dynamic_instructions": golden.dynamic_instructions,
            "repeats": DISPATCH_REPEATS,
            "series": DISPATCH_SERIES,
            "seconds": elapsed,
            "instructions_per_second": rate,
            "ndarray_slots_per_run": (
                (VECTOR_EVENTS["ndarray_slots"] - slots_before)
                / (DISPATCH_SERIES * DISPATCH_REPEATS)
            ),
        }
        if engine == "compiled":
            out[engine]["baseline_instructions_per_second"] = (
                DISPATCH_BASELINE_COMPILED
            )
            out[engine]["speedup_vs_frozen_baseline"] = (
                rate / DISPATCH_BASELINE_COMPILED
            )
    return out


#: Per-opcode vector micro-kernels: trip count, timing repeats, and the
#: opcodes measured.  Each kernel is one tight loop whose body repeats the
#: named operation on 4-lane vectors, so the bulk-vs-unrolled ratio
#: isolates that opcode's batched emitter against the per-lane tier.
VECTOR_BENCH_INPUT = {"n": 256, "seed": 9}
VECTOR_BENCH_REPEATS = 20
VECTOR_BENCH_SERIES = 3
VECTOR_BENCH_OPS = (
    "fadd_f32", "fmul_f32", "add_i32", "mul_i32", "xor_i32", "loadstore_f32"
)


def _vector_bench_module(op: str):
    """A fresh module whose loop body repeats ``op`` eight times on 4-lane
    vectors.  Fresh per call: compiled code caches on the module object, so
    each batching mode must compile its own copy."""
    from ..ir import (
        F32, FunctionType, I32, IRBuilder, Module, pointer, vector,
        verify_module,
    )

    v4i, v4f = vector(I32, 4), vector(F32, 4)
    m = Module(f"vecbench_{op}")
    fn = m.add_function(
        "f", FunctionType(I32, (pointer(I32), pointer(F32), I32)),
        ["ip", "fp", "n"],
    )
    entry = fn.add_block("entry")
    loop = fn.add_block("loop")
    body = fn.add_block("body")
    latch = fn.add_block("latch")
    done = fn.add_block("done")

    b = IRBuilder(entry)
    ivp = b.bitcast(fn.args[0], pointer(v4i), "ivp")
    fvp = b.bitcast(fn.args[1], pointer(v4f), "fvp")
    b.br(loop)

    b.position_at_end(loop)
    i = b.phi(I32, "i")
    is_float = op.endswith("_f32")
    vacc = b.phi(v4f if is_float else v4i, "vacc")
    cmp = b.icmp("slt", i, fn.args[2], "cmp")
    b.condbr(cmp, body, done)

    b.position_at_end(body)
    if op == "loadstore_f32":
        cur = vacc
        for _ in range(4):
            ld = b.load(fvp, "vld")
            cur = b.binop("fadd", cur, ld)
            b.store(cur, fvp)
        nxt = cur
    else:
        opcode = op.rsplit("_", 1)[0]
        operand = b.load(fvp if is_float else ivp, "vld")
        cur = vacc
        for _ in range(8):
            cur = b.binop(opcode, cur, operand)
        nxt = cur
    b.br(latch)

    b.position_at_end(latch)
    inext = b.add(i, b.i32(1), "inext")
    b.br(loop)

    b.position_at_end(done)
    lane = b.extractelement(vacc, 0, "lane")
    b.ret(b.fptosi(lane, I32) if is_float else lane)

    i.add_incoming(b.i32(0), entry)
    i.add_incoming(inext, latch)
    from ..ir import const_float, zeroinitializer
    from ..ir.values import ConstantVector

    if is_float:
        vacc.add_incoming(
            ConstantVector([const_float(1.0, F32)] * 4), entry
        )
    else:
        vacc.add_incoming(zeroinitializer(v4i), entry)
    vacc.add_incoming(nxt, latch)
    verify_module(m)
    return m


def vector_bench(ops: tuple = VECTOR_BENCH_OPS) -> dict:
    """Bulk-vs-unrolled dispatch rate per vector opcode, compiled engine.

    For each opcode, the same micro-kernel is compiled and timed twice —
    once with the batched ndarray tier enabled (``bulk``), once with it
    forced off (``unrolled``, the per-lane tier) — and the golden outputs
    are required to match exactly before a ratio is reported.
    """
    import numpy as np

    from ..ir.types import F32 as _F32, I32 as _I32
    from ..vm.compile import set_vector_batching

    gen = np.random.default_rng(VECTOR_BENCH_INPUT["seed"])
    idata = gen.integers(-9, 9, 8).astype(np.int32)
    fdata = (gen.random(8).astype(np.float32) * 0.001) + 1.0
    n = VECTOR_BENCH_INPUT["n"]

    def runner(vm):
        pi = vm.memory.store_array(_I32, idata, "ip")
        pf = vm.memory.store_array(_F32, fdata, "fp")
        return {"r": vm.run("f", [pi, pf, n])}

    out = {}
    ratios = []
    for op in ops:
        cell = {}
        for mode in ("bulk", "unrolled"):
            prior = set_vector_batching(mode == "bulk")
            try:
                module = _vector_bench_module(op)
                injector = FaultInjector(
                    module, category="all", step_limit=20_000_000,
                    engine="compiled",
                )
                injector.warm()
                golden = injector.golden(runner)
                slots_before = VECTOR_EVENTS["ndarray_slots"]
                gc.collect()
                elapsed = float("inf")
                for _ in range(VECTOR_BENCH_SERIES):
                    t0 = time.perf_counter()
                    for _ in range(VECTOR_BENCH_REPEATS):
                        injector.golden(runner)
                    elapsed = min(elapsed, time.perf_counter() - t0)
            finally:
                set_vector_batching(prior)
            cell[mode] = {
                "dynamic_instructions": golden.dynamic_instructions,
                "output": repr(golden.output),
                "instructions_per_second": (
                    golden.dynamic_instructions * VECTOR_BENCH_REPEATS / elapsed
                ),
                "ndarray_slots_per_run": (
                    (VECTOR_EVENTS["ndarray_slots"] - slots_before)
                    / (VECTOR_BENCH_SERIES * VECTOR_BENCH_REPEATS)
                ),
            }
        matches = (
            cell["bulk"]["output"] == cell["unrolled"]["output"]
            and cell["bulk"]["dynamic_instructions"]
            == cell["unrolled"]["dynamic_instructions"]
        )
        cell["outputs_match"] = matches
        cell["speedup"] = (
            cell["bulk"]["instructions_per_second"]
            / cell["unrolled"]["instructions_per_second"]
        )
        ratios.append(cell["speedup"])
        out[op] = cell
    geomean = 1.0
    for r in ratios:
        geomean *= r
    out["geomean_speedup"] = geomean ** (1.0 / len(ratios)) if ratios else None
    return out


def shard_bench(counts: tuple = SHARD_BENCH_COUNTS) -> dict:
    """Shard-scaling throughput: the distributed-campaign tentpole's numbers.

    Runs the fixed mini-campaign schedule (vector_sum, one fixed input,
    full replays) as an N-way simulated cluster for each shard count,
    merges, and reports experiments/sec against the **simulated cluster
    wall** — ``max(shard seconds) + merge seconds``, what N single-core
    hosts sharing a filesystem would deliver.  Shards run *sequentially*
    (each is timed with the machine to itself), so the numbers are honest
    on any core count; ``machine_seconds`` records what this one machine
    actually spent.  Every count's merged journal must be byte-identical
    to the 1-shard run's, or the speedup is not reported.
    """
    import tempfile
    from dataclasses import asdict
    from pathlib import Path

    from ..core.cluster import run_cell_sharded

    workload = get_workload("vector_sum")
    module = workload.compile("avx")
    config = MINI_CONFIG
    planned = config.experiments_per_campaign * config.max_campaigns

    def cell(store, shard):
        # Built inside the child: a real cluster host compiles the module
        # and runs its own golden, so that cost belongs in the shard wall.
        injector = FaultInjector(
            module, category="all", step_limit=2_000_000, engine="direct",
            checkpoint_interval=None,
        )
        recorder = store.recorder(
            experiment="perf-shard",
            cell={"benchmark": workload.name, "input": dict(SHARD_BENCH_INPUT)},
            scale="bench",
            injector=injector,
            seed=SEED,
            config=asdict(config),
            planned=planned,
        )

        def factory(rng: Random):
            return workload.build_runner(dict(SHARD_BENCH_INPUT))

        return run_campaigns(
            injector, factory, config, seed=SEED, recorder=recorder,
            shard=shard,
        )

    out: dict = {
        "workload": workload.name,
        "input": dict(SHARD_BENCH_INPUT),
        "experiments": planned,
        "config": asdict(config),
        "engine": "direct",
        "checkpoint_interval": None,
        "timing_model": (
            "shards run sequentially, each timed alone; "
            "simulated_wall_seconds = max(shard) + merge"
        ),
        "counts": {},
    }
    reference_journal: bytes | None = None
    reference_eps: float | None = None
    with tempfile.TemporaryDirectory(prefix="shard_bench.") as tmp:
        for count in counts:
            result = run_cell_sharded(
                Path(tmp) / f"x{count}", count, cell, sequential=True
            )
            journal = (result.merged_store / "journal.jsonl").read_bytes()
            if reference_journal is None:
                reference_journal = journal
            wall = result.simulated_wall_seconds
            eps = planned / wall
            if reference_eps is None:
                reference_eps = eps
            totals = dict(result.merge.outcomes)
            out["counts"][str(count)] = {
                "shards": count,
                "shard_seconds": [round(s, 6) for s in result.shard_seconds],
                "max_shard_seconds": max(result.shard_seconds),
                "merge_seconds": result.merge_seconds,
                "simulated_wall_seconds": wall,
                "machine_seconds": result.machine_seconds,
                "experiments_per_second": eps,
                "scaling_vs_1_shard": eps / reference_eps,
                "p99_shard_skew": result.skew(0.99),
                "journal_matches_serial": journal == reference_journal,
                "totals": totals,
            }
    return out


def bench_results(
    jobs: int = 1,
    engines: tuple = ENGINES,
    checkpoint_interval: int | None = MINI_CHECKPOINT_INTERVAL,
    shard_counts: tuple | None = SHARD_BENCH_COUNTS,
) -> dict:
    """Per-engine timings for both regimes — the ``BENCH_campaign.json``
    payload.

    ``regimes`` (the first engine's, i.e. the direct engine's, numbers)
    keeps the pre-existing shape; ``engines`` adds the per-engine split,
    ``direct_vs_instrumented`` / ``compiled_vs_direct`` the cross-engine
    speedups (including the faulty-run-only ratios the direct engine's ≥2x
    and the compiled engine's ≥1.5x claims rest on), and ``dispatch`` the
    raw dynamic-instructions-per-second rate per engine.
    """
    per_engine = {}
    for engine in engines:
        injector = _mini_injector(engine, checkpoint_interval)
        injector.warm()
        per_engine[engine] = {
            r["regime"]: r
            for r in (
                _mini_campaign(
                    "unique", jobs, engine, checkpoint_interval, injector
                ),
                _mini_campaign(
                    "pooled", jobs, engine, checkpoint_interval, injector
                ),
            )
        }
    payload = {
        "benchmark": "campaign-throughput",
        "workload": "vector_sum",
        "seed": SEED,
        "config": {
            "experiments_per_campaign": MINI_CONFIG.experiments_per_campaign,
            "campaigns": MINI_CONFIG.max_campaigns,
        },
        "jobs": jobs,
        "checkpoint_interval": checkpoint_interval,
        "regimes": per_engine[engines[0]],
        "engines": per_engine,
        "checkpoint": checkpoint_bench(),
        "dispatch": dispatch_bench(engines),
    }
    if shard_counts:
        payload["shard_bench"] = shard_bench(shard_counts)
    if "compiled" in engines:
        payload["compiled"] = compiled_bench()
        payload["vector"] = vector_bench()

    def cross(fast: str, slow: str) -> dict | None:
        if fast not in per_engine or slow not in per_engine:
            return None
        comparison = {}
        for regime in per_engine[fast]:
            f = per_engine[fast][regime]
            s = per_engine[slow][regime]
            cell = {"seconds": s["seconds"] / f["seconds"]}
            if f["faulty_seconds"] and s["faulty_seconds"]:
                cell["faulty_seconds"] = s["faulty_seconds"] / f["faulty_seconds"]
            comparison[regime] = cell
        return comparison

    for key, fast, slow in (
        ("direct_vs_instrumented", "direct", "instrumented"),
        ("compiled_vs_direct", "compiled", "direct"),
    ):
        comparison = cross(fast, slow)
        if comparison:
            payload[key] = comparison
    return payload


def run(
    scale: str = "quick",
    jobs: int = 1,
    engine: str | None = None,
    checkpoint_interval: int | None = MINI_CHECKPOINT_INTERVAL,
    shard_counts: tuple | None = SHARD_BENCH_COUNTS,
) -> ExperimentReport:
    engines = ENGINES if engine is None else (engine,)
    results = bench_results(
        jobs=jobs, engines=engines, checkpoint_interval=checkpoint_interval,
        shard_counts=shard_counts,
    )
    rows = [
        cell
        for engine_cells in results["engines"].values()
        for cell in engine_cells.values()
    ]
    report = ExperimentReport(
        name="perf",
        scale=scale,
        headers=[
            "engine", "regime", "n", "seconds", "faulty", "baseline",
            "speedup", "totals ok",
        ],
        rows=rows,
    )
    report.notes.append(
        "Fixed seeded mini-campaign (vector_sum, seed 7, 4x50 experiments). "
        "'unique' isolates the interpreter fast path; 'pooled' adds "
        "golden-run memoization. Baselines were measured at the seed "
        "commit; 'totals ok' checks the outcome counts are byte-identical "
        "to the pre-optimization runs — and, across engines, that direct "
        "and instrumented injection agree experiment-for-experiment."
    )
    for key, label in (
        ("direct_vs_instrumented", "direct vs instrumented"),
        ("compiled_vs_direct", "compiled vs direct"),
    ):
        comparison = results.get(key)
        if comparison:
            parts = [
                f"{regime}: {cell['seconds']:.2f}x overall"
                + (
                    f", {cell['faulty_seconds']:.2f}x faulty-run-only"
                    if "faulty_seconds" in cell
                    else ""
                )
                for regime, cell in comparison.items()
            ]
            report.notes.append(f"{label} — " + "; ".join(parts))
    cb = results.get("compiled")
    if cb:
        report.notes.append(
            f"compiled engine faulty sweep (full replays, n="
            f"{cb['input']['n']}): {cb['faulty_speedup']:.2f}x over the "
            f"direct engine, bit-identical="
            f"{'yes' if cb['totals_match_baseline'] else 'NO'}"
        )
    dispatch = results.get("dispatch")
    if dispatch:
        parts = [
            f"{engine}: {cell['instructions_per_second'] / 1e6:.2f}M insn/s"
            for engine, cell in dispatch.items()
        ]
        report.notes.append(
            "dispatch rate (golden runs, warm caches) — " + "; ".join(parts)
        )
        compiled_cell = dispatch.get("compiled")
        if compiled_cell and "speedup_vs_frozen_baseline" in compiled_cell:
            report.notes.append(
                f"compiled dispatch vs pre-batching frozen baseline "
                f"({DISPATCH_BASELINE_COMPILED / 1e6:.2f}M insn/s): "
                f"{compiled_cell['speedup_vs_frozen_baseline']:.2f}x, "
                f"{compiled_cell['ndarray_slots_per_run']:.0f} ndarray "
                f"slots/run"
            )
    vec = results.get("vector")
    if vec:
        parts = [
            f"{op}: {cell['speedup']:.2f}x"
            + ("" if cell["outputs_match"] else " (MISMATCH)")
            for op, cell in vec.items()
            if isinstance(cell, dict)
        ]
        report.notes.append(
            "batched-vs-unrolled vector opcodes (compiled engine) — "
            + "; ".join(parts)
            + f"; geomean {vec['geomean_speedup']:.2f}x"
        )
    sb = results.get("shard_bench")
    if sb:
        parts = [
            f"{count} shard(s): {cell['experiments_per_second']:.0f} exp/s "
            f"({cell['scaling_vs_1_shard']:.2f}x)"
            + ("" if cell["journal_matches_serial"] else " (JOURNAL MISMATCH)")
            for count, cell in sb["counts"].items()
        ]
        report.notes.append(
            "shard scaling (sequentially timed shards, simulated cluster "
            "wall = max shard + merge) — " + "; ".join(parts)
        )
    ck = results.get("checkpoint")
    if ck:
        report.notes.append(
            f"checkpoint restore (late-fault bias, interval "
            f"{ck['checkpoint_interval']}): {ck['faulty_speedup']:.2f}x "
            f"faulty-run speedup over full replay, "
            f"{ck['stats']['sites_skipped']} sites skipped, "
            f"{ck['stats']['convergence_exits']} convergence exits, "
            f"bit-identical={'yes' if ck['totals_match_baseline'] else 'NO'}"
        )
    return report


def render(report: ExperimentReport) -> str:
    rows = [
        [
            r["engine"],
            r["regime"],
            r["experiments"],
            f"{r['seconds']:.3f}s",
            f"{r['faulty_seconds']:.3f}s" if r["faulty_seconds"] else "-",
            f"{r['baseline_seconds']:.3f}s",
            f"{r['speedup']:.1f}x",
            "yes" if r["totals_match_baseline"] else "NO",
        ]
        for r in report.rows
    ]
    out = render_table(
        report.headers, rows, title="Campaign throughput vs seed-commit baseline"
    )
    return out + "\n\n" + "\n".join(report.notes)
