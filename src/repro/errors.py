"""Exception taxonomy shared by every repro subsystem.

The hierarchy mirrors the layering of the system: IR-structural errors,
frontend (MiniISPC) compilation errors, VM traps raised while executing IR,
and fault-injection configuration errors.  Code that drives whole pipelines
(e.g. :mod:`repro.core.injector`) catches :class:`VMTrap` subclasses to
classify a faulty run as a *Crash* outcome, so the trap classes carry enough
context (kind, message) to be reported in experiment output.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# ---------------------------------------------------------------------------
# IR-level errors
# ---------------------------------------------------------------------------


class IRError(ReproError):
    """Structural misuse of the IR API (bad operand type, missing block...)."""


class VerificationError(IRError):
    """The IR verifier found a malformed module.

    Carries the full list of individual complaints so tests can assert on
    specific failures.
    """

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        super().__init__("; ".join(self.problems))


class IRParseError(IRError):
    """Textual IR could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Frontend (MiniISPC) errors
# ---------------------------------------------------------------------------


class FrontendError(ReproError):
    """Base class for MiniISPC compilation errors."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        loc = ""
        if line is not None:
            loc = f"{line}:{col if col is not None else '?'}: "
        super().__init__(loc + message)


class LexError(FrontendError):
    """Invalid token in MiniISPC source."""


class ParseError(FrontendError):
    """MiniISPC source does not conform to the grammar."""


class SemaError(FrontendError):
    """Type or uniform/varying qualifier violation."""


# ---------------------------------------------------------------------------
# VM traps — runtime failures of the simulated machine
# ---------------------------------------------------------------------------


class VMTrap(ReproError):
    """Base class for simulated hardware/OS traps.

    A trap terminates the simulated program and is classified as a *Crash*
    outcome by the fault-injection driver, matching the paper's definition of
    crash as "a system failure, a program crash, or any other issue that could
    easily be detected by the end user".
    """

    kind = "trap"


class MemoryFault(VMTrap):
    """Out-of-bounds or unmapped memory access (simulated SIGSEGV)."""

    kind = "segfault"


class AlignmentFault(VMTrap):
    """Misaligned access where the ISA requires natural alignment."""

    kind = "alignment"


class ArithmeticTrap(VMTrap):
    """Integer division by zero or INT_MIN / -1 overflow (simulated SIGFPE)."""

    kind = "sigfpe"


class StepLimitExceeded(VMTrap):
    """The program exceeded its dynamic instruction budget (simulated hang).

    Fault injection can turn terminating loops into unbounded ones; real
    campaigns kill such runs with a watchdog timeout and report them as
    crashes.  The VM enforces a configurable step limit for the same purpose.
    """

    kind = "timeout"


class InvalidOperation(VMTrap):
    """The interpreter met IR it cannot execute (undefined function, etc.)."""

    kind = "invalid-op"


# ---------------------------------------------------------------------------
# Fault-injection / campaign configuration errors
# ---------------------------------------------------------------------------


class InjectionError(ReproError):
    """Misconfigured fault-injection experiment (bad site index, no sites...)."""


class DetectionEvent(ReproError):
    """Raised by a detector runtime call when an invariant check fails.

    This is *not* an error in the tooling: it is the detector firing.  The
    injector catches it and records the run as detected.  It derives from
    ``ReproError`` so stray events surface loudly if a driver forgets to
    handle them.
    """

    def __init__(self, detector: str, message: str):
        self.detector = detector
        super().__init__(f"[{detector}] {message}")
