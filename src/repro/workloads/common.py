"""Shared helpers for workload runner construction."""

from __future__ import annotations

import numpy as np

from ..ir.types import F32, I32
from ..vm.interpreter import Interpreter


def f32(values) -> np.ndarray:
    return np.asarray(values, dtype=np.float32)


def i32(values) -> np.ndarray:
    return np.asarray(values, dtype=np.int32)


class ArrayArgs:
    """Builds kernel arguments against one VM and reads back outputs."""

    def __init__(self, vm: Interpreter):
        self.vm = vm
        self._outputs: list[tuple[str, object, int, object]] = []

    def in_f32(self, data: np.ndarray, label: str = "in") -> int:
        return self.vm.memory.store_array(F32, f32(data), label)

    def in_i32(self, data: np.ndarray, label: str = "in") -> int:
        return self.vm.memory.store_array(I32, i32(data), label)

    def out_f32(self, name: str, size: int, init: np.ndarray | None = None) -> int:
        data = f32(np.zeros(size)) if init is None else f32(init)
        addr = self.vm.memory.store_array(F32, data, name)
        self._outputs.append((name, F32, size, addr))
        return addr

    def out_i32(self, name: str, size: int, init: np.ndarray | None = None) -> int:
        data = i32(np.zeros(size)) if init is None else i32(init)
        addr = self.vm.memory.store_array(I32, data, name)
        self._outputs.append((name, I32, size, addr))
        return addr

    def collect(self, extra: dict | None = None) -> dict:
        out: dict = {}
        for name, elem, size, addr in self._outputs:
            out[name] = self.vm.memory.load_array(elem, addr, size)
        if extra:
            out.update(extra)
        return out
