"""Sorting (ISPC suite benchmark): vectorized rank sort.

Each lane computes the final position (rank) of one element by comparing it
against the whole array, then scatters the element to its rank — the
data-parallel sort shape the ISPC ``sort`` example uses for its histogram
phases.  Exercises: gathers, scatters with a *computed* (non-linear) varying
index, varying comparisons, uniform inner loops inside foreach.
"""

from __future__ import annotations

from random import Random

import numpy as np

from .common import ArrayArgs, i32
from .registry import ISPC_SUITE, Workload, register

SOURCE = """
export void sort_ispc(uniform int a[], uniform int out[], uniform int n) {
    foreach (i = 0 ... n) {
        int v = a[i];
        int rank = 0;
        for (uniform int j = 0; j < n; j++) {
            uniform int w = a[j];
            // Stable rank: equal keys are ordered by original index.
            if (w < v || (w == v && j < i)) {
                rank += 1;
            }
        }
        out[rank] = v;
    }
}
"""

#: Array lengths standing in for Table I's [1000, 100000], scaled ~30x down.
_LENGTHS = (21, 34, 55)


def _sample(rng: Random) -> dict:
    return {"n": rng.choice(_LENGTHS), "seed": rng.randrange(2**31)}


def _make_runner(params: dict):
    n = params["n"]
    data = i32(np.random.default_rng(params["seed"]).integers(0, 500, n))

    def runner(vm):
        args = ArrayArgs(vm)
        pa = args.in_i32(data, "a")
        pout = args.out_i32("sorted", n)
        vm.run("sort_ispc", [pa, pout, n])
        return args.collect()

    return runner


SORTING = register(
    Workload(
        name="sorting",
        suite=ISPC_SUITE,
        language="ISPC",
        description="Vectorized rank sort (scatter to computed positions)",
        source=SOURCE,
        entry="sort_ispc",
        sample_input=_sample,
        make_runner=_make_runner,
        input_summary=f"1D array length: {list(_LENGTHS)} ([1000,100000] scaled)",
    )
)
