"""§IV-E micro-benchmarks: vector copy, vector dot product, vector sum.

``vcopy`` is the paper's Fig. 6 verbatim (modulo MiniISPC's mandatory
initializers).  These three drive the detector study of Fig. 12.
"""

from __future__ import annotations

from random import Random

import numpy as np

from .common import ArrayArgs, f32, i32
from .registry import MICRO, Workload, register

VCOPY_SOURCE = """
// Paper Fig. 6: ISPC implementation of vector copy.
export void vcopy_ispc(uniform int a1[], uniform int a2[], uniform int n) {
    foreach (i = 0 ... n) {
        a2[i] = a1[i];
    }
    return;
}
"""

DOT_SOURCE = """
export uniform float dot_ispc(uniform float a[], uniform float b[],
                              uniform int n) {
    varying float sum = 0.0;
    foreach (i = 0 ... n) {
        sum += a[i] * b[i];
    }
    return reduce_add(sum);
}
"""

VSUM_SOURCE = """
export uniform float vsum_ispc(uniform float a[], uniform int n) {
    varying float sum = 0.0;
    foreach (i = 0 ... n) {
        sum += a[i];
    }
    return reduce_add(sum);
}
"""

#: Predefined input lengths; deliberately not multiples of Vl so the partial
#: (masked) path is always exercised.
_LENGTHS = (67, 93, 131, 185)


def _sample(rng: Random) -> dict:
    return {"n": rng.choice(_LENGTHS), "seed": rng.randrange(2**31)}


def _vcopy_runner(params: dict):
    n = params["n"]
    data = i32(np.random.default_rng(params["seed"]).integers(-1000, 1000, n))

    def runner(vm):
        args = ArrayArgs(vm)
        a1 = args.in_i32(data, "a1")
        a2 = args.out_i32("a2", n)
        vm.run("vcopy_ispc", [a1, a2, n])
        return args.collect()

    return runner


def _dot_runner(params: dict):
    n = params["n"]
    rng = np.random.default_rng(params["seed"])
    a = f32(rng.uniform(-1, 1, n))
    b = f32(rng.uniform(-1, 1, n))

    def runner(vm):
        args = ArrayArgs(vm)
        pa = args.in_f32(a, "a")
        pb = args.in_f32(b, "b")
        result = vm.run("dot_ispc", [pa, pb, n])
        return {"dot": float(result)}

    return runner


def _vsum_runner(params: dict):
    n = params["n"]
    a = f32(np.random.default_rng(params["seed"]).uniform(-1, 1, n))

    def runner(vm):
        args = ArrayArgs(vm)
        pa = args.in_f32(a, "a")
        result = vm.run("vsum_ispc", [pa, n])
        return {"sum": float(result)}

    return runner


VCOPY = register(
    Workload(
        name="vcopy",
        suite=MICRO,
        language="ISPC",
        description="Vector copy micro-benchmark (paper Fig. 6)",
        source=VCOPY_SOURCE,
        entry="vcopy_ispc",
        sample_input=_sample,
        make_runner=_vcopy_runner,
        input_summary=f"1D array length: {list(_LENGTHS)}",
    )
)

DOT_PRODUCT = register(
    Workload(
        name="dot_product",
        suite=MICRO,
        language="ISPC",
        description="Vector dot product micro-benchmark",
        source=DOT_SOURCE,
        entry="dot_ispc",
        sample_input=_sample,
        make_runner=_dot_runner,
        input_summary=f"1D array length: {list(_LENGTHS)}",
    )
)

VECTOR_SUM = register(
    Workload(
        name="vector_sum",
        suite=MICRO,
        language="ISPC",
        description="Vector sum micro-benchmark",
        source=VSUM_SOURCE,
        entry="vsum_ispc",
        sample_input=_sample,
        make_runner=_vsum_runner,
        input_summary=f"1D array length: {list(_LENGTHS)}",
    )
)
