"""Stencil (ISPC suite benchmark): iterated 2D 5-point stencil.

Ping-pong time stepping over a flattened 2D grid; the inner dimension is
vectorized with ``foreach`` so the loads at ``i-1``/``i+1`` exercise the
unit-stride-with-offset path and every row ends in a masked partial
iteration.  This is the array-intensive, address-heavy kernel the paper
reports among the highest SDC rates.
"""

from __future__ import annotations

from random import Random

import numpy as np

from .common import ArrayArgs, f32
from .registry import ISPC_SUITE, Workload, register

SOURCE = """
export void stencil_ispc(uniform float a[], uniform float b[],
                         uniform int rows, uniform int cols,
                         uniform int steps) {
    for (uniform int t = 0; t < steps; t++) {
        for (uniform int r = 1; r < rows - 1; r++) {
            if (t % 2 == 0) {
                foreach (i = 1 ... cols - 1) {
                    b[r*cols + i] = 0.2 * (a[r*cols + i]
                                  + a[r*cols + i - 1] + a[r*cols + i + 1]
                                  + a[(r-1)*cols + i] + a[(r+1)*cols + i]);
                }
            } else {
                foreach (i = 1 ... cols - 1) {
                    a[r*cols + i] = 0.2 * (b[r*cols + i]
                                  + b[r*cols + i - 1] + b[r*cols + i + 1]
                                  + b[(r-1)*cols + i] + b[(r+1)*cols + i]);
                }
            }
        }
    }
}
"""

#: Grid shapes standing in for Table I's 16x16..64x64.
_DIMS = ((8, 11), (10, 13), (12, 15))
_STEPS = 2


def _sample(rng: Random) -> dict:
    rows, cols = rng.choice(_DIMS)
    return {"rows": rows, "cols": cols, "steps": _STEPS, "seed": rng.randrange(2**31)}


def _make_runner(params: dict):
    rows, cols, steps = params["rows"], params["cols"], params["steps"]
    rng = np.random.default_rng(params["seed"])
    grid = f32(rng.uniform(0.0, 1.0, rows * cols))

    def runner(vm):
        args = ArrayArgs(vm)
        pa = args.out_f32("a", rows * cols, init=grid)
        pb = args.out_f32("b", rows * cols, init=grid)
        vm.run("stencil_ispc", [pa, pb, rows, cols, steps])
        return args.collect()

    return runner


STENCIL = register(
    Workload(
        name="stencil",
        suite=ISPC_SUITE,
        language="ISPC",
        description="Iterated 2D 5-point stencil with ping-pong buffers",
        source=SOURCE,
        entry="stencil_ispc",
        sample_input=_sample,
        make_runner=_make_runner,
        input_summary=f"2D grid: {list(_DIMS)} x {_STEPS} steps (16x16..64x64 scaled)",
    )
)
