"""Swaptions (PARVEC benchmark): Monte-Carlo swaption pricing, vectorized.

PARVEC's swaptions prices a portfolio with HJM Monte-Carlo simulation;
this port keeps the structure — per-swaption outer loop, simulation paths
across vector lanes, a short-rate path driven by pre-drawn Gaussian shocks,
discounted-payoff averaging — at reduced path counts.  The shocks are
pre-generated host-side (the original's Box-Muller RNG is host code too),
laid out ``[swaption][step][sim]`` so the per-step load is unit-stride
across lanes.
"""

from __future__ import annotations

from random import Random

import numpy as np

from .common import ArrayArgs, f32
from .registry import PARVEC, Workload, register

SOURCE = """
export void swaptions_ispc(uniform float shocks[], uniform float strikes[],
                           uniform float prices[],
                           uniform int nswaptions, uniform int nsims,
                           uniform int nsteps, uniform float r0,
                           uniform float vol, uniform float dt) {
    uniform float sqrtdt = sqrt(dt);
    for (uniform int s = 0; s < nswaptions; s++) {
        uniform float strike = strikes[s];
        varying float payoff_sum = 0.0;
        foreach (sim = 0 ... nsims) {
            float rate = r0;
            float discount = 0.0;
            for (uniform int t = 0; t < nsteps; t++) {
                float z = shocks[(s*nsteps + t)*nsims + sim];
                rate = rate + vol * sqrtdt * z;
                if (rate < 0.0) {
                    rate = 0.0;
                }
                discount = discount + rate * dt;
            }
            float payoff = max(rate - strike, 0.0);
            payoff_sum += exp(-discount) * payoff;
        }
        prices[s] = reduce_add(payoff_sum) / float(nsims);
    }
}
"""

#: (swaptions, simulations) standing in for Table I's [16,64] x [100,200].
_CONFIGS = ((2, 13), (3, 21), (4, 29))
_NSTEPS = 6


def _sample(rng: Random) -> dict:
    nswap, nsims = rng.choice(_CONFIGS)
    return {"nswaptions": nswap, "nsims": nsims, "seed": rng.randrange(2**31)}


def _make_runner(params: dict):
    nswap, nsims = params["nswaptions"], params["nsims"]
    rng = np.random.default_rng(params["seed"])
    shocks = f32(rng.standard_normal(nswap * _NSTEPS * nsims))
    strikes = f32(rng.uniform(0.03, 0.07, nswap))

    def runner(vm):
        args = ArrayArgs(vm)
        pz = args.in_f32(shocks, "shocks")
        pk = args.in_f32(strikes, "strikes")
        pp = args.out_f32("prices", nswap)
        vm.run(
            "swaptions_ispc",
            [pz, pk, pp, nswap, nsims, _NSTEPS, 0.05, 0.2, 0.1],
        )
        return args.collect()

    return runner


SWAPTIONS = register(
    Workload(
        name="swaptions",
        suite=PARVEC,
        language="C++",
        description="Monte-Carlo swaption pricing (PARVEC swaptions, reduced)",
        source=SOURCE,
        entry="swaptions_ispc",
        sample_input=_sample,
        make_runner=_make_runner,
        input_summary=f"(swaptions, sims): {list(_CONFIGS)} x {_NSTEPS} steps",
    )
)
