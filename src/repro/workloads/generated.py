"""Generator-backed workload family: auto-vec vs hand-vec forms of one kernel.

Each ``(seed, shape)`` recipe from :mod:`repro.ir.generate` contributes
three registry entries — the *same* per-lane computation rendered three
ways:

* ``gen-{shape}{seed}``          — hand-vectorized (frontend ``foreach``
  style: stride-``Vl`` masked loop, vector selects, lane-folded reduction);
* ``gen-{shape}{seed}-scalar``   — the scalar counted loop with real
  branches;
* ``gen-{shape}{seed}-auto``     — the scalar form pushed through the
  auto-vectorizer (:mod:`repro.passes.vectorize`) for the requested target.

All three produce bit-identical golden outputs (the recipes restrict
reductions to exactly-associative integer ops), so a ``vecdiff`` campaign
comparing their fault-outcome distributions is measuring the *vectorization
strategy*, not a changed computation.

Unlike the MiniISPC benchmarks these workloads build IR directly, so
:meth:`GeneratedWorkload.compile` overrides source compilation; the
detector flags are accepted for interface compatibility but insert nothing
(generated kernels carry no ``foreach`` metadata for detectors to hook).
The ``source`` field holds the canonical recipe text
(:func:`repro.ir.generate.recipe_source`) plus the form tag, so
:func:`~repro.workloads.registry.registry_fingerprint` — and every campaign
manifest pinning it — keys off recipe *content*: same seed ⇒ byte-identical
manifests, changed generator ⇒ refused resume.
"""

from __future__ import annotations

from random import Random

import numpy as np

from ..frontend.target import Target, get_target
from ..ir.generate import (
    GENERATOR_VERSION,
    KERNEL_SHAPES,
    build_handvec_kernel,
    build_scalar_kernel,
    make_recipe,
    recipe_source,
)
from ..ir.module import Module
from .common import ArrayArgs, f32, i32
from .registry import GENERATED, Workload, register

#: The forms every recipe is rendered in.  The bare name is the
#: hand-vectorized form (the paper's subject programs are hand-vectorized,
#: so it keeps the unsuffixed name).
FORMS = ("handvec", "scalar", "auto")

#: Seeds registered by default at import time.  ``ensure_generated``
#: registers further seeds on demand.
DEFAULT_SEEDS = (0, 1)

#: Input lengths; none divides any target's Vl (4/8/16), so hand-vec and
#: auto-vec forms always execute a partial-mask iteration.
_LENGTHS = (19, 33, 47, 85)


class GeneratedWorkload(Workload):
    """A workload whose module is built from a recipe, not MiniISPC source."""

    def __init__(self, *, seed: int, shape: str, form: str, **kwargs):
        super().__init__(**kwargs)
        self.seed = seed
        self.shape = shape
        self.form = form

    def compile(
        self,
        target: Target | str = "avx",
        foreach_detectors: bool = False,
        uniform_detectors: bool = False,
    ) -> Module:
        tgt = get_target(target) if isinstance(target, str) else target
        key = (tgt.name, foreach_detectors, uniform_detectors)
        module = self._module_cache.get(key)
        if module is None:
            with self._compile_lock:
                module = self._module_cache.get(key)
                if module is None:
                    module = self._build(tgt)
                    self._module_cache[key] = module
        return module

    def _build(self, target: Target) -> Module:
        if self.form == "scalar":
            # Target-independent, but cached per target like everything
            # else so campaign fingerprints stay per-(workload, target).
            return build_scalar_kernel(
                self.seed, self.shape, name=f"{self.name}-{target.name}"
            )
        if self.form == "handvec":
            return build_handvec_kernel(
                self.seed, self.shape, target, name=f"{self.name}-{target.name}"
            )
        # auto: scalar form through the vectorizer.  Import here — the
        # passes package imports workloads-adjacent modules and this file
        # is imported during registry loading.
        from ..passes.vectorize import auto_vectorized

        scalar = build_scalar_kernel(self.seed, self.shape)
        module, report = auto_vectorized(
            scalar, target, name=f"{self.name}-{target.name}"
        )
        if not report.vectorized:
            raise RuntimeError(
                f"auto-vectorization of {self.name} bailed out: "
                f"{[loop.to_dict() for loop in report.loops]}"
            )
        return module


def _sample(rng: Random) -> dict:
    return {"n": rng.choice(_LENGTHS), "seed": rng.randrange(2**31)}


def _make_runner(params: dict):
    n = params["n"]
    gen = np.random.default_rng(params["seed"])
    a = i32(gen.integers(-40, 40, n))
    x = f32(gen.random(n) * 4 - 2)

    def runner(vm):
        args = ArrayArgs(vm)
        pa = args.in_i32(a, "a")
        px = args.in_f32(x, "x")
        po = args.out_i32("out", n)
        pf = args.out_f32("fout", n)
        r = vm.run("kernel", [pa, px, po, pf, n])
        return args.collect(extra={"r": int(r)})

    return runner


_FORM_DESCRIPTION = {
    "handvec": "hand-vectorized (foreach-style masked stride-Vl loop)",
    "scalar": "scalar counted loop with branches",
    "auto": "scalar form auto-vectorized by passes/vectorize",
}


def workload_name(seed: int, shape: str, form: str) -> str:
    base = f"gen-{shape}{seed}"
    return base if form == "handvec" else f"{base}-{form}"


def _make_workload(seed: int, shape: str, form: str) -> GeneratedWorkload:
    recipe = make_recipe(seed, shape)
    source = f"; form = {form}\n{recipe_source(recipe)}"
    return GeneratedWorkload(
        seed=seed,
        shape=shape,
        form=form,
        name=workload_name(seed, shape, form),
        suite=GENERATED,
        language="IR",
        description=(
            f"Generated {shape} kernel (seed {seed}, generator "
            f"v{GENERATOR_VERSION}): {_FORM_DESCRIPTION[form]}"
        ),
        source=source,
        entry="kernel",
        sample_input=_sample,
        make_runner=_make_runner,
        input_summary=f"1D array length: {list(_LENGTHS)}",
    )


def ensure_generated(seed: int, shape: str) -> list[GeneratedWorkload]:
    """Register (idempotently) all three forms of one recipe."""
    from .registry import _REGISTRY

    if shape not in KERNEL_SHAPES:
        raise ValueError(f"unknown kernel shape {shape!r}")
    out = []
    for form in FORMS:
        name = workload_name(seed, shape, form)
        existing = _REGISTRY.get(name)
        out.append(existing or register(_make_workload(seed, shape, form)))
    return out


def generated_workloads() -> list[GeneratedWorkload]:
    """Every currently-registered generated workload, sorted by name."""
    from .registry import _REGISTRY, _ensure_loaded

    _ensure_loaded()
    return sorted(
        (w for w in _REGISTRY.values() if isinstance(w, GeneratedWorkload)),
        key=lambda w: w.name,
    )


def form_pairs(shapes=KERNEL_SHAPES, seeds=DEFAULT_SEEDS) -> list[tuple]:
    """(kernel-base-name, handvec workload, auto workload) per recipe."""
    pairs = []
    for shape in shapes:
        for seed in seeds:
            hand, _scalar, auto = ensure_generated(seed, shape)
            pairs.append((f"gen-{shape}{seed}", hand, auto))
    return pairs


for _seed in DEFAULT_SEEDS:
    for _shape in KERNEL_SHAPES:
        ensure_generated(_seed, _shape)

# Keep linters from seeing the loop variables as exports.
del _seed, _shape
