"""Blackscholes: European option pricing (ISPC suite benchmark).

The classic Black-Scholes closed-form priced per option across vector
lanes, with the Abramowitz-Stegun polynomial CNDF — the same computation
the ISPC example distribution vectorizes.  Exercises: varying math
intrinsics (log/exp/sqrt), a non-export helper with varying parameters,
ternary blends.
"""

from __future__ import annotations

from random import Random

import numpy as np

from .common import ArrayArgs, f32
from .registry import ISPC_SUITE, Workload, register

SOURCE = """
// Cumulative normal distribution, Abramowitz-Stegun 26.2.17.
float cndf(float d) {
    float ad = abs(d);
    float k = 1.0 / (1.0 + 0.2316419 * ad);
    float poly = k * (0.319381530 + k * (-0.356563782 + k * (1.781477937
               + k * (-1.821255978 + k * 1.330274429))));
    float pdf = 0.39894228 * exp(-0.5 * ad * ad);
    float w = 1.0 - pdf * poly;
    if (d < 0.0) {
        w = 1.0 - w;
    }
    return w;
}

export void blackscholes_ispc(uniform float sptprice[], uniform float strike[],
                              uniform float time[], uniform float rate,
                              uniform float volatility, uniform float prices[],
                              uniform int n) {
    foreach (i = 0 ... n) {
        float s = sptprice[i];
        float k = strike[i];
        float t = time[i];
        float sqrt_t = sqrt(t);
        float d1 = (log(s / k) + (rate + 0.5 * volatility * volatility) * t)
                 / (volatility * sqrt_t);
        float d2 = d1 - volatility * sqrt_t;
        float call = s * cndf(d1) - k * exp(-rate * t) * cndf(d2);
        prices[i] = call;
    }
}
"""

#: Option-batch sizes standing in for the ISPC suite's small/medium/large
#: simulation inputs (Table I), scaled to interpreter speed.
_SIZES = (18, 35, 67)


def _sample(rng: Random) -> dict:
    return {"n": rng.choice(_SIZES), "seed": rng.randrange(2**31)}


def _make_runner(params: dict):
    n = params["n"]
    rng = np.random.default_rng(params["seed"])
    spot = f32(rng.uniform(20.0, 120.0, n))
    strike = f32(rng.uniform(20.0, 120.0, n))
    time = f32(rng.uniform(0.1, 2.0, n))
    rate = float(np.float32(0.05))
    vol = float(np.float32(0.2))

    def runner(vm):
        args = ArrayArgs(vm)
        ps = args.in_f32(spot, "spot")
        pk = args.in_f32(strike, "strike")
        pt = args.in_f32(time, "time")
        pp = args.out_f32("prices", n)
        vm.run("blackscholes_ispc", [ps, pk, pt, rate, vol, pp, n])
        return args.collect()

    return runner


BLACKSCHOLES = register(
    Workload(
        name="blackscholes",
        suite=ISPC_SUITE,
        language="ISPC",
        description="Black-Scholes European option pricing",
        source=SOURCE,
        entry="blackscholes_ispc",
        sample_input=_sample,
        make_runner=_make_runner,
        input_summary=f"option batch: {list(_SIZES)} (sim_small/medium/large, scaled)",
    )
)
