"""Fluidanimate (PARVEC benchmark): SPH particle fluid, vectorized.

The PARVEC suite's fluidanimate is an SPH solver; this port keeps its
computational skeleton at reduced scale: per-particle density estimation
with a compact poly6-style kernel (all-pairs, lanes over particles), then a
pressure/viscosity force accumulation and a symplectic Euler integration
step with ground-plane clamping.  Exercises: nested uniform-j loops inside
foreach, varying ternaries, heavy float arithmetic — the scalar-vector mix
the paper reports for fluidanimate (it is their most scalar-heavy C++
benchmark).
"""

from __future__ import annotations

from random import Random

import numpy as np

from .common import ArrayArgs, f32
from .registry import PARVEC, Workload, register

SOURCE = """
export void fluid_step_ispc(uniform float px[], uniform float py[],
                            uniform float vx[], uniform float vy[],
                            uniform float density[],
                            uniform float pxn[], uniform float pyn[],
                            uniform int n, uniform float h,
                            uniform float dt, uniform int steps) {
    uniform float h2 = h * h;
    uniform float rest = 1.0;
    uniform float stiff = 0.5;
    for (uniform int t = 0; t < steps; t++) {
        // Density estimation: all-pairs compact kernel.
        foreach (i = 0 ... n) {
            float xi = px[i];
            float yi = py[i];
            float d = 0.0;
            for (uniform int j = 0; j < n; j++) {
                float dx = xi - px[j];
                float dy = yi - py[j];
                float r2 = dx * dx + dy * dy;
                if (r2 < h2) {
                    float w = h2 - r2;
                    d += w * w * w;
                }
            }
            density[i] = d;
        }
        // Pressure force + integration.
        foreach (i = 0 ... n) {
            float xi = px[i];
            float yi = py[i];
            float pi_ = stiff * (density[i] - rest);
            float fx = 0.0;
            float fy = 0.0;
            for (uniform int j = 0; j < n; j++) {
                float dx = xi - px[j];
                float dy = yi - py[j];
                float r2 = dx * dx + dy * dy;
                if (r2 < h2 && r2 > 1.0e-12) {
                    float r = sqrt(r2);
                    float pj = stiff * (density[j] - rest);
                    float push = (pi_ + pj) * (h - r) / r;
                    fx += push * dx;
                    fy += push * dy;
                }
            }
            float nvx = vx[i] + dt * fx;
            float nvy = vy[i] + dt * (fy - 9.8);
            float nx = xi + dt * nvx;
            float ny = yi + dt * nvy;
            // Ground plane: clamp and damp.
            if (ny < 0.0) {
                ny = 0.0;
                nvy = -0.5 * nvy;
            }
            vx[i] = nvx;
            vy[i] = nvy;
            // New positions go to scratch buffers: every lane of this sweep
            // must read the *old* positions of every other particle
            // (in-place update would make results depend on vector width).
            pxn[i] = nx;
            pyn[i] = ny;
        }
        foreach (i = 0 ... n) {
            px[i] = pxn[i];
            py[i] = pyn[i];
        }
    }
}
"""

#: Particle counts standing in for PARSEC's simsmall/simmedium.
_SIZES = (14, 22)
_STEPS = 2


def _sample(rng: Random) -> dict:
    return {"n": rng.choice(_SIZES), "seed": rng.randrange(2**31)}


def _make_runner(params: dict):
    n = params["n"]
    rng = np.random.default_rng(params["seed"])
    px = f32(rng.uniform(0.0, 1.0, n))
    py = f32(rng.uniform(0.1, 1.0, n))
    vx = f32(rng.uniform(-0.1, 0.1, n))
    vy = f32(np.zeros(n))

    def runner(vm):
        args = ArrayArgs(vm)
        ppx = args.out_f32("px", n, init=px)
        ppy = args.out_f32("py", n, init=py)
        pvx = args.out_f32("vx", n, init=vx)
        pvy = args.out_f32("vy", n, init=vy)
        pd = args.out_f32("density", n)
        pxn = args.in_f32(np.zeros(n), "pxn")
        pyn = args.in_f32(np.zeros(n), "pyn")
        vm.run(
            "fluid_step_ispc",
            [ppx, ppy, pvx, pvy, pd, pxn, pyn, n, 0.35, 0.01, _STEPS],
        )
        return args.collect()

    return runner


FLUIDANIMATE = register(
    Workload(
        name="fluidanimate",
        suite=PARVEC,
        language="C++",
        description="SPH particle fluid (PARVEC fluidanimate, reduced)",
        source=SOURCE,
        entry="fluid_step_ispc",
        sample_input=_sample,
        make_runner=_make_runner,
        input_summary=f"particles: {list(_SIZES)} x {_STEPS} steps (simsmall/simmedium scaled)",
    )
)
