"""Jacobi (SCL benchmark): Jacobi relaxation sweeps on a 2D Poisson grid.

MiniISPC port of the SCL Jacobi iteration: fixed boundary values, a source
term, ping-pong buffers, and a per-sweep residual computed with a varying
accumulator — the classic SCL shape.  The residual is part of the output so
faults that perturb convergence bookkeeping (not just the grid) count as
SDCs, as they would for a scientific user.
"""

from __future__ import annotations

from random import Random

import numpy as np

from .common import ArrayArgs, f32
from .registry import SCL, Workload, register

SOURCE = """
export void jacobi_ispc(uniform float u[], uniform float unew[],
                        uniform float f[], uniform float resid[],
                        uniform int rows, uniform int cols,
                        uniform int sweeps) {
    for (uniform int t = 0; t < sweeps; t++) {
        varying float rs = 0.0;
        for (uniform int r = 1; r < rows - 1; r++) {
            if (t % 2 == 0) {
                foreach (i = 1 ... cols - 1) {
                    float v = 0.25 * (u[r*cols + i - 1] + u[r*cols + i + 1]
                            + u[(r-1)*cols + i] + u[(r+1)*cols + i]
                            + f[r*cols + i]);
                    unew[r*cols + i] = v;
                    float d = v - u[r*cols + i];
                    rs += d * d;
                }
            } else {
                foreach (i = 1 ... cols - 1) {
                    float v = 0.25 * (unew[r*cols + i - 1] + unew[r*cols + i + 1]
                            + unew[(r-1)*cols + i] + unew[(r+1)*cols + i]
                            + f[r*cols + i]);
                    u[r*cols + i] = v;
                    float d = v - unew[r*cols + i];
                    rs += d * d;
                }
            }
        }
        resid[t] = sqrt(reduce_add(rs));
    }
}
"""

#: Grid shapes standing in for Table I's 32x32..192x192.
_DIMS = ((8, 11), (10, 13), (13, 14))
_SWEEPS = 4


def _sample(rng: Random) -> dict:
    rows, cols = rng.choice(_DIMS)
    return {"rows": rows, "cols": cols, "seed": rng.randrange(2**31)}


def _make_runner(params: dict):
    rows, cols = params["rows"], params["cols"]
    rng = np.random.default_rng(params["seed"])
    u0 = f32(np.zeros(rows * cols))
    # Fixed hot boundary on the first row, random source term.
    u0[:cols] = 1.0
    src = f32(rng.uniform(0.0, 0.1, rows * cols))

    def runner(vm):
        args = ArrayArgs(vm)
        pu = args.out_f32("u", rows * cols, init=u0)
        pn = args.out_f32("unew", rows * cols, init=u0)
        pf = args.in_f32(src, "f")
        pr = args.out_f32("resid", _SWEEPS)
        vm.run("jacobi_ispc", [pu, pn, pf, pr, rows, cols, _SWEEPS])
        return args.collect()

    return runner


JACOBI = register(
    Workload(
        name="jacobi",
        suite=SCL,
        language="ISPC",
        description="Jacobi relaxation with residual tracking",
        source=SOURCE,
        entry="jacobi_ispc",
        sample_input=_sample,
        make_runner=_make_runner,
        input_summary=f"2D grid: {list(_DIMS)} x {_SWEEPS} sweeps (32x32..192x192 scaled)",
    )
)
