"""Conjugate Gradient (SCL benchmark): dense SPD solver.

MiniISPC port of the SCL conjugate-gradient routine: dense matrix-vector
products with per-row vectorized reductions, axpy updates via foreach, and
the alpha/beta scalar recurrences in uniform control flow with an early
``break`` on stagnation.  The paper reports CG among the most resilient
benchmarks (many faults perturb an *iterative* process that re-converges) —
preserving the iterate-and-correct structure is what reproduces that.
"""

from __future__ import annotations

from random import Random

import numpy as np

from .common import ArrayArgs, f32
from .registry import SCL, Workload, register

SOURCE = """
uniform float dotp(uniform float a[], uniform float b[], uniform int n) {
    varying float s = 0.0;
    foreach (i = 0 ... n) {
        s += a[i] * b[i];
    }
    return reduce_add(s);
}

void matvec(uniform float a[], uniform float x[], uniform float y[],
            uniform int n) {
    for (uniform int r = 0; r < n; r++) {
        varying float acc = 0.0;
        foreach (i = 0 ... n) {
            acc += a[r*n + i] * x[i];
        }
        y[r] = reduce_add(acc);
    }
}

export void cg_ispc(uniform float a[], uniform float b[], uniform float x[],
                    uniform float r[], uniform float p[], uniform float ap[],
                    uniform int n, uniform int iters) {
    // x starts at zero: r = b, p = b.
    foreach (i = 0 ... n) {
        x[i] = 0.0;
        r[i] = b[i];
        p[i] = b[i];
    }
    uniform float rsold = dotp(r, r, n);
    for (uniform int it = 0; it < iters; it++) {
        matvec(a, p, ap, n);
        uniform float pap = dotp(p, ap, n);
        if (pap <= 0.0) {
            break;
        }
        uniform float alpha = rsold / pap;
        foreach (i = 0 ... n) {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        uniform float rsnew = dotp(r, r, n);
        if (rsnew < 1.0e-10) {
            break;
        }
        uniform float beta = rsnew / rsold;
        foreach (i = 0 ... n) {
            p[i] = r[i] + beta * p[i];
        }
        rsold = rsnew;
    }
}
"""

#: System sizes standing in for Table I's 32x32..256x256 grids.
_SIZES = (9, 13, 17)
_ITERS = 6


def _sample(rng: Random) -> dict:
    return {"n": rng.choice(_SIZES), "seed": rng.randrange(2**31)}


def _make_runner(params: dict):
    n = params["n"]
    rng = np.random.default_rng(params["seed"])
    # Symmetric positive-definite: M^T M + n I, then float32-rounded.
    m = rng.uniform(-1.0, 1.0, (n, n))
    a = f32(m.T @ m + n * np.eye(n)).ravel()
    b = f32(rng.uniform(-1.0, 1.0, n))

    def runner(vm):
        from ..ir.types import F32

        args = ArrayArgs(vm)
        pa = args.in_f32(a, "A")
        pb = args.in_f32(b, "b")
        px = args.out_f32("x", n)
        pr = args.out_f32("r", n)
        pp = args.out_f32("p", n)
        pap = args.out_f32("ap", n)
        vm.run("cg_ispc", [pa, pb, px, pr, pp, pap, n, _ITERS])
        # Only the solution vector is the user-visible output; the scratch
        # vectors (r, p, ap) are implementation detail.
        return {"x": vm.memory.load_array(F32, px, n)}

    return runner


CG = register(
    Workload(
        name="cg",
        suite=SCL,
        language="ISPC",
        description="Dense conjugate-gradient SPD solver",
        source=SOURCE,
        entry="cg_ispc",
        sample_input=_sample,
        make_runner=_make_runner,
        input_summary=f"system size: {list(_SIZES)} x {_ITERS} iters (32x32..256x256 scaled)",
    )
)
