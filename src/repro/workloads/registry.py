"""Workload registry: the paper's nine benchmarks plus the §IV-E micros.

A :class:`Workload` bundles MiniISPC source, an entry point, a *predefined
input space* (§IV-B draws each experiment's input at random from such a
set), and a runner builder that allocates inputs in a fresh VM, invokes the
kernel, and collects the output arrays that define SDC equality.

Compiled modules are cached per (workload, target, detector flags) — the
engine clones before instrumenting, so cached modules stay pristine.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from random import Random
from typing import Callable

from ..frontend.driver import compile_source
from ..frontend.target import Target, get_target
from ..ir.module import Module
from ..vm.interpreter import Interpreter

#: Bump when the registry's *semantics* change incompatibly (a workload's
#: input space, runner protocol, or output definition).  Campaign-store
#: manifests pin this alongside :func:`registry_fingerprint`; resuming a
#: store recorded under a different registry is refused as unsound.
REGISTRY_VERSION = 1

#: suite labels used in Table I
PARVEC = "Parvec"
ISPC_SUITE = "ISPC"
SCL = "SCL"
MICRO = "Micro"
#: generator-backed kernels (not in the paper's Table I)
GENERATED = "Generated"


@dataclass
class Workload:
    name: str
    suite: str
    language: str
    description: str
    source: str
    entry: str
    #: Draw one input instance (a plain dict of parameters) from the
    #: predefined input space.
    sample_input: Callable[[Random], dict]
    #: Build a deterministic runner for one input instance.
    make_runner: Callable[[dict], Callable[[Interpreter], dict]]
    #: Human-readable summary of the input space (Table I's "Test Input").
    input_summary: str = ""
    _module_cache: dict = field(default_factory=dict, repr=False)
    _compile_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    def compile(
        self,
        target: Target | str = "avx",
        foreach_detectors: bool = False,
        uniform_detectors: bool = False,
    ) -> Module:
        tgt = get_target(target) if isinstance(target, str) else target
        key = (tgt.name, foreach_detectors, uniform_detectors)
        module = self._module_cache.get(key)
        if module is None:
            # Double-checked under the lock: concurrent campaign-service
            # threads racing here must converge on ONE canonical module
            # object per key (fingerprints and golden caches key off it).
            with self._compile_lock:
                module = self._module_cache.get(key)
                if module is None:
                    module = compile_source(
                        self.source,
                        tgt,
                        name=f"{self.name}-{tgt.name}",
                        foreach_detectors=foreach_detectors,
                        uniform_detectors=uniform_detectors,
                    )
                    self._module_cache[key] = module
        return module

    def build_runner(self, params: dict) -> Callable[[Interpreter], dict]:
        """Build a runner that remembers its input.

        The returned runner carries ``params`` (so a parallel worker can
        rebuild it from a pickled schedule entry) and a hashable
        ``input_key`` identifying the input instance (so the engine's golden
        cache can memoize the golden run per distinct input).  Inputs with
        unhashable parameter values get ``input_key = None`` — still
        runnable, just never cached.
        """
        runner = self.make_runner(params)
        runner.params = dict(params)
        try:
            runner.input_key = (self.name, tuple(sorted(params.items())))
            hash(runner.input_key)
        except TypeError:
            runner.input_key = None
        return runner

    def runner_factory(self) -> Callable[[Random], Callable[[Interpreter], dict]]:
        def factory(rng: Random):
            return self.build_runner(self.sample_input(rng))

        return factory

    def reference_runner(self, seed: int = 0):
        """A runner for a fixed representative input (docs/examples)."""
        return self.make_runner(self.sample_input(Random(seed)))


_REGISTRY: dict[str, Workload] = {}

#: Memoized :func:`registry_fingerprint` value.  Hashing re-reads every
#: workload's full MiniISPC source (~tens of KB), and the fingerprint is
#: recomputed per manifest write and per ``verify`` — hot enough to matter
#: for the campaign service, which manifests every accepted submission.
#: Any registry mutation (:func:`register`) invalidates it.
_fingerprint_cache: str | None = None


def register(workload: Workload) -> Workload:
    global _fingerprint_cache
    if workload.name in _REGISTRY:
        raise ValueError(f"workload {workload.name!r} already registered")
    _REGISTRY[workload.name] = workload
    _fingerprint_cache = None
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def build_runner(name: str, params: dict):
    """Module-level :meth:`Workload.build_runner` by workload name.

    Picklable via ``functools.partial(build_runner, name)`` — this is the
    ``make_runner`` callable a :class:`~repro.core.parallel.WorkerContext`
    ships to worker processes.
    """
    return get_workload(name).build_runner(params)


def all_workloads(suite: str | None = None) -> list[Workload]:
    _ensure_loaded()
    ws = list(_REGISTRY.values())
    if suite is not None:
        ws = [w for w in ws if w.suite == suite]
    return ws


def benchmark_workloads() -> list[Workload]:
    """The nine Table-I benchmarks, in the paper's order."""
    _ensure_loaded()
    order = [
        "fluidanimate",
        "swaptions",
        "blackscholes",
        "sorting",
        "stencil",
        "raytracing",
        "chebyshev",
        "jacobi",
        "cg",
    ]
    return [_REGISTRY[n] for n in order]


def registry_fingerprint() -> str:
    """Content hash over every registered workload's identity.

    Covers name, suite, entry point, input-space summary, and the MiniISPC
    source itself — everything that determines what a stored experiment
    *meant*.  Campaign-store manifests pin it so a resumed campaign is
    guaranteed to splice new results onto old ones drawn from the same
    input spaces and kernels.

    Memoized: ``Workload.source`` is immutable after registration, so the
    hash only changes when the registry's membership does — the cache is
    dropped on every :func:`register` (which also covers the lazy
    :func:`_ensure_loaded` bulk registration).
    """
    global _fingerprint_cache
    _ensure_loaded()
    if _fingerprint_cache is not None:
        return _fingerprint_cache
    h = hashlib.sha256()
    for name in sorted(_REGISTRY):
        w = _REGISTRY[name]
        h.update(f"{name}\x00{w.suite}\x00{w.entry}\x00{w.input_summary}\x00".encode())
        h.update(hashlib.sha256(w.source.encode()).digest())
    _fingerprint_cache = h.hexdigest()
    return _fingerprint_cache


def micro_workloads() -> list[Workload]:
    """The §IV-E micro-benchmarks: vector copy, dot product, vector sum."""
    _ensure_loaded()
    return [_REGISTRY[n] for n in ("vcopy", "dot_product", "vector_sum")]


_loaded = False
#: Serializes the lazy bulk registration: without it a second thread
#: could observe a half-populated registry mid-import (the campaign
#: service resolves workloads from concurrent executor threads).
#: Reentrant because workload modules may consult the registry while
#: registering.
_load_lock = threading.RLock()


def _ensure_loaded() -> None:
    global _loaded
    if _loaded:
        return
    with _load_lock:
        if _loaded:
            return
        # Import for registration side effects.
        from . import (  # noqa: F401
            blackscholes,
            cg,
            chebyshev,
            fluidanimate,
            generated,
            jacobi,
            micro,
            raytracing,
            sorting,
            stencil,
            swaptions,
        )

        _loaded = True
