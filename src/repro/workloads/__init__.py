"""The paper's nine vector benchmarks plus the §IV-E micro-benchmarks."""

from .registry import (
    GENERATED,
    ISPC_SUITE,
    MICRO,
    PARVEC,
    SCL,
    Workload,
    all_workloads,
    benchmark_workloads,
    get_workload,
    micro_workloads,
    register,
)

__all__ = [
    "GENERATED",
    "ISPC_SUITE",
    "MICRO",
    "PARVEC",
    "SCL",
    "Workload",
    "all_workloads",
    "benchmark_workloads",
    "get_workload",
    "micro_workloads",
    "register",
]
