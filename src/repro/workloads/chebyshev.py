"""Chebyshev (SCL benchmark): coefficient projection + Clenshaw evaluation.

MiniISPC port of Burkardt's scientific-computing-library Chebyshev routines
(the paper's own ISPC ports of SCL are not distributed): compute the
Chebyshev coefficients of a sampled function on its nodes, then evaluate
the expansion at a batch of points with Clenshaw recurrence.  Exercises:
``cos`` across lanes, reduction loops, a lane-carried recurrence inside
foreach, uniform-indexed coefficient loads.
"""

from __future__ import annotations

from random import Random

import numpy as np

from .common import ArrayArgs, f32
from .registry import SCL, Workload, register

SOURCE = """
export void chebyshev_coeffs(uniform float fx[], uniform float c[],
                             uniform int n) {
    uniform float pi = 3.14159265;
    for (uniform int j = 0; j < n; j++) {
        varying float acc = 0.0;
        foreach (k = 0 ... n) {
            float angle = pi * float(j) * (float(k) + 0.5) / float(n);
            acc += fx[k] * cos(angle);
        }
        c[j] = 2.0 * reduce_add(acc) / float(n);
    }
}

export void chebyshev_eval(uniform float c[], uniform float x[],
                           uniform float y[], uniform int degree,
                           uniform int npts) {
    foreach (i = 0 ... npts) {
        float xi = x[i];
        float b0 = 0.0;
        float b1 = 0.0;
        for (uniform int j = degree - 1; j >= 1; j = j - 1) {
            uniform float cj = c[j];
            float tmp = 2.0 * xi * b0 - b1 + cj;
            b1 = b0;
            b0 = tmp;
        }
        // Clenshaw tail with the halved c0 convention.
        y[i] = xi * b0 - b1 + 0.5 * c[0];
    }
}
"""

#: Degrees standing in for Table I's [1, 256].
_DEGREES = (9, 17, 33)
_NPTS = 27


def _sample(rng: Random) -> dict:
    return {"degree": rng.choice(_DEGREES), "seed": rng.randrange(2**31)}


def _make_runner(params: dict):
    n = params["degree"]
    rng = np.random.default_rng(params["seed"])
    # Sample exp(x) at the Chebyshev nodes of [-1, 1].
    k = np.arange(n)
    nodes = np.cos(np.pi * (k + 0.5) / n)
    fx = f32(np.exp(nodes))
    xs = f32(rng.uniform(-1.0, 1.0, _NPTS))

    def runner(vm):
        args = ArrayArgs(vm)
        pfx = args.in_f32(fx, "fx")
        pc = args.out_f32("coeffs", n)
        vm.run("chebyshev_coeffs", [pfx, pc, n])
        px = args.in_f32(xs, "x")
        py = args.out_f32("y", _NPTS)
        vm.run("chebyshev_eval", [pc, px, py, n, _NPTS])
        return args.collect()

    return runner


CHEBYSHEV = register(
    Workload(
        name="chebyshev",
        suite=SCL,
        language="ISPC",
        description="Chebyshev coefficient projection and Clenshaw evaluation",
        source=SOURCE,
        entry="chebyshev_coeffs",
        sample_input=_sample,
        make_runner=_make_runner,
        input_summary=f"degree: {list(_DEGREES)} ([1,256] scaled), {_NPTS} eval points",
    )
)
