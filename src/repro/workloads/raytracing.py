"""Ray tracing (ISPC suite benchmark): sphere-scene primary-ray renderer.

One ray per lane over image columns; every sphere is tested with varying
control flow (discriminant test, depth test) and the closest hit is shaded
with a fixed directional light.  The paper's camera inputs (Sponza, Teapot,
Cornell) are replaced by three fixed sphere scenes of increasing size —
the substitution keeps the code path identical (per-lane traversal +
varying branching); only the scene description differs.
"""

from __future__ import annotations

from random import Random

import numpy as np

from .common import ArrayArgs, f32
from .registry import ISPC_SUITE, Workload, register

SOURCE = """
export void raytrace_ispc(uniform float cx[], uniform float cy[],
                          uniform float cz[], uniform float cr[],
                          uniform int nspheres, uniform float img[],
                          uniform int width, uniform int height) {
    for (uniform int y = 0; y < height; y++) {
        uniform float py = (float(y) + 0.5) / float(height) - 0.5;
        foreach (x = 0 ... width) {
            float px = (float(x) + 0.5) / float(width) - 0.5;
            // Normalized ray direction through the pixel, camera at origin.
            float inv = 1.0 / sqrt(px * px + py * py + 1.0);
            float rx = px * inv;
            float ry = py * inv;
            float rz = inv;
            float tmin = 1.0e30;
            float shade = 0.0;
            for (uniform int s = 0; s < nspheres; s++) {
                uniform float sx = cx[s];
                uniform float sy = cy[s];
                uniform float sz = cz[s];
                uniform float sr = cr[s];
                float b = rx * sx + ry * sy + rz * sz;
                float c = sx * sx + sy * sy + sz * sz - sr * sr;
                float disc = b * b - c;
                if (disc > 0.0) {
                    float t = b - sqrt(disc);
                    if (t > 0.001 && t < tmin) {
                        tmin = t;
                        float nx = (t * rx - sx) / sr;
                        float ny = (t * ry - sy) / sr;
                        float nz = (t * rz - sz) / sr;
                        shade = max(0.0, 0.577 * nx + 0.577 * ny - 0.577 * nz);
                    }
                }
            }
            img[y*width + x] = shade;
        }
    }
}
"""


def _scene(kind: str) -> dict:
    """Three fixed scenes standing in for the paper's camera inputs."""
    if kind == "teapot":  # one dominant object
        c = [(0.0, 0.0, 3.0, 1.0)]
    elif kind == "cornell":  # a small box of objects
        c = [
            (-0.8, -0.4, 3.5, 0.6),
            (0.8, -0.4, 3.5, 0.6),
            (0.0, 0.7, 4.0, 0.8),
        ]
    else:  # 'sponza': many occluding objects
        c = [
            (-1.2, 0.0, 4.0, 0.5),
            (-0.4, 0.2, 3.0, 0.4),
            (0.4, -0.2, 3.5, 0.45),
            (1.2, 0.1, 4.5, 0.55),
            (0.0, 0.0, 5.0, 1.0),
        ]
    arr = np.array(c, dtype=np.float32)
    return {
        "cx": arr[:, 0],
        "cy": arr[:, 1],
        "cz": arr[:, 2],
        "cr": arr[:, 3],
    }


_SCENES = ("sponza", "teapot", "cornell")
_IMAGE = (10, 7)  # width, height


def _sample(rng: Random) -> dict:
    return {"scene": rng.choice(_SCENES)}


def _make_runner(params: dict):
    scene = _scene(params["scene"])
    width, height = _IMAGE
    n = len(scene["cx"])

    def runner(vm):
        args = ArrayArgs(vm)
        pcx = args.in_f32(scene["cx"], "cx")
        pcy = args.in_f32(scene["cy"], "cy")
        pcz = args.in_f32(scene["cz"], "cz")
        pcr = args.in_f32(scene["cr"], "cr")
        img = args.out_f32("img", width * height)
        vm.run("raytrace_ispc", [pcx, pcy, pcz, pcr, n, img, width, height])
        return args.collect()

    return runner


RAYTRACING = register(
    Workload(
        name="raytracing",
        suite=ISPC_SUITE,
        language="ISPC",
        description="Primary-ray sphere renderer with per-lane traversal",
        source=SOURCE,
        entry="raytrace_ispc",
        sample_input=_sample,
        make_runner=_make_runner,
        input_summary=f"camera input: {list(_SCENES)} at {_IMAGE[0]}x{_IMAGE[1]}",
    )
)
