"""Seeded IR generators: fuzz modules and the generated kernel family.

Two generator tiers share this module (one implementation, no copy-paste
drift between the test suite and the workload registry):

* **Fuzz modules** (:func:`build_random_module`,
  :func:`build_remainder_module`) — adversarial loop-shaped IR the frontend
  never emits, used by ``tests/core/test_fuzz_engines.py`` to differential-
  test the three engines.
* **Kernel recipes** (:func:`make_recipe` + the ``build_*_kernel``
  emitters) — the generator-backed workload family of
  :mod:`repro.workloads.generated`.  A recipe is a plain, deterministic
  data structure (seeded expression trees); *two* emitters render it:

  - :func:`build_scalar_kernel` — a scalar counted loop with real control
    flow, the input the auto-vectorizer (:mod:`repro.passes.vectorize`)
    consumes;
  - :func:`build_handvec_kernel` — the hand-vectorized form: a stride-``Vl``
    masked loop in the style the MiniISPC frontend emits for ``foreach``
    (dynamic lane mask, masked loads/stores, vector selects for the
    conditional arms, vector accumulators with a lane fold).

  Because both emitters evaluate the *same* expression tree with the same
  per-lane operations — and integer reductions restrict themselves to
  two's-complement ``add/mul/xor`` which are exactly associative and
  commutative — the scalar, hand-vectorized, and auto-vectorized forms of
  one recipe produce bit-identical golden outputs.  That shared golden is
  what makes ``vecdiff`` campaign outcomes comparable across forms.

Determinism: recipes are derived from ``random.Random(f"{shape}:{seed}")``
(string seeding hashes with SHA-512 — stable across processes and
platforms), so registry fingerprints and campaign manifests built from
these kernels are byte-identical run to run.
"""

from __future__ import annotations

from random import Random

from ..frontend.target import Target, get_target
from .builder import IRBuilder
from .intrinsics import declare_intrinsic
from .module import Module
from .types import F32, FunctionType, I1, I8, I32, Type, pointer, vector
from .values import (
    ConstantVector,
    Value,
    const_float,
    const_int,
    zeroinitializer,
)
from .verifier import verify_module

V4I = vector(I32, 4)
V4F = vector(F32, 4)

#: Exactly-representable f32 constants, so golden values stay tame and
#: decode-time rounding is a no-op.
_F32_CONSTS = (0.25, 0.5, 1.5, 2.0, -0.75, 3.0)

_INT_OPS = ("add", "sub", "mul", "and", "or", "xor")
_VEC_OPS = ("add", "sub", "mul", "xor")
_FLOAT_OPS = ("fadd", "fsub", "fmul")
_ICMP = ("eq", "ne", "slt", "sle", "sgt", "sge")


def _mask_const(rng: Random) -> ConstantVector:
    return ConstantVector([const_int(I1, rng.randint(0, 1)) for _ in range(4)])


def build_random_module(seed: int) -> Module:
    """One random loop: ``f(ip: i32*, fp: f32*, n: i32) -> i32``.

    The loop header carries int/float/vector phis; the body mixes random
    arithmetic with guaranteed memory traffic (masked and unmasked) on the
    two 8-element argument arrays, every address clamped in-bounds with an
    ``and 7`` / lane-0 base so the *golden* run never faults — corrupted
    runs are free to.
    """
    rng = Random(seed)
    m = Module(f"fuzz{seed}")
    fn = m.add_function(
        "f", FunctionType(I32, (pointer(I32), pointer(F32), I32)), ["ip", "fp", "n"]
    )
    entry = fn.add_block("entry")
    loop = fn.add_block("loop")
    body = fn.add_block("body")
    latch = fn.add_block("latch")
    done = fn.add_block("done")

    b = IRBuilder(entry)
    ivp = b.bitcast(fn.args[0], pointer(V4I), "ivp")
    fvp = b.bitcast(fn.args[1], pointer(V4F), "fvp")  # noqa: F841 - shape parity
    b.br(loop)

    b.position_at_end(loop)
    i = b.phi(I32, "i")
    acc = b.phi(I32, "acc")
    facc = b.phi(F32, "facc")
    vacc = b.phi(V4I, "vacc")
    cmp = b.icmp("slt", i, fn.args[2], "cmp")
    b.condbr(cmp, body, done)

    b.position_at_end(body)
    ints = [i, acc, fn.args[2], b.i32(rng.randint(-20, 20))]
    floats = [facc, const_float(rng.choice(_F32_CONSTS), F32)]
    ivecs = [vacc]
    bools = []

    # Guaranteed memory traffic: scalar load/store on each array.
    idx = b.and_(rng.choice(ints), b.i32(7), "idx")
    ip_slot = b.gep(fn.args[0], idx, "ips")
    ints.append(b.load(ip_slot, "ild"))
    b.store(rng.choice(ints), ip_slot)
    fidx = b.and_(rng.choice(ints), b.i32(7), "fidx")
    fp_slot = b.gep(fn.args[1], fidx, "fps")
    floats.append(b.load(fp_slot, "fld"))
    b.store(rng.choice(floats), fp_slot)

    for _ in range(rng.randint(4, 12)):
        kind = rng.choice(
            ["int", "int", "float", "vec", "cmp", "select", "cast", "shuffle",
             "extract", "masked_load", "masked_store"]
        )
        if kind == "int":
            ints.append(
                b.binop(rng.choice(_INT_OPS), rng.choice(ints), rng.choice(ints))
            )
        elif kind == "float":
            floats.append(
                b.binop(
                    rng.choice(_FLOAT_OPS), rng.choice(floats), rng.choice(floats)
                )
            )
        elif kind == "vec":
            ivecs.append(
                b.binop(rng.choice(_VEC_OPS), rng.choice(ivecs), rng.choice(ivecs))
            )
        elif kind == "cmp":
            bools.append(
                b.icmp(rng.choice(_ICMP), rng.choice(ints), rng.choice(ints))
            )
        elif kind == "select" and bools:
            ints.append(
                b.select(rng.choice(bools), rng.choice(ints), rng.choice(ints))
            )
        elif kind == "cast":
            ints.append(b.fptosi(rng.choice(floats), I32))
        elif kind == "shuffle":
            mask = [rng.randint(0, 7) for _ in range(4)]
            ivecs.append(
                b.shufflevector(rng.choice(ivecs), rng.choice(ivecs), mask)
            )
        elif kind == "extract":
            ints.append(b.extractelement(rng.choice(ivecs), rng.randint(0, 3)))
        elif kind == "masked_load":
            ld = declare_intrinsic(m, "llvm.masked.load.v4i32")
            ivecs.append(
                b.call(ld, [ivp, _mask_const(rng), zeroinitializer(V4I)], "mld")
            )
        elif kind == "masked_store":
            st = declare_intrinsic(m, "llvm.masked.store.v4i32")
            b.call(st, [rng.choice(ivecs), ivp, _mask_const(rng)])

    acc_next = rng.choice(ints)
    facc_next = rng.choice(floats)
    vacc_next = rng.choice(ivecs)
    b.br(latch)

    b.position_at_end(latch)
    inext = b.add(i, b.i32(1), "inext")
    b.br(loop)

    b.position_at_end(done)
    lane = b.extractelement(vacc, rng.randint(0, 3), "lane")
    b.ret(b.xor(b.add(acc, lane, "sum"), b.load(b.gep(fn.args[0], b.i32(0))), "r"))

    i.add_incoming(b.i32(0), entry)
    i.add_incoming(inext, latch)
    acc.add_incoming(b.i32(rng.randint(-5, 5)), entry)
    acc.add_incoming(acc_next, latch)
    facc.add_incoming(const_float(rng.choice(_F32_CONSTS), F32), entry)
    facc.add_incoming(facc_next, latch)
    vacc.add_incoming(
        ConstantVector([b.i32(rng.randint(-3, 3)) for _ in range(4)]), entry
    )
    vacc.add_incoming(vacc_next, latch)

    verify_module(m)
    return m


def build_remainder_module(seed: int) -> Module:
    """A stride-4 loop whose trip count need not divide the vector width.

    The body computes the lane mask dynamically — lane ``k`` active iff
    ``i + k < n`` (scalar icmp + insertelement, the scalarized remainder
    idiom vectorizers emit) — and pushes it through
    ``llvm.masked.load/store.v4i32``.  With trip counts like 5, 6, 7 the
    final iteration runs a genuinely partial mask, exercising the batched
    tier's masked paths and its per-lane fallbacks on the same module.
    """
    rng = Random(seed)
    m = Module(f"rem{seed}")
    fn = m.add_function(
        "f", FunctionType(I32, (pointer(I32), pointer(F32), I32)), ["ip", "fp", "n"]
    )
    entry = fn.add_block("entry")
    loop = fn.add_block("loop")
    body = fn.add_block("body")
    latch = fn.add_block("latch")
    done = fn.add_block("done")

    b = IRBuilder(entry)
    ivp = b.bitcast(fn.args[0], pointer(V4I), "ivp")
    b.br(loop)

    b.position_at_end(loop)
    i = b.phi(I32, "i")
    vacc = b.phi(V4I, "vacc")
    cmp = b.icmp("slt", i, fn.args[2], "cmp")
    b.condbr(cmp, body, done)

    b.position_at_end(body)
    mask = ConstantVector([const_int(I1, 0)] * 4)
    for k in range(4):
        ck = b.icmp("slt", b.add(i, b.i32(k)), fn.args[2], f"c{k}")
        mask = b.insertelement(mask, ck, k, f"m{k}")
    q = b.lshr(i, b.i32(2), "q")
    slot = b.gep(ivp, q, "slot")
    ld = declare_intrinsic(m, "llvm.masked.load.v4i32")
    st = declare_intrinsic(m, "llvm.masked.store.v4i32")
    loaded = b.call(ld, [slot, mask, zeroinitializer(V4I)], "mld")
    vnext = b.binop(rng.choice(_VEC_OPS), vacc, loaded, "vnext")
    b.call(st, [vnext, slot, mask])
    b.br(latch)

    b.position_at_end(latch)
    inext = b.add(i, b.i32(4), "inext")
    b.br(loop)

    b.position_at_end(done)
    lane = b.extractelement(vacc, rng.randint(0, 3), "lane")
    b.ret(b.xor(lane, b.load(b.gep(fn.args[0], b.i32(0))), "r"))

    i.add_incoming(b.i32(0), entry)
    i.add_incoming(inext, latch)
    vacc.add_incoming(
        ConstantVector([b.i32(rng.randint(-3, 3)) for _ in range(4)]), entry
    )
    vacc.add_incoming(vnext, latch)

    verify_module(m)
    return m


# -- the generated kernel family -----------------------------------------------

#: Bump when recipe derivation or either emitter changes semantics — it is
#: part of :func:`recipe_source`, hence of the registry fingerprint that
#: campaign-store manifests pin.
GENERATOR_VERSION = 1

KERNEL_SHAPES = ("map", "cond", "reduce")

#: Reduction ops restricted to exactly-associative integer arithmetic so a
#: vector accumulator folds to the scalar result bit-for-bit.
_RED_OPS = ("add", "xor", "mul")


def _int_leaf(rng: Random) -> tuple:
    return rng.choice(
        [("a",), ("a",), ("iv",), ("ic", rng.randint(-9, 9))]
    )


def _int_expr(rng: Random, depth: int) -> tuple:
    if depth <= 0 or rng.random() < 0.3:
        return _int_leaf(rng)
    if rng.random() < 0.15:
        return ("fptosi", _flt_expr(rng, depth - 1))
    op = rng.choice(_INT_OPS)
    return (op, _int_expr(rng, depth - 1), _int_expr(rng, depth - 1))


def _flt_leaf(rng: Random) -> tuple:
    return rng.choice([("x",), ("x",), ("fc", rng.choice(_F32_CONSTS))])


def _flt_expr(rng: Random, depth: int) -> tuple:
    if depth <= 0 or rng.random() < 0.3:
        return _flt_leaf(rng)
    if rng.random() < 0.15:
        return ("sitofp", _int_expr(rng, depth - 1))
    op = rng.choice(_FLOAT_OPS)
    return (op, _flt_expr(rng, depth - 1), _flt_expr(rng, depth - 1))


def make_recipe(seed: int, shape: str) -> dict:
    """A deterministic kernel recipe: plain data, stable across processes."""
    if shape not in KERNEL_SHAPES:
        raise ValueError(f"unknown kernel shape {shape!r}")
    rng = Random(f"{shape}:{seed}")
    recipe = {
        "version": GENERATOR_VERSION,
        "seed": seed,
        "shape": shape,
        "int_expr": _int_expr(rng, 3),
        "flt_expr": _flt_expr(rng, 3),
    }
    if shape == "cond":
        if rng.random() < 0.5:
            recipe["cond"] = ("icmp", rng.choice(_ICMP), _int_expr(rng, 2),
                              _int_expr(rng, 2))
        else:
            recipe["cond"] = ("fcmp", rng.choice(("olt", "ogt", "ole", "oge")),
                              _flt_expr(rng, 2), _flt_expr(rng, 2))
        recipe["then_expr"] = _int_expr(rng, 2)
        recipe["else_expr"] = _int_expr(rng, 2)
        recipe["store_both"] = rng.random() < 0.5
    elif shape == "reduce":
        recipe["red_op"] = rng.choice(_RED_OPS)
        recipe["red_init"] = rng.randint(-5, 5)
        recipe["red_conditional"] = rng.random() < 0.5
        recipe["cond"] = ("icmp", rng.choice(_ICMP), _int_expr(rng, 2),
                          _int_expr(rng, 2))
    return recipe


def recipe_source(recipe: dict) -> str:
    """Canonical text form — the ``source`` a registry fingerprint hashes."""
    body = "\n".join(f"{k} = {recipe[k]!r}" for k in sorted(recipe))
    return f"; generated kernel (generator v{GENERATOR_VERSION})\n{body}\n"


class _ExprEmitter:
    """Evaluate a recipe expression tree as scalar or as per-lane vector IR.

    ``iv``/``a_load``/``x_load`` are supplied by the caller (scalar values
    in the scalar emitter, ``<Vl x T>`` values in the hand-vec emitter), so
    both forms perform the identical operation sequence per lane.
    """

    def __init__(self, b: IRBuilder, iv: Value, a_load, x_load, lanes: int):
        self.b = b
        self.iv = iv
        self._a = a_load  # lazy thunks: load once, reuse
        self._x = x_load
        self.lanes = lanes  # 1 for the scalar form
        self._a_val: Value | None = None
        self._x_val: Value | None = None

    def _const(self, ty: Type, value) -> Value:
        c = const_int(ty, value) if ty.is_integer() else const_float(value, ty)
        if self.lanes == 1:
            return c
        return IRBuilder.splat_const(c, self.lanes)

    def emit(self, node: tuple) -> Value:
        tag = node[0]
        b = self.b
        if tag == "a":
            if self._a_val is None:
                self._a_val = self._a()
            return self._a_val
        if tag == "x":
            if self._x_val is None:
                self._x_val = self._x()
            return self._x_val
        if tag == "iv":
            return self.iv
        if tag == "ic":
            return self._const(I32, node[1])
        if tag == "fc":
            return self._const(F32, node[1])
        if tag == "sitofp":
            ty = F32 if self.lanes == 1 else vector(F32, self.lanes)
            return b.sitofp(self.emit(node[1]), ty)
        if tag == "fptosi":
            ty = I32 if self.lanes == 1 else vector(I32, self.lanes)
            return b.fptosi(self.emit(node[1]), ty)
        return b.binop(tag, self.emit(node[1]), self.emit(node[2]))

    def cond(self, node: tuple) -> Value:
        kind, pred, lhs, rhs = node
        emit = self.b.icmp if kind == "icmp" else self.b.fcmp
        return emit(pred, self.emit(lhs), self.emit(rhs), "c")


#: Generated kernels share one signature:
#: ``kernel(a: i32*, x: f32*, out: i32*, fout: f32*, n: i32) -> i32``.
KERNEL_TYPE = FunctionType(
    I32, (pointer(I32), pointer(F32), pointer(I32), pointer(F32), I32)
)
KERNEL_ARGS = ["a", "x", "out", "fout", "n"]


def build_scalar_kernel(seed: int, shape: str, name: str | None = None) -> Module:
    """The scalar form: a counted loop with genuine control flow — exactly
    the shape :func:`repro.passes.vectorize.vectorize_function` consumes."""
    recipe = make_recipe(seed, shape)
    m = Module(name or f"gen-{shape}{seed}.scalar")
    fn = m.add_function("kernel", KERNEL_TYPE, list(KERNEL_ARGS))
    a, x, out, fout, n = fn.args

    entry = fn.add_block("entry")
    header = fn.add_block("loop")
    body = fn.add_block("body")
    latch = fn.add_block("latch")
    done = fn.add_block("done")

    b = IRBuilder(entry)
    b.br(header)

    b.position_at_end(header)
    iv = b.phi(I32, "i")
    acc = b.phi(I32, "acc") if shape == "reduce" else None
    cmp = b.icmp("slt", iv, n, "cmp")
    b.condbr(cmp, body, done)

    b.position_at_end(body)
    ex = _ExprEmitter(
        b,
        iv,
        lambda: b.load(b.gep(a, iv, "a.addr"), "a.i"),
        lambda: b.load(b.gep(x, iv, "x.addr"), "x.i"),
        lanes=1,
    )
    acc_next: Value | None = None
    if shape == "map":
        b.store(ex.emit(recipe["int_expr"]), b.gep(out, iv, "out.addr"))
        b.store(ex.emit(recipe["flt_expr"]), b.gep(fout, iv, "fout.addr"))
        b.br(latch)
    elif shape == "cond":
        b.store(ex.emit(recipe["flt_expr"]), b.gep(fout, iv, "fout.addr"))
        c = ex.cond(recipe["cond"])
        then_blk = fn.add_block("then", after=body)
        merge = fn.add_block("merge", after=then_blk)
        if recipe["store_both"]:
            else_blk = fn.add_block("else", after=then_blk)
            b.condbr(c, then_blk, else_blk)
            b.position_at_end(then_blk)
            b.store(ex.emit(recipe["then_expr"]), b.gep(out, iv, "out.t"))
            b.br(merge)
            b.position_at_end(else_blk)
            b.store(ex.emit(recipe["else_expr"]), b.gep(out, iv, "out.e"))
            b.br(merge)
        else:
            b.condbr(c, then_blk, merge)
            b.position_at_end(then_blk)
            b.store(ex.emit(recipe["then_expr"]), b.gep(out, iv, "out.t"))
            b.br(merge)
        b.position_at_end(merge)
        b.br(latch)
    else:  # reduce
        b.store(ex.emit(recipe["int_expr"]), b.gep(out, iv, "out.addr"))
        val = ex.emit(recipe["int_expr"])
        if recipe["red_conditional"]:
            c = ex.cond(recipe["cond"])
            upd_blk = fn.add_block("accum", after=body)
            merge = fn.add_block("merge", after=upd_blk)
            b.condbr(c, upd_blk, merge)
            b.position_at_end(upd_blk)
            upd = b.binop(recipe["red_op"], acc, val, "acc.next")
            b.br(merge)
            b.position_at_end(merge)
            accm = b.phi(I32, "acc.m")
            accm.add_incoming(upd, upd_blk)
            accm.add_incoming(acc, body)
            acc_next = accm
            b.br(latch)
        else:
            acc_next = b.binop(recipe["red_op"], acc, val, "acc.next")
            b.br(latch)

    b.position_at_end(latch)
    inext = b.add(iv, b.i32(1), "inext")
    b.br(header)

    b.position_at_end(done)
    checksum = b.load(b.gep(a, b.i32(0), "chk.addr"), "chk")
    r = b.xor(acc, checksum, "r") if acc is not None else checksum
    b.ret(r)

    iv.add_incoming(b.i32(0), entry)
    iv.add_incoming(inext, latch)
    if acc is not None:
        acc.add_incoming(b.i32(recipe["red_init"]), entry)
        acc.add_incoming(acc_next, latch)

    verify_module(m)
    return m


def build_handvec_kernel(
    seed: int, shape: str, target: Target | str, name: str | None = None
) -> Module:
    """The hand-vectorized form of the same recipe: a stride-``Vl`` masked
    loop in the frontend's ``foreach`` style — dynamic lane mask, masked
    memory, selects for the conditional arms, vector accumulator + fold."""
    t = get_target(target) if isinstance(target, str) else target
    vl = t.vector_width
    recipe = make_recipe(seed, shape)
    m = Module(name or f"gen-{shape}{seed}.handvec.{t.name}")
    fn = m.add_function("kernel", KERNEL_TYPE, list(KERNEL_ARGS))
    a, x, out, fout, n = fn.args

    entry = fn.add_block("entry")
    header = fn.add_block("loop")
    body = fn.add_block("body")
    latch = fn.add_block("latch")
    done = fn.add_block("done")

    def masked_load(b: IRBuilder, base: Value, iv: Value, elem, nm: str) -> Value:
        addr = b.gep(base, iv, nm + ".addr")
        intr = declare_intrinsic(m, t.masked_load_name(elem))
        vec_ty = vector(elem, vl)
        if t.mask_style == "x86-sign":
            i8p = b.bitcast(addr, pointer(I8))
            return b.call(intr, [i8p, sign_mask(b, elem)], nm)
        vp = b.bitcast(addr, pointer(vec_ty))
        return b.call(intr, [vp, lane_mask, zeroinitializer(vec_ty)], nm)

    def masked_store(b: IRBuilder, value: Value, base: Value, iv: Value, elem) -> None:
        addr = b.gep(base, iv, "st.addr")
        intr = declare_intrinsic(m, t.masked_store_name(elem))
        if t.mask_style == "x86-sign":
            i8p = b.bitcast(addr, pointer(I8))
            b.call(intr, [i8p, sign_mask(b, elem), value])
            return
        vp = b.bitcast(addr, pointer(vector(elem, vl)))
        b.call(intr, [value, vp, lane_mask])

    def sign_mask(b: IRBuilder, elem) -> Value:
        key = "f" if elem.is_float() else "i"
        if key not in sign_masks:
            ivec = b.sext(lane_mask, vector(I32, vl), "maski32")
            sign_masks["i"] = ivec
            if key == "f":
                sign_masks["f"] = b.bitcast(ivec, vector(F32, vl), "maskf32")
        return sign_masks[key]

    b = IRBuilder(entry)
    b.br(header)

    b.position_at_end(header)
    iv = b.phi(I32, "i")
    vacc = b.phi(vector(I32, vl), "vacc") if shape == "reduce" else None
    cmp = b.icmp("slt", iv, n, "cmp")
    b.condbr(cmp, body, done)

    b.position_at_end(body)
    sign_masks: dict[str, Value] = {}
    lane_mask: Value = ConstantVector([const_int(I1, 0)] * vl)
    for k in range(vl):
        ck = b.icmp("slt", b.add(iv, b.i32(k)), n, f"c{k}")
        lane_mask = b.insertelement(lane_mask, ck, k, f"m{k}")

    iota = ConstantVector([const_int(I32, k) for k in range(vl)])
    iv_vec = b.add(b.broadcast(iv, vl, "iv"), iota, "iv.vec")
    ex = _ExprEmitter(
        b,
        iv_vec,
        lambda: masked_load(b, a, iv, I32, "a.v"),
        lambda: masked_load(b, x, iv, F32, "x.v"),
        lanes=vl,
    )
    vacc_next: Value | None = None
    if shape == "map":
        masked_store(b, ex.emit(recipe["int_expr"]), out, iv, I32)
        masked_store(b, ex.emit(recipe["flt_expr"]), fout, iv, F32)
    elif shape == "cond":
        masked_store(b, ex.emit(recipe["flt_expr"]), fout, iv, F32)
        c = ex.cond(recipe["cond"])
        then_v = ex.emit(recipe["then_expr"])
        if recipe["store_both"]:
            else_v = ex.emit(recipe["else_expr"])
            blended = b.select(c, then_v, else_v, "blend")
            masked_store(b, blended, out, iv, I32)
        else:
            # Store only where the condition holds: mask & c.
            old = masked_load(b, out, iv, I32, "out.old")
            blended = b.select(c, then_v, old, "blend")
            masked_store(b, blended, out, iv, I32)
    else:  # reduce
        masked_store(b, ex.emit(recipe["int_expr"]), out, iv, I32)
        val = ex.emit(recipe["int_expr"])
        upd = b.binop(recipe["red_op"], vacc, val, "vacc.upd")
        guard = lane_mask
        if recipe["red_conditional"]:
            c = ex.cond(recipe["cond"])
            guard = b.and_(lane_mask, c, "accmask")
        vacc_next = b.select(guard, upd, vacc, "vacc.next")
    b.br(latch)

    b.position_at_end(latch)
    inext = b.add(iv, b.i32(vl), "inext")
    b.br(header)

    b.position_at_end(done)
    checksum = b.load(b.gep(a, b.i32(0), "chk.addr"), "chk")
    if vacc is not None:
        acc = b.extractelement(vacc, 0, "fold0")
        for k in range(1, vl):
            acc = b.binop(
                recipe["red_op"], acc, b.extractelement(vacc, k, f"lane{k}"), "fold"
            )
        r = b.xor(acc, checksum, "r")
    else:
        r = checksum
    b.ret(r)

    iv.add_incoming(b.i32(0), entry)
    iv.add_incoming(inext, latch)
    if vacc is not None:
        ident = {"add": 0, "xor": 0, "mul": 1}[recipe["red_op"]]
        init = ConstantVector(
            [const_int(I32, recipe["red_init"])]
            + [const_int(I32, ident)] * (vl - 1)
        )
        vacc.add_incoming(init, entry)
        vacc.add_incoming(vacc_next, latch)

    verify_module(m)
    return m
