"""Intrinsic registry with masked-operation classification.

Paper §II-D: *"VULFI maintains an inbuilt list of x86 intrinsics, which
classifies whether any given intrinsic performs a masked vector operation"* —
that list is this module.  For every intrinsic we record whether it is
masked, which operand carries the execution mask, the mask *convention*
(x86 AVX mask loads/stores read the **sign bit** of each float/i32 lane;
generic ``llvm.masked.*`` intrinsics use ``<N x i1>``), and which operand or
result carries the data that the instrumentor must target.

Two families are provided:

* x86 AVX intrinsics (``llvm.x86.avx.maskload.ps.256`` ...) used by the AVX
  target — these are exactly the names in paper Fig. 5;
* generic suffix-typed intrinsics (``llvm.masked.load.v4f32``,
  ``llvm.sqrt.v8f32``, ``llvm.vector.reduce.fadd.v8f32`` ...) used by the SSE
  target and by both targets for math/reductions/gathers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

from ..errors import IRError
from .module import Function, Module
from .types import (
    F32,
    F64,
    FloatType,
    FunctionType,
    I1,
    I8,
    I32,
    I64,
    IntType,
    Type,
    VOID,
    pointer,
    vector,
)

MASK_I1 = "i1"  # <N x i1>, lane active when the bit is 1
MASK_SIGN = "sign"  # float/int lanes, lane active when the sign bit is set


@dataclass(frozen=True)
class IntrinsicInfo:
    """Static description of one intrinsic."""

    name: str
    function_type: FunctionType
    kind: str  # maskload | maskstore | gather | scatter | math | reduce | mask-reduce
    masked: bool = False
    mask_index: int | None = None  # operand index of the execution mask
    mask_convention: str | None = None
    # For store-like intrinsics: operand index of the value being stored
    # (the fault-injection target, since stores have no Lvalue — §II-B).
    stored_value_index: int | None = None
    # For load-like intrinsics the data is the call result (the Lvalue).

    @property
    def lanes(self) -> int:
        """Vector length of the data payload (1 for scalar math)."""
        if self.stored_value_index is not None:
            return self.function_type.params[self.stored_value_index].vector_length
        return self.function_type.return_type.vector_length


def _suffix_type(suffix: str) -> Type:
    """Decode a type suffix: ``f32``, ``f64``, ``i32``, ``v8f32``, ``v4i1``..."""
    m = re.fullmatch(r"v(\d+)([fi])(\d+)", suffix)
    if m:
        n, kind, bits = int(m.group(1)), m.group(2), int(m.group(3))
        elem: Type = FloatType(bits) if kind == "f" else IntType(bits)
        return vector(elem, n)
    m = re.fullmatch(r"([fi])(\d+)", suffix)
    if m:
        kind, bits = m.group(1), int(m.group(2))
        return FloatType(bits) if kind == "f" else IntType(bits)
    raise IRError(f"bad intrinsic type suffix {suffix!r}")


# -- x86 AVX masked moves (paper Fig. 5 names; sign-bit mask convention) -----

_X86_TABLE: dict[str, IntrinsicInfo] = {}


def _x86(name: str, ftype: FunctionType, kind: str, mask_index: int,
         stored_value_index: int | None = None) -> None:
    _X86_TABLE[name] = IntrinsicInfo(
        name=name,
        function_type=ftype,
        kind=kind,
        masked=True,
        mask_index=mask_index,
        mask_convention=MASK_SIGN,
        stored_value_index=stored_value_index,
    )


_i8p = pointer(I8)
_v8f32 = vector(F32, 8)
_v8i32 = vector(I32, 8)
_v4f32 = vector(F32, 4)
_v4i32 = vector(I32, 4)

_x86("llvm.x86.avx.maskload.ps.256", FunctionType(_v8f32, (_i8p, _v8f32)), "maskload", 1)
_x86("llvm.x86.avx.maskstore.ps.256", FunctionType(VOID, (_i8p, _v8f32, _v8f32)), "maskstore", 1, 2)
_x86("llvm.x86.avx2.maskload.d.256", FunctionType(_v8i32, (_i8p, _v8i32)), "maskload", 1)
_x86("llvm.x86.avx2.maskstore.d.256", FunctionType(VOID, (_i8p, _v8i32, _v8i32)), "maskstore", 1, 2)
# 128-bit AVX masked moves (used for SSE-width data on AVX hardware).
_x86("llvm.x86.avx.maskload.ps", FunctionType(_v4f32, (_i8p, _v4f32)), "maskload", 1)
_x86("llvm.x86.avx.maskstore.ps", FunctionType(VOID, (_i8p, _v4f32, _v4f32)), "maskstore", 1, 2)
_x86("llvm.x86.avx2.maskload.d", FunctionType(_v4i32, (_i8p, _v4i32)), "maskload", 1)
_x86("llvm.x86.avx2.maskstore.d", FunctionType(VOID, (_i8p, _v4i32, _v4i32)), "maskstore", 1, 2)


_MATH_UNARY = {"sqrt", "fabs", "exp", "log", "sin", "cos", "floor", "ceil"}
_MATH_BINARY = {"pow", "minnum", "maxnum", "copysign"}


@lru_cache(maxsize=None)
def get_intrinsic(name: str) -> IntrinsicInfo:
    """Resolve an intrinsic name to its :class:`IntrinsicInfo`.

    Raises :class:`~repro.errors.IRError` for unknown names — VULFI treats a
    call to an unknown ``@llvm.*`` function as a configuration error rather
    than silently skipping it.
    """
    if name in _X86_TABLE:
        return _X86_TABLE[name]

    parts = name.split(".")
    if parts[0] != "llvm":
        raise IRError(f"not an intrinsic name: @{name}")

    # llvm.masked.load.vNT / llvm.masked.store.vNT
    if name.startswith("llvm.masked.load."):
        data = _suffix_type(parts[-1])
        if not data.is_vector():
            raise IRError(f"{name}: payload must be a vector type")
        mask = vector(I1, data.vector_length)
        ftype = FunctionType(data, (pointer(data), mask, data))
        return IntrinsicInfo(name, ftype, "maskload", True, 1, MASK_I1)
    if name.startswith("llvm.masked.store."):
        data = _suffix_type(parts[-1])
        if not data.is_vector():
            raise IRError(f"{name}: payload must be a vector type")
        mask = vector(I1, data.vector_length)
        ftype = FunctionType(VOID, (data, pointer(data), mask))
        return IntrinsicInfo(name, ftype, "maskstore", True, 2, MASK_I1, stored_value_index=0)
    if name.startswith("llvm.masked.gather."):
        data = _suffix_type(parts[-1])
        ptrs = vector(pointer(data.scalar_type), data.vector_length)
        mask = vector(I1, data.vector_length)
        ftype = FunctionType(data, (ptrs, mask, data))
        return IntrinsicInfo(name, ftype, "gather", True, 1, MASK_I1)
    if name.startswith("llvm.masked.scatter."):
        data = _suffix_type(parts[-1])
        ptrs = vector(pointer(data.scalar_type), data.vector_length)
        mask = vector(I1, data.vector_length)
        ftype = FunctionType(VOID, (data, ptrs, mask))
        return IntrinsicInfo(name, ftype, "scatter", True, 2, MASK_I1, stored_value_index=0)

    # llvm.vector.reduce.<op>.vNT
    if name.startswith("llvm.vector.reduce."):
        op = parts[3]
        data = _suffix_type(parts[-1])
        if not data.is_vector():
            raise IRError(f"{name}: operand must be a vector type")
        elem = data.scalar_type
        if op in ("fadd", "fmul"):
            ftype = FunctionType(elem, (elem, data))  # (start accumulator, vector)
        elif op in ("add", "mul", "and", "or", "xor", "smax", "smin",
                    "umax", "umin", "fmax", "fmin"):
            ftype = FunctionType(elem, (data,))
        else:
            raise IRError(f"unknown vector reduction llvm.vector.reduce.{op}")
        kind = "mask-reduce" if elem == I1 else "reduce"
        return IntrinsicInfo(name, ftype, kind)

    # llvm.<mathop>.T  (scalar or elementwise vector math)
    op = parts[1]
    if op in _MATH_UNARY and len(parts) == 3:
        t = _suffix_type(parts[2])
        return IntrinsicInfo(name, FunctionType(t, (t,)), "math")
    if op in _MATH_BINARY and len(parts) == 3:
        t = _suffix_type(parts[2])
        return IntrinsicInfo(name, FunctionType(t, (t, t)), "math")

    raise IRError(f"unknown intrinsic @{name}")


def is_intrinsic_name(name: str) -> bool:
    """Paper §II-A: all LLVM intrinsics start with the ``llvm.`` prefix."""
    return name.startswith("llvm.")


def declare_intrinsic(module: Module, name: str) -> Function:
    """Declare (or fetch) an intrinsic in ``module`` with its canonical type."""
    info = get_intrinsic(name)
    fn = module.declare_function(name, info.function_type, attributes=("intrinsic",))
    return fn


def intrinsic_info_for_call(call) -> IntrinsicInfo | None:
    """Return the IntrinsicInfo for a Call instruction, or None if the callee
    is not an intrinsic."""
    name = call.callee.name
    if not is_intrinsic_name(name):
        return None
    return get_intrinsic(name)
