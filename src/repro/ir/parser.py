"""Parser for the textual IR emitted by :mod:`repro.ir.printer`.

Together the pair enables the *text rewriting* workflow: print a module,
transform the text (or store it on disk as a ``.ll``-like artifact), and
re-parse it into in-memory IR.  The grammar is the LLVM-flavoured subset the
printer produces; see that module for the per-opcode syntax.

Forward references (SSA values used before their textual definition — loop
phis, most prominently) are handled with placeholder values that are patched
once the definition is seen.
"""

from __future__ import annotations

import re

from ..errors import IRParseError
from .instructions import (
    CAST_OPS,
    FLOAT_BINARY_OPS,
    INT_BINARY_OPS,
    Alloca,
    BinaryOp,
    Branch,
    Call,
    CastOp,
    CompareOp,
    CondBranch,
    ExtractElement,
    FNeg,
    GetElementPtr,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    ShuffleVector,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .types import (
    F32,
    F64,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VOID,
    pointer,
    vector,
)
from .values import (
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ConstantVector,
    UndefValue,
    Value,
    zeroinitializer,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>;[^\n]*)
  | (?P<newline>\n)
  | (?P<local>%[A-Za-z0-9._$-]+)
  | (?P<global>@[A-Za-z0-9._$-]+)
  | (?P<number>-?(?:\d+\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+|\d+|inf|nan))
  | (?P<ident>[A-Za-z_][A-Za-z0-9._]*)
  | (?P<punct>[{}()\[\]<>,=*:x]|\.\.\.)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover
        return f"{self.kind}:{self.text!r}"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise IRParseError(f"unexpected character {text[pos]!r}", line)
        pos = m.end()
        kind = m.lastgroup or ""
        if kind == "newline":
            line += 1
            continue
        if kind in ("ws", "comment"):
            continue
        tokens.append(_Token(kind, m.group(), line))
    tokens.append(_Token("eof", "", line))
    return tokens


class _ForwardRef(Value):
    """Placeholder for a local used before its definition."""

    __slots__ = ()


class IRParser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token helpers --------------------------------------------------------

    def peek(self, ahead: int = 0) -> _Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> _Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> _Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise IRParseError(f"expected {want!r}, got {tok.text!r}", tok.line)
        return tok

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    # -- types ---------------------------------------------------------------

    def parse_type(self) -> Type:
        tok = self.peek()
        base: Type
        if tok.kind == "punct" and tok.text == "<":
            self.next()
            n = int(self.expect("number").text)
            x = self.next()
            if x.text != "x":
                raise IRParseError(f"expected 'x' in vector type, got {x.text!r}", x.line)
            elem = self.parse_type()
            self.expect("punct", ">")
            base = vector(elem, n)
        elif tok.kind == "ident":
            self.next()
            if tok.text == "void":
                base = VOID
            elif tok.text == "float":
                base = F32
            elif tok.text == "double":
                base = F64
            elif re.fullmatch(r"i\d+", tok.text):
                base = IntType(int(tok.text[1:]))
            else:
                raise IRParseError(f"unknown type {tok.text!r}", tok.line)
        else:
            raise IRParseError(f"expected a type, got {tok.text!r}", tok.line)
        while self.accept("punct", "*"):
            base = pointer(base)
        return base

    # -- module --------------------------------------------------------------

    def parse_module(self, name: str = "parsed") -> Module:
        module = Module(name)
        while True:
            tok = self.peek()
            if tok.kind == "eof":
                break
            if tok.kind == "ident" and tok.text == "declare":
                self._parse_declare(module)
            elif tok.kind == "ident" and tok.text == "define":
                self._parse_define(module)
            else:
                raise IRParseError(
                    f"expected 'define' or 'declare', got {tok.text!r}", tok.line
                )
        return module

    def _parse_declare(self, module: Module) -> None:
        self.expect("ident", "declare")
        ret = self.parse_type()
        name_tok = self.expect("global")
        self.expect("punct", "(")
        params: list[Type] = []
        varargs = False
        if not self.accept("punct", ")"):
            while True:
                if self.accept("punct", "..."):
                    varargs = True
                else:
                    params.append(self.parse_type())
                    # Parameter names are tolerated but ignored in declares.
                    self.accept("local")
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        module.declare_function(name_tok.text[1:], FunctionType(ret, tuple(params), varargs))

    def _parse_define(self, module: Module) -> None:
        self.expect("ident", "define")
        ret = self.parse_type()
        name_tok = self.expect("global")
        self.expect("punct", "(")
        params: list[Type] = []
        arg_names: list[str] = []
        if not self.accept("punct", ")"):
            while True:
                params.append(self.parse_type())
                arg = self.expect("local")
                arg_names.append(arg.text[1:])
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        self.expect("punct", "{")

        fn = module.add_function(
            name_tok.text[1:], FunctionType(ret, tuple(params)), arg_names
        )
        _FunctionBodyParser(self, module, fn).parse()

    def _parse_global_name(self) -> str:
        return self.expect("global").text[1:]


class _FunctionBodyParser:
    """Parses one function body from '{' (already consumed) to '}'."""

    def __init__(self, parser: IRParser, module: Module, fn: Function):
        self.p = parser
        self.module = module
        self.fn = fn
        self.locals: dict[str, Value] = {a.name: a for a in fn.args}
        self.pending: dict[str, _ForwardRef] = {}
        self.blocks: dict[str, BasicBlock] = {}
        self.pending_blocks: dict[str, BasicBlock] = {}

    # -- value helpers ---------------------------------------------------------

    def _define_local(self, name: str, value: Value) -> None:
        if name in self.locals:
            raise IRParseError(f"redefinition of %{name}")
        value.name = name
        self.locals[name] = value
        ref = self.pending.pop(name, None)
        if ref is not None:
            ref.replace_all_uses_with(value)

    def _local(self, name: str, expected: Type, line: int) -> Value:
        existing = self.locals.get(name)
        if existing is not None:
            if existing.type != expected:
                raise IRParseError(
                    f"%{name} has type {existing.type}, expected {expected}", line
                )
            return existing
        ref = self.pending.get(name)
        if ref is None:
            ref = _ForwardRef(expected, name)
            self.pending[name] = ref
        elif ref.type != expected:
            raise IRParseError(
                f"%{name} used with conflicting types {ref.type} and {expected}", line
            )
        return ref

    def _block(self, name: str) -> BasicBlock:
        if name in self.blocks:
            return self.blocks[name]
        block = self.pending_blocks.get(name)
        if block is None:
            block = BasicBlock(name, self.fn)
            self.pending_blocks[name] = block
        return block

    def _begin_block(self, name: str, line: int) -> BasicBlock:
        if name in self.blocks:
            raise IRParseError(f"duplicate block label {name}", line)
        block = self.pending_blocks.pop(name, None)
        if block is None:
            block = BasicBlock(name, self.fn)
        self.blocks[name] = block
        self.fn.blocks.append(block)
        return block

    def parse_operand(self, expected: Type) -> Value:
        """Parse a value reference of the given type (constants included)."""
        p = self.p
        tok = p.peek()
        if tok.kind == "local":
            p.next()
            return self._local(tok.text[1:], expected, tok.line)
        if tok.kind == "number":
            p.next()
            text = tok.text
            if isinstance(expected, FloatType) or "." in text or "e" in text or "E" in text \
               or text.lstrip("-") in ("inf", "nan"):
                if not isinstance(expected, FloatType):
                    raise IRParseError(f"float literal for {expected}", tok.line)
                return ConstantFloat(expected, float(text))
            if not isinstance(expected, IntType):
                raise IRParseError(f"integer literal for {expected}", tok.line)
            return ConstantInt(expected, int(text))
        if tok.kind == "ident":
            if tok.text in ("true", "false"):
                p.next()
                if not isinstance(expected, IntType) or expected.bits != 1:
                    raise IRParseError(f"bool literal for {expected}", tok.line)
                return ConstantInt(expected, 1 if tok.text == "true" else 0)
            if tok.text == "undef":
                p.next()
                return UndefValue(expected)
            if tok.text == "null":
                p.next()
                if not isinstance(expected, PointerType):
                    raise IRParseError(f"null literal for {expected}", tok.line)
                return ConstantPointerNull(expected)
            if tok.text == "zeroinitializer":
                p.next()
                return zeroinitializer(expected)
            if tok.text in ("inf", "nan"):
                p.next()
                if not isinstance(expected, FloatType):
                    raise IRParseError(f"float literal for {expected}", tok.line)
                return ConstantFloat(expected, float(tok.text))
        if tok.kind == "punct" and tok.text == "<":
            # Vector constant: <i32 1, i32 2, ...>
            p.next()
            elements: list[Constant] = []
            while True:
                ety = p.parse_type()
                val = self.parse_operand(ety)
                if not isinstance(val, Constant):
                    raise IRParseError("vector constant element must be constant", tok.line)
                elements.append(val)
                if not p.accept("punct", ","):
                    break
            p.expect("punct", ">")
            cv = ConstantVector(elements)
            if cv.type != expected:
                raise IRParseError(
                    f"vector constant has type {cv.type}, expected {expected}", tok.line
                )
            return cv
        raise IRParseError(f"expected operand, got {tok.text!r}", tok.line)

    def parse_typed_operand(self) -> Value:
        ty = self.p.parse_type()
        return self.parse_operand(ty)

    # -- body ----------------------------------------------------------------

    def parse(self) -> None:
        p = self.p
        current: BasicBlock | None = None
        while True:
            tok = p.peek()
            if tok.kind == "punct" and tok.text == "}":
                p.next()
                break
            # Block label: IDENT ':'  (numbers are legal labels too)
            if (
                tok.kind in ("ident", "number")
                and p.peek(1).kind == "punct"
                and p.peek(1).text == ":"
            ):
                p.next()
                p.next()
                current = self._begin_block(tok.text, tok.line)
                continue
            if current is None:
                raise IRParseError("instruction outside any block", tok.line)
            instr = self.parse_instruction()
            current.append(instr)

        if self.pending:
            names = ", ".join(sorted(self.pending))
            raise IRParseError(f"@{self.fn.name}: undefined locals: {names}")
        if self.pending_blocks:
            names = ", ".join(sorted(self.pending_blocks))
            raise IRParseError(f"@{self.fn.name}: undefined labels: {names}")

    def parse_instruction(self) -> Instruction:
        p = self.p
        tok = p.peek()
        result_name: str | None = None
        if tok.kind == "local":
            p.next()
            p.expect("punct", "=")
            result_name = tok.text[1:]
        op_tok = p.expect("ident")
        op = op_tok.text
        line = op_tok.line

        instr = self._dispatch(op, line)
        if result_name is not None:
            if not instr.has_lvalue():
                raise IRParseError(f"{op} produces no result", line)
            self._define_local(result_name, instr)
        return instr

    def _dispatch(self, op: str, line: int) -> Instruction:
        p = self.p
        if op in INT_BINARY_OPS or op in FLOAT_BINARY_OPS:
            ty = p.parse_type()
            lhs = self.parse_operand(ty)
            p.expect("punct", ",")
            rhs = self.parse_operand(ty)
            return BinaryOp(op, lhs, rhs)
        if op == "fneg":
            return FNeg(self.parse_typed_operand())
        if op in ("icmp", "fcmp"):
            pred = p.expect("ident").text
            ty = p.parse_type()
            lhs = self.parse_operand(ty)
            p.expect("punct", ",")
            rhs = self.parse_operand(ty)
            return CompareOp(op, pred, lhs, rhs)
        if op == "select":
            cond = self.parse_typed_operand()
            p.expect("punct", ",")
            a = self.parse_typed_operand()
            p.expect("punct", ",")
            b = self.parse_typed_operand()
            return Select(cond, a, b)
        if op in CAST_OPS:
            value = self.parse_typed_operand()
            p.expect("ident", "to")
            target = p.parse_type()
            return CastOp(op, value, target)
        if op == "alloca":
            ty = p.parse_type()
            count = 1
            if p.accept("punct", ","):
                p.parse_type()
                count = int(p.expect("number").text)
            return Alloca(ty, count)
        if op == "load":
            p.parse_type()  # result type (redundant with pointer pointee)
            p.expect("punct", ",")
            ptr = self.parse_typed_operand()
            return Load(ptr)
        if op == "store":
            value = self.parse_typed_operand()
            p.expect("punct", ",")
            ptr = self.parse_typed_operand()
            return Store(value, ptr)
        if op == "getelementptr":
            p.parse_type()  # pointee type
            p.expect("punct", ",")
            base = self.parse_typed_operand()
            p.expect("punct", ",")
            index = self.parse_typed_operand()
            return GetElementPtr(base, index)
        if op == "extractelement":
            vec = self.parse_typed_operand()
            p.expect("punct", ",")
            idx = self.parse_typed_operand()
            return ExtractElement(vec, idx)
        if op == "insertelement":
            vec = self.parse_typed_operand()
            p.expect("punct", ",")
            elem = self.parse_typed_operand()
            p.expect("punct", ",")
            idx = self.parse_typed_operand()
            return InsertElement(vec, elem, idx)
        if op == "shufflevector":
            v1 = self.parse_typed_operand()
            p.expect("punct", ",")
            v2 = self.parse_typed_operand()
            p.expect("punct", ",")
            mask_ty = p.parse_type()
            mask_val = self.parse_operand(mask_ty)
            if not isinstance(mask_val, ConstantVector):
                raise IRParseError("shuffle mask must be a constant vector", line)
            mask = [e.value for e in mask_val.elements]  # type: ignore[union-attr]
            return ShuffleVector(v1, v2, mask)
        if op == "phi":
            ty = p.parse_type()
            phi = Phi(ty)
            edges: list[tuple[Value, BasicBlock]] = []
            while True:
                p.expect("punct", "[")
                value = self.parse_operand(ty)
                p.expect("punct", ",")
                blk_tok = p.expect("local")
                edges.append((value, self._block(blk_tok.text[1:])))
                p.expect("punct", "]")
                if not p.accept("punct", ","):
                    break
            for value, block in edges:
                phi.add_incoming(value, block)
            return phi
        if op == "call":
            p.parse_type()  # return type
            callee_tok = p.expect("global")
            p.expect("punct", "(")
            args: list[Value] = []
            if not p.accept("punct", ")"):
                while True:
                    args.append(self.parse_typed_operand())
                    if not p.accept("punct", ","):
                        break
                p.expect("punct", ")")
            callee_name = callee_tok.text[1:]
            if callee_name in self.module.functions:
                callee = self.module.functions[callee_name]
            else:
                # Auto-declare intrinsics; anything else must be declared.
                from .intrinsics import declare_intrinsic, is_intrinsic_name

                if not is_intrinsic_name(callee_name):
                    raise IRParseError(f"call to undeclared @{callee_name}", line)
                callee = declare_intrinsic(self.module, callee_name)
            return Call(callee, args)
        if op == "br":
            if p.peek().text == "label":
                p.expect("ident", "label")
                target = p.expect("local")
                return Branch(self._block(target.text[1:]))
            cond = self.parse_typed_operand()
            p.expect("punct", ",")
            p.expect("ident", "label")
            t = p.expect("local")
            p.expect("punct", ",")
            p.expect("ident", "label")
            f = p.expect("local")
            return CondBranch(cond, self._block(t.text[1:]), self._block(f.text[1:]))
        if op == "ret":
            if p.peek().text == "void":
                p.next()
                return Return(None)
            return Return(self.parse_typed_operand())
        if op == "unreachable":
            return Unreachable()
        raise IRParseError(f"unknown opcode {op!r}", line)


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse textual IR into a :class:`~repro.ir.module.Module`."""
    return IRParser(text).parse_module(name)
