"""Control-flow-graph utilities: successors/predecessors, reverse post
order, dominator tree (Cooper–Harvey–Kennedy), and dominance frontiers.

The dominator machinery serves the mem2reg pass (SSA construction), which in
turn gives the site classifier clean def-use chains to slice — ISPC's -O3
output, which the paper analyses, is likewise in pruned SSA form.
"""

from __future__ import annotations

from .module import BasicBlock, Function


def reverse_post_order(fn: Function) -> list[BasicBlock]:
    """Blocks in reverse post order from the entry (unreachable blocks are
    excluded)."""
    seen: set[int] = set()
    order: list[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        # Iterative DFS to keep recursion depth independent of CFG size.
        stack: list[tuple[BasicBlock, int]] = [(block, 0)]
        seen.add(id(block))
        while stack:
            current, idx = stack[-1]
            succs = current.successors()
            if idx < len(succs):
                stack[-1] = (current, idx + 1)
                nxt = succs[idx]
                if id(nxt) not in seen:
                    seen.add(id(nxt))
                    stack.append((nxt, 0))
            else:
                order.append(current)
                stack.pop()

    visit(fn.entry)
    order.reverse()
    return order


class DominatorTree:
    """Immediate dominators + dominance frontiers for one function."""

    def __init__(self, fn: Function):
        self.function = fn
        self.rpo = reverse_post_order(fn)
        self._index = {id(b): i for i, b in enumerate(self.rpo)}
        self.idom: dict[int, BasicBlock] = {}
        self._compute_idoms()
        self.frontiers: dict[int, list[BasicBlock]] = {}
        self._compute_frontiers()

    # -- Cooper-Harvey-Kennedy "engineered" iterative algorithm -------------

    def _intersect(self, b1: BasicBlock, b2: BasicBlock) -> BasicBlock:
        f1, f2 = b1, b2
        while f1 is not f2:
            while self._index[id(f1)] > self._index[id(f2)]:
                f1 = self.idom[id(f1)]
            while self._index[id(f2)] > self._index[id(f1)]:
                f2 = self.idom[id(f2)]
        return f1

    def _compute_idoms(self) -> None:
        entry = self.function.entry
        self.idom[id(entry)] = entry
        changed = True
        preds_of = {
            id(b): [p for p in b.predecessors() if id(p) in self._index]
            for b in self.rpo
        }
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                preds = [p for p in preds_of[id(block)] if id(p) in self.idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for p in preds[1:]:
                    new_idom = self._intersect(p, new_idom)
                if self.idom.get(id(block)) is not new_idom:
                    self.idom[id(block)] = new_idom
                    changed = True

    def _compute_frontiers(self) -> None:
        for block in self.rpo:
            self.frontiers[id(block)] = []
        for block in self.rpo:
            preds = [p for p in block.predecessors() if id(p) in self._index]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner is not self.idom[id(block)]:
                    front = self.frontiers[id(runner)]
                    if block not in front:
                        front.append(block)
                    runner = self.idom[id(runner)]

    # -- queries ----------------------------------------------------------------

    def immediate_dominator(self, block: BasicBlock) -> BasicBlock | None:
        if block is self.function.entry:
            return None
        return self.idom.get(id(block))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Whether ``a`` dominates ``b`` (reflexive)."""
        runner: BasicBlock | None = b
        while runner is not None:
            if runner is a:
                return True
            if runner is self.function.entry:
                return False
            runner = self.idom.get(id(runner))
        return False

    def frontier(self, block: BasicBlock) -> list[BasicBlock]:
        return list(self.frontiers.get(id(block), []))

    def children(self, block: BasicBlock) -> list[BasicBlock]:
        """Blocks immediately dominated by ``block``."""
        return [
            b
            for b in self.rpo
            if b is not self.function.entry and self.idom.get(id(b)) is block
        ]
