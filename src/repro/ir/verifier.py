"""Structural and SSA verifier.

Run after construction, after every pass, and after instrumentation — a
fault injector that corrupts its *own* IR invalidates a whole campaign, so
the test-suite verifies every module it builds.  Checks:

* every block ends in exactly one terminator (and only the last instruction
  is a terminator);
* the entry block has no predecessors;
* phi nodes are grouped at the top of their block and their incoming edges
  match the block's predecessors exactly;
* use-def bookkeeping is consistent in both directions;
* every definition dominates each of its uses (classic SSA property);
* calls reference functions of the enclosing module.
"""

from __future__ import annotations

from ..errors import VerificationError
from .cfg import DominatorTree
from .instructions import Call, Instruction, Phi
from .module import BasicBlock, Function, Module
from .values import Argument, Constant, Value


def verify_module(module: Module) -> None:
    problems: list[str] = []
    for fn in module.defined_functions():
        problems.extend(_function_problems(fn, module))
    if problems:
        raise VerificationError(problems)


def verify_function(fn: Function) -> None:
    problems = _function_problems(fn, fn.module)
    if problems:
        raise VerificationError(problems)


def _function_problems(fn: Function, module: Module | None) -> list[str]:
    problems: list[str] = []
    where = f"@{fn.name}"

    if not fn.blocks:
        return [f"{where}: defined function has no blocks"]

    if fn.entry.predecessors():
        problems.append(f"{where}: entry block has predecessors")

    block_set = {id(b) for b in fn.blocks}
    defined_in: dict[int, BasicBlock] = {}

    for block in fn.blocks:
        bwhere = f"{where}:{block.name}"
        term = block.terminator
        if term is None:
            problems.append(f"{bwhere}: block is not terminated")
        seen_non_phi = False
        for i, instr in enumerate(block.instructions):
            if instr.parent is not block:
                problems.append(f"{bwhere}: instruction #{i} has wrong parent link")
            if instr.is_terminator and instr is not block.instructions[-1]:
                problems.append(f"{bwhere}: terminator in mid-block at #{i}")
            if isinstance(instr, Phi):
                if seen_non_phi:
                    problems.append(f"{bwhere}: phi {instr.ref()} after non-phi")
            else:
                seen_non_phi = True
            if instr.has_lvalue():
                defined_in[id(instr)] = block
            # Use-def bookkeeping, forward direction.
            for idx, op in enumerate(instr.operands):
                if (instr, idx) not in op.uses:
                    problems.append(
                        f"{bwhere}: operand {idx} of {instr.opcode} missing its use record"
                    )
            if isinstance(instr, Call):
                if module is not None and module.functions.get(instr.callee.name) is not instr.callee:
                    problems.append(
                        f"{bwhere}: call to @{instr.callee.name} not in module"
                    )
        # Successor sanity.
        for succ in block.successors():
            if id(succ) not in block_set:
                problems.append(f"{bwhere}: branch to block outside the function")

    # Phi edges match predecessors.
    for block in fn.blocks:
        preds = block.predecessors()
        pred_ids = sorted(id(p) for p in preds)
        for phi in block.phis():
            incoming_ids = sorted(id(b) for b in phi.incoming_blocks)
            if incoming_ids != pred_ids:
                problems.append(
                    f"@{fn.name}:{block.name}: phi {phi.ref()} incoming blocks "
                    f"{[b.name for b in phi.incoming_blocks]} do not match "
                    f"predecessors {[p.name for p in preds]}"
                )

    # SSA dominance. Unreachable blocks are skipped (no dominator relation).
    if not problems:
        dom = DominatorTree(fn)
        reachable = {id(b) for b in dom.rpo}
        positions = {
            id(instr): (block, i)
            for block in fn.blocks
            for i, instr in enumerate(block.instructions)
        }
        for block in fn.blocks:
            if id(block) not in reachable:
                continue
            for i, instr in enumerate(block.instructions):
                for idx, op in enumerate(instr.operands):
                    if not isinstance(op, Instruction):
                        if not isinstance(op, (Constant, Argument)):
                            problems.append(
                                f"@{fn.name}:{block.name}: operand {idx} of "
                                f"{instr.opcode} is not a constant/argument/instruction"
                            )
                        continue
                    if id(op) not in positions:
                        problems.append(
                            f"@{fn.name}:{block.name}: {instr.opcode} uses detached "
                            f"value {op.ref()}"
                        )
                        continue
                    def_block, def_pos = positions[id(op)]
                    if id(def_block) not in reachable:
                        continue
                    if isinstance(instr, Phi):
                        edge = instr.incoming_blocks[idx]
                        if id(edge) in reachable and not dom.dominates(def_block, edge):
                            problems.append(
                                f"@{fn.name}:{block.name}: phi {instr.ref()} incoming "
                                f"{op.ref()} does not dominate edge %{edge.name}"
                            )
                    elif def_block is block:
                        if def_pos >= i:
                            problems.append(
                                f"@{fn.name}:{block.name}: {op.ref()} used before "
                                f"definition by {instr.opcode}"
                            )
                    elif not dom.dominates(def_block, block):
                        problems.append(
                            f"@{fn.name}:{block.name}: {op.ref()} (defined in "
                            f"%{def_block.name}) does not dominate use in {instr.opcode}"
                        )
    return problems
