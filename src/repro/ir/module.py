"""Containers: Module → Function → BasicBlock → Instruction.

A :class:`Function` with no blocks is a *declaration* — that is how runtime
API functions such as ``@injectFaultFloatTy`` and the detector entry point
``@checkInvariantsForeachFullBody`` appear in instrumented modules, exactly
as in the paper's Fig. 5 and Fig. 7 listings.  The VM binds declarations to
host callables at execution time.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import IRError
from .instructions import Instruction, Phi
from .types import FunctionType, Type
from .values import Argument, Value


class BasicBlock(Value):
    """A label plus an ordered list of instructions ending in a terminator."""

    __slots__ = ("instructions", "parent")

    def __init__(self, name: str, parent: "Function | None" = None):
        from .types import VOID

        super().__init__(VOID, name)
        self.instructions: list[Instruction] = []
        self.parent = parent

    # -- structure -----------------------------------------------------------

    def _bump_version(self) -> None:
        fn = self.parent
        if fn is not None and fn.module is not None:
            fn.module.version += 1

    def append(self, instr: Instruction) -> Instruction:
        if self.is_terminated:
            raise IRError(f"block {self.name} is already terminated")
        instr.parent = self
        self.instructions.append(instr)
        self._bump_version()
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        instr.parent = self
        self.instructions.insert(index, instr)
        self._bump_version()
        return instr

    def insert_before(self, anchor: Instruction, instr: Instruction) -> Instruction:
        return self.insert(self.instructions.index(anchor), instr)

    def insert_after(self, anchor: Instruction, instr: Instruction) -> Instruction:
        return self.insert(self.instructions.index(anchor) + 1, instr)

    def remove(self, instr: Instruction) -> None:
        self.instructions.remove(instr)
        instr.parent = None
        self._bump_version()

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []  # type: ignore[attr-defined]

    def predecessors(self) -> list["BasicBlock"]:
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors()]

    def phis(self) -> list[Phi]:
        return [i for i in self.instructions if isinstance(i, Phi)]

    def non_phi_instructions(self) -> list[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    def first_non_phi_index(self) -> int:
        for i, instr in enumerate(self.instructions):
            if not isinstance(instr, Phi):
                return i
        return len(self.instructions)

    def ref(self) -> str:
        return f"%{self.name}"

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BasicBlock {self.name} ({len(self.instructions)} instrs)>"


class Function(Value):
    """A function definition or declaration."""

    __slots__ = ("function_type", "args", "blocks", "module", "attributes")

    def __init__(
        self,
        name: str,
        function_type: FunctionType,
        arg_names: Iterable[str] | None = None,
        module: "Module | None" = None,
    ):
        super().__init__(function_type, name)
        self.function_type = function_type
        names = list(arg_names) if arg_names is not None else [
            f"arg{i}" for i in range(len(function_type.params))
        ]
        if len(names) != len(function_type.params):
            raise IRError(
                f"@{name}: {len(names)} argument names for "
                f"{len(function_type.params)} parameters"
            )
        self.args = [Argument(t, n, self) for t, n in zip(function_type.params, names)]
        self.blocks: list[BasicBlock] = []
        self.module = module
        # Free-form attribute set: "intrinsic", "detector", "vulfi-runtime"...
        self.attributes: set[str] = set()

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def return_type(self) -> Type:
        return self.function_type.return_type

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"@{self.name} is a declaration; it has no entry block")
        return self.blocks[0]

    def add_block(self, name: str, after: BasicBlock | None = None) -> BasicBlock:
        block = BasicBlock(self._unique_block_name(name), self)
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        if self.module is not None:
            self.module.version += 1
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None
        if self.module is not None:
            self.module.version += 1

    def get_block(self, name: str) -> BasicBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise IRError(f"@{self.name} has no block named {name}")

    def _unique_block_name(self, base: str) -> str:
        existing = {b.name for b in self.blocks}
        if base not in existing:
            return base
        i = 1
        while f"{base}{i}" in existing:
            i += 1
        return f"{base}{i}"

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def renumber(self) -> None:
        """Assign unique names to every unnamed or colliding local value.

        Keeps meaningful names (codegen emits the paper's ``new_counter``,
        ``aligned_end``...) and gives anonymous temporaries sequential
        numeric names, LLVM-style.
        """
        taken: set[str] = {a.name for a in self.args}
        counter = 0

        def fresh(base: str) -> str:
            nonlocal counter
            if base and base not in taken:
                taken.add(base)
                return base
            if base:
                i = 1
                while f"{base}.{i}" in taken:
                    i += 1
                name = f"{base}.{i}"
                taken.add(name)
                return name
            while str(counter) in taken:
                counter += 1
            name = str(counter)
            counter += 1
            taken.add(name)
            return name

        block_taken: set[str] = set()
        for block in self.blocks:
            base = block.name or "bb"
            if base in block_taken:
                i = 1
                while f"{base}.{i}" in block_taken:
                    i += 1
                base = f"{base}.{i}"
            block.name = base
            block_taken.add(base)
            for instr in block.instructions:
                if instr.has_lvalue():
                    instr.name = fresh(instr.name)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "declare" if self.is_declaration else "define"
        return f"<{kind} @{self.name}>"


class Module:
    """Top-level IR container: an ordered set of functions.

    ``version`` counts structural mutations (blocks/instructions/operands
    added, removed, or rewired).  The VM's pre-decoded execution cache
    (:mod:`repro.vm.decode`) keys on it, so any IR change after a run
    transparently invalidates the decoded program.
    """

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.version = 0

    def __getstate__(self) -> dict:
        # The decode cache holds closures; never let it ride along a pickle
        # (parallel campaign workers ship pristine modules between processes).
        state = self.__dict__.copy()
        state.pop("_vm_decoded", None)
        return state

    def add_function(
        self,
        name: str,
        function_type: FunctionType,
        arg_names: Iterable[str] | None = None,
    ) -> Function:
        if name in self.functions:
            raise IRError(f"module already defines @{name}")
        fn = Function(name, function_type, arg_names, self)
        self.functions[name] = fn
        self.version += 1
        return fn

    def declare_function(
        self,
        name: str,
        function_type: FunctionType,
        attributes: Iterable[str] = (),
    ) -> Function:
        """Add (or fetch an identical existing) declaration."""
        if name in self.functions:
            fn = self.functions[name]
            if fn.function_type != function_type:
                raise IRError(
                    f"conflicting declaration of @{name}: "
                    f"{fn.function_type} vs {function_type}"
                )
            fn.attributes.update(attributes)
            return fn
        fn = Function(name, function_type, None, self)
        fn.attributes.update(attributes)
        self.functions[name] = fn
        self.version += 1
        return fn

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"module has no function @{name}") from None

    def defined_functions(self) -> list[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def renumber(self) -> None:
        for fn in self.defined_functions():
            fn.renumber()

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Module {self.name} ({len(self.functions)} functions)>"
