"""Def-use dataflow queries, chiefly the *forward slice* of §II-C.

The forward slice of a value is the set of instructions transitively reachable
through SSA def-use edges starting at the value's direct users.  VULFI
classifies a fault site by inspecting its slice:

* slice contains a ``getelementptr``            → **address site**
* slice contains a control-flow instruction     → **control site**
* neither                                        → **pure-data site**

The slice follows registers only (not through memory); this matches an
IR-level slicer over SSA form.  Stores are *included* in the slice as
members (a faulty value flowing into a store is still pure data unless the
address side is involved) but the slice does not continue from a store to
the loads that may read the location.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .instructions import Instruction
from .values import Value


def forward_slice(value: Value) -> list[Instruction]:
    """All instructions transitively data-dependent on ``value``.

    The returned list is in BFS order and does not include ``value`` itself
    (even when it is an instruction).
    """
    seen: set[int] = set()
    order: list[Instruction] = []
    frontier: list[Value] = [value]
    while frontier:
        current = frontier.pop()
        for user in current.users():
            if id(user) in seen:
                continue
            seen.add(id(user))
            order.append(user)
            # Continue through the user's own result, if it has one.
            if user.has_lvalue():
                frontier.append(user)
    return order


def slice_contains(value: Value, predicate: Callable[[Instruction], bool]) -> bool:
    """Early-exit test: does any instruction in the forward slice satisfy
    ``predicate``?  Equivalent to ``any(map(predicate, forward_slice(value)))``
    but does not materialize the slice."""
    seen: set[int] = set()
    frontier: list[Value] = [value]
    while frontier:
        current = frontier.pop()
        for user in current.users():
            if id(user) in seen:
                continue
            seen.add(id(user))
            if predicate(user):
                return True
            if user.has_lvalue():
                frontier.append(user)
    return False


def defs_used_by(instr: Instruction) -> list[Instruction]:
    """Instruction operands of ``instr`` (its immediate data dependencies)."""
    return [op for op in instr.operands if isinstance(op, Instruction)]


def backward_slice(instr: Instruction) -> list[Instruction]:
    """All instructions ``instr`` transitively depends on (registers only)."""
    seen: set[int] = set()
    order: list[Instruction] = []
    frontier: list[Instruction] = [instr]
    while frontier:
        current = frontier.pop()
        for dep in defs_used_by(current):
            if id(dep) in seen:
                continue
            seen.add(id(dep))
            order.append(dep)
            frontier.append(dep)
    return order


def transitive_users(values: Iterable[Value]) -> set[int]:
    """ids of every instruction in the union of the values' forward slices."""
    result: set[int] = set()
    for v in values:
        for instr in forward_slice(v):
            result.add(id(instr))
    return result
