"""Textual IR emission, LLVM-flavoured.

Output round-trips through :mod:`repro.ir.parser` — this pair is the "IR
text rewriting" path: tools can print a module, edit the text, and re-parse
it, in addition to rewriting in-memory IR directly.
"""

from __future__ import annotations

from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    CastOp,
    CompareOp,
    CondBranch,
    ExtractElement,
    FNeg,
    GetElementPtr,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    ShuffleVector,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .types import I32
from .values import Value


def _op(value: Value) -> str:
    """Print an operand as ``type ref``."""
    return f"{value.type} {value.ref()}"


def format_instruction(instr: Instruction) -> str:
    """Render one instruction (no indentation, no trailing newline)."""
    lhs = f"%{instr.name} = " if instr.has_lvalue() else ""

    if isinstance(instr, BinaryOp):
        return f"{lhs}{instr.opcode} {instr.type} {instr.lhs.ref()}, {instr.rhs.ref()}"
    if isinstance(instr, FNeg):
        return f"{lhs}fneg {_op(instr.operands[0])}"
    if isinstance(instr, CompareOp):
        return (
            f"{lhs}{instr.opcode} {instr.predicate} "
            f"{instr.lhs.type} {instr.lhs.ref()}, {instr.rhs.ref()}"
        )
    if isinstance(instr, Select):
        cond, a, b = instr.operands
        return f"{lhs}select {_op(cond)}, {_op(a)}, {_op(b)}"
    if isinstance(instr, CastOp):
        return f"{lhs}{instr.opcode} {_op(instr.operands[0])} to {instr.type}"
    if isinstance(instr, Alloca):
        suffix = f", i32 {instr.count}" if instr.count != 1 else ""
        return f"{lhs}alloca {instr.allocated_type}{suffix}"
    if isinstance(instr, Load):
        return f"{lhs}load {instr.type}, {_op(instr.pointer)}"
    if isinstance(instr, Store):
        return f"store {_op(instr.value)}, {_op(instr.pointer)}"
    if isinstance(instr, GetElementPtr):
        base = instr.base
        return (
            f"{lhs}getelementptr {base.type.pointee}, {_op(base)}, {_op(instr.index)}"
        )
    if isinstance(instr, ExtractElement):
        return f"{lhs}extractelement {_op(instr.vector_operand)}, {_op(instr.index)}"
    if isinstance(instr, InsertElement):
        return (
            f"{lhs}insertelement {_op(instr.vector_operand)}, "
            f"{_op(instr.element)}, {_op(instr.index)}"
        )
    if isinstance(instr, ShuffleVector):
        mask = ", ".join(f"i32 {m}" for m in instr.mask)
        return (
            f"{lhs}shufflevector {_op(instr.operands[0])}, "
            f"{_op(instr.operands[1])}, <{len(instr.mask)} x i32> <{mask}>"
        )
    if isinstance(instr, Phi):
        pairs = ", ".join(
            f"[ {value.ref()}, %{block.name} ]" for value, block in instr.incoming()
        )
        return f"{lhs}phi {instr.type} {pairs}"
    if isinstance(instr, Call):
        args = ", ".join(_op(a) for a in instr.operands)
        callee = instr.callee
        if instr.type.is_void():
            return f"call void @{callee.name}({args})"
        return f"{lhs}call {instr.type} @{callee.name}({args})"
    if isinstance(instr, Branch):
        return f"br label %{instr.target.name}"
    if isinstance(instr, CondBranch):
        return (
            f"br i1 {instr.condition.ref()}, label %{instr.true_target.name}, "
            f"label %{instr.false_target.name}"
        )
    if isinstance(instr, Return):
        value = instr.return_value
        return "ret void" if value is None else f"ret {_op(value)}"
    if isinstance(instr, Unreachable):
        return "unreachable"
    raise NotImplementedError(f"cannot print opcode {instr.opcode}")


def format_function(fn: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    header = f"@{fn.name}({params})"
    if fn.is_declaration:
        # Declarations print parameter types only, LLVM-style.
        params = ", ".join(str(t) for t in fn.function_type.params)
        return f"declare {fn.return_type} @{fn.name}({params})"
    lines = [f"define {fn.return_type} {header} {{"]
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for instr in block.instructions:
            lines.append(f"  {format_instruction(instr)}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    module.renumber()
    parts = [f"; ModuleID = '{module.name}'"]
    # Declarations first so a parse of the output never sees a call to a
    # not-yet-declared function.
    for fn in module:
        if fn.is_declaration:
            parts.append(format_function(fn))
    for fn in module:
        if not fn.is_declaration:
            parts.append(format_function(fn))
    return "\n\n".join(parts) + "\n"


def print_module(module: Module) -> str:
    """Alias matching common LLVM tooling vocabulary."""
    return format_module(module)
