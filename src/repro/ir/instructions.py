"""Instruction set of the vector IR.

The opcodes mirror the LLVM 3.2 subset that the paper's tooling manipulates:
integer/float arithmetic, comparisons, ``select``, memory operations
(``alloca``/``load``/``store``/``getelementptr``), the vector shuffles
(``extractelement``/``insertelement``/``shufflevector``), casts, control flow
(``br``/``ret``/``phi``) and ``call`` — which also carries every intrinsic,
including the masked AVX/SSE vector loads and stores of paper Fig. 5.

Instructions *are* values (their Lvalue result), so use-def bookkeeping lives
in :class:`~repro.ir.values.Value`.  Every instruction carries a ``meta``
dict that passes use for bookkeeping; VULFI marks its own injected calls with
``meta["vulfi"] = True`` so they are never themselves treated as fault sites.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import IRError
from .types import (
    I1,
    I64,
    FloatType,
    IntType,
    PointerType,
    Type,
    VectorType,
    VOID,
    pointer,
    vector,
)
from .values import Value

if TYPE_CHECKING:  # pragma: no cover
    from .module import BasicBlock, Function


INT_BINARY_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "sdiv",
        "udiv",
        "srem",
        "urem",
        "and",
        "or",
        "xor",
        "shl",
        "lshr",
        "ashr",
    }
)
FLOAT_BINARY_OPS = frozenset({"fadd", "fsub", "fmul", "fdiv", "frem"})
ICMP_PREDICATES = frozenset(
    {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
)
FCMP_PREDICATES = frozenset(
    {"oeq", "one", "olt", "ole", "ogt", "oge", "ord", "uno", "ueq", "une",
     "ult", "ule", "ugt", "uge"}
)
CAST_OPS = frozenset(
    {
        "bitcast",
        "zext",
        "sext",
        "trunc",
        "sitofp",
        "uitofp",
        "fptosi",
        "fptoui",
        "fpext",
        "fptrunc",
        "ptrtoint",
        "inttoptr",
    }
)


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise IRError(message)


class Instruction(Value):
    """Base class of all IR instructions."""

    __slots__ = ("opcode", "operands", "parent", "meta")

    opcode: str

    def __init__(self, opcode: str, type: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type, name)
        self.opcode = opcode
        self.parent: "BasicBlock | None" = None
        self.meta: dict = {}
        self.operands: list[Value] = []
        for op in operands:
            self._append_operand(op)

    # -- operand management --------------------------------------------------

    def _bump_version(self) -> None:
        """Invalidate the module's decoded-execution cache (if attached)."""
        block = self.parent
        if block is not None:
            fn = block.parent
            if fn is not None and fn.module is not None:
                fn.module.version += 1

    def _append_operand(self, value: Value) -> None:
        _require(isinstance(value, Value), f"operand of {self.opcode} must be a Value")
        index = len(self.operands)
        self.operands.append(value)
        value._add_use(self, index)
        self._bump_version()

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        old._remove_use(self, index)
        self.operands[index] = value
        value._add_use(self, index)
        self._bump_version()

    def drop_all_references(self) -> None:
        """Detach from all operands (used when erasing an instruction)."""
        for index, op in enumerate(self.operands):
            op._remove_use(self, index)
        self.operands = []
        self._bump_version()

    # -- classification hooks --------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return False

    @property
    def is_control_flow(self) -> bool:
        """Whether this instruction *decides* control flow from a data value.

        Used by the §II-C forward-slice classifier: a fault site whose slice
        reaches a control-flow instruction is a *control site*.  Only
        conditional branches qualify — an unconditional ``br`` consumes no
        value and a ``ret``'s value does not select a successor.
        """
        return False

    @property
    def has_side_effects(self) -> bool:
        return False

    @property
    def is_vector_instruction(self) -> bool:
        """Paper §II-A: an instruction with at least one vector-typed operand
        (or a vector result)."""
        if self.type.is_vector():
            return True
        return any(op.type.is_vector() for op in self.operands)

    def has_lvalue(self) -> bool:
        """Whether the instruction produces a register result."""
        return not self.type.is_void()

    # -- misc -----------------------------------------------------------------

    @property
    def function(self) -> "Function | None":
        return self.parent.parent if self.parent is not None else None

    def erase(self) -> None:
        """Remove from the parent block and drop operand references."""
        if self.parent is not None:
            self.parent.remove(self)
        self.drop_all_references()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import format_instruction

        try:
            return f"<{format_instruction(self)}>"
        except Exception:
            return f"<{self.opcode} {self.ref()}>"


class BinaryOp(Instruction):
    """Integer and floating binary arithmetic, scalar or elementwise vector."""

    __slots__ = ()

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        _require(
            opcode in INT_BINARY_OPS or opcode in FLOAT_BINARY_OPS,
            f"unknown binary opcode {opcode}",
        )
        _require(lhs.type == rhs.type, f"{opcode}: operand types differ ({lhs.type} vs {rhs.type})")
        scalar = lhs.type.scalar_type
        if opcode in INT_BINARY_OPS:
            _require(scalar.is_integer(), f"{opcode} requires integer operands, got {lhs.type}")
        else:
            _require(scalar.is_float(), f"{opcode} requires float operands, got {lhs.type}")
        super().__init__(opcode, lhs.type, [lhs, rhs], name)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class FNeg(Instruction):
    __slots__ = ()

    def __init__(self, operand: Value, name: str = ""):
        _require(operand.type.scalar_type.is_float(), "fneg requires float operand")
        super().__init__("fneg", operand.type, [operand], name)


class CompareOp(Instruction):
    """``icmp``/``fcmp``; result is i1 or a vector of i1 (a lane mask)."""

    __slots__ = ("predicate",)

    def __init__(self, opcode: str, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        _require(opcode in ("icmp", "fcmp"), f"bad compare opcode {opcode}")
        preds = ICMP_PREDICATES if opcode == "icmp" else FCMP_PREDICATES
        _require(predicate in preds, f"{opcode}: unknown predicate {predicate}")
        _require(lhs.type == rhs.type, f"{opcode}: operand types differ")
        scalar = lhs.type.scalar_type
        if opcode == "icmp":
            _require(
                scalar.is_integer() or scalar.is_pointer(),
                f"icmp requires int/pointer operands, got {lhs.type}",
            )
        else:
            _require(scalar.is_float(), f"fcmp requires float operands, got {lhs.type}")
        if lhs.type.is_vector():
            result: Type = vector(I1, lhs.type.vector_length)
        else:
            result = I1
        super().__init__(opcode, result, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Select(Instruction):
    """``select cond, a, b``; a vector i1 condition blends per lane."""

    __slots__ = ()

    def __init__(self, cond: Value, on_true: Value, on_false: Value, name: str = ""):
        _require(on_true.type == on_false.type, "select arms must share a type")
        if cond.type == I1:
            pass
        elif cond.type.is_vector() and cond.type.scalar_type == I1:
            _require(
                on_true.type.is_vector()
                and on_true.type.vector_length == cond.type.vector_length,
                "vector select: arm/cond lane counts differ",
            )
        else:
            raise IRError(f"select condition must be i1 or <N x i1>, got {cond.type}")
        super().__init__("select", on_true.type, [cond, on_true, on_false], name)

    @property
    def condition(self) -> Value:
        return self.operands[0]


class CastOp(Instruction):
    __slots__ = ()

    def __init__(self, opcode: str, operand: Value, target: Type, name: str = ""):
        _require(opcode in CAST_OPS, f"unknown cast {opcode}")
        src, dst = operand.type, target
        _require(
            src.vector_length == dst.vector_length,
            f"{opcode}: lane count changes ({src} -> {dst})",
        )
        s, d = src.scalar_type, dst.scalar_type
        ok = {
            "bitcast": (s.is_pointer() and d.is_pointer())
            or (not s.is_pointer() and not d.is_pointer() and s.store_size() == d.store_size()),
            "zext": s.is_integer() and d.is_integer() and d.bits > s.bits,
            "sext": s.is_integer() and d.is_integer() and d.bits > s.bits,
            "trunc": s.is_integer() and d.is_integer() and d.bits < s.bits,
            "sitofp": s.is_integer() and d.is_float(),
            "uitofp": s.is_integer() and d.is_float(),
            "fptosi": s.is_float() and d.is_integer(),
            "fptoui": s.is_float() and d.is_integer(),
            "fpext": s.is_float() and d.is_float() and d.bits > s.bits,
            "fptrunc": s.is_float() and d.is_float() and d.bits < s.bits,
            "ptrtoint": s.is_pointer() and d.is_integer(),
            "inttoptr": s.is_integer() and d.is_pointer(),
        }[opcode]
        _require(ok, f"invalid {opcode} from {src} to {dst}")
        super().__init__(opcode, target, [operand], name)


class Alloca(Instruction):
    """Stack allocation; result is a pointer to ``allocated_type``."""

    __slots__ = ("allocated_type", "count")

    def __init__(self, allocated_type: Type, count: int = 1, name: str = ""):
        _require(allocated_type.is_first_class(), f"cannot alloca {allocated_type}")
        _require(count >= 1, "alloca count must be >= 1")
        super().__init__("alloca", pointer(allocated_type), [], name)
        self.allocated_type = allocated_type
        self.count = count

    @property
    def has_side_effects(self) -> bool:
        return True


class Load(Instruction):
    """Scalar or whole-vector load through a scalar pointer."""

    __slots__ = ()

    def __init__(self, ptr: Value, name: str = ""):
        _require(ptr.type.is_pointer(), f"load requires pointer operand, got {ptr.type}")
        pointee = ptr.type.pointee
        _require(pointee.is_first_class(), f"cannot load {pointee}")
        super().__init__("load", pointee, [ptr], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """``store value, ptr`` — no Lvalue; VULFI injects into the value operand
    *before* the store executes (paper §II-B)."""

    __slots__ = ()

    def __init__(self, value: Value, ptr: Value):
        _require(ptr.type.is_pointer(), f"store requires pointer operand, got {ptr.type}")
        _require(
            ptr.type.pointee == value.type,
            f"store type mismatch: {value.type} into {ptr.type}",
        )
        super().__init__("store", VOID, [value, ptr])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    @property
    def has_side_effects(self) -> bool:
        return True


class GetElementPtr(Instruction):
    """Address arithmetic: ``gep T* %base, idx`` → ``T*`` (element stride).

    A vector index produces a vector of pointers (the address stream of a
    gather/scatter).  This is the instruction whose presence in a forward
    slice makes a fault site an *address site* (paper §II-C).
    """

    __slots__ = ()

    def __init__(self, base: Value, index: Value, name: str = ""):
        _require(base.type.is_pointer(), f"gep base must be a pointer, got {base.type}")
        _require(
            index.type.scalar_type.is_integer(),
            f"gep index must be integer, got {index.type}",
        )
        if index.type.is_vector():
            result: Type = vector(base.type, index.type.vector_length)
        else:
            result = base.type
        super().__init__("getelementptr", result, [base, index], name)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class ExtractElement(Instruction):
    __slots__ = ()

    def __init__(self, vec: Value, index: Value, name: str = ""):
        _require(vec.type.is_vector(), f"extractelement requires vector, got {vec.type}")
        _require(index.type.is_integer(), "extractelement index must be integer")
        super().__init__("extractelement", vec.type.scalar_type, [vec, index], name)

    @property
    def vector_operand(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class InsertElement(Instruction):
    __slots__ = ()

    def __init__(self, vec: Value, element: Value, index: Value, name: str = ""):
        _require(vec.type.is_vector(), f"insertelement requires vector, got {vec.type}")
        _require(
            vec.type.scalar_type == element.type,
            f"insertelement type mismatch: {element.type} into {vec.type}",
        )
        _require(index.type.is_integer(), "insertelement index must be integer")
        super().__init__("insertelement", vec.type, [vec, element, index], name)

    @property
    def vector_operand(self) -> Value:
        return self.operands[0]

    @property
    def element(self) -> Value:
        return self.operands[1]

    @property
    def index(self) -> Value:
        return self.operands[2]


class ShuffleVector(Instruction):
    """``shufflevector v1, v2, mask`` with a static integer mask.

    Lane ``i`` of the result takes element ``mask[i]`` from the concatenation
    of ``v1`` and ``v2``.  A mask of all zeros against an ``undef`` second
    operand is the canonical uniform-value broadcast (paper Fig. 9).
    """

    __slots__ = ("mask",)

    def __init__(self, v1: Value, v2: Value, mask: Iterable[int], name: str = ""):
        _require(v1.type.is_vector(), "shufflevector requires vector operands")
        _require(v1.type == v2.type, "shufflevector operands must share a type")
        mask = tuple(int(m) for m in mask)
        limit = 2 * v1.type.vector_length
        _require(
            all(0 <= m < limit for m in mask),
            f"shuffle mask indices must be in [0,{limit})",
        )
        result = vector(v1.type.scalar_type, len(mask))
        super().__init__("shufflevector", result, [v1, v2], name)
        self.mask = mask

    @classmethod
    def is_broadcast(cls, instr: "Instruction") -> bool:
        """Recognize the broadcast idiom of paper Fig. 9: a shuffle whose mask
        is all-zero and whose first operand got lane 0 from an insertelement."""
        return (
            isinstance(instr, cls)
            and all(m == 0 for m in instr.mask)
            and isinstance(instr.operands[0], InsertElement)
        )


class Phi(Instruction):
    """SSA phi node; incoming blocks tracked parallel to operands."""

    __slots__ = ("incoming_blocks",)

    def __init__(self, type: Type, name: str = ""):
        super().__init__("phi", type, [], name)
        self.incoming_blocks: list["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        _require(value.type == self.type, f"phi incoming type {value.type} != {self.type}")
        self._append_operand(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> list[tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block: "BasicBlock") -> Value:
        for value, b in self.incoming():
            if b is block:
                return value
        raise IRError(f"phi {self.ref()} has no incoming value for block {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i, b in enumerate(self.incoming_blocks):
            if b is block:
                op = self.operands[i]
                op._remove_use(self, i)
                # Reindex the remaining uses of later operands.
                for j in range(i + 1, len(self.operands)):
                    self.operands[j]._remove_use(self, j)
                del self.operands[i]
                del self.incoming_blocks[i]
                for j in range(i, len(self.operands)):
                    self.operands[j]._add_use(self, j)
                self._bump_version()
                return
        raise IRError(f"phi has no incoming edge from {block.name}")


class Call(Instruction):
    """Direct call to a :class:`~repro.ir.module.Function` (incl. intrinsics)."""

    __slots__ = ("callee",)

    def __init__(self, callee, args: Sequence[Value], name: str = ""):
        ftype = callee.function_type
        if not ftype.varargs:
            _require(
                len(args) == len(ftype.params),
                f"call to @{callee.name}: expected {len(ftype.params)} args, got {len(args)}",
            )
        for i, (arg, pty) in enumerate(zip(args, ftype.params)):
            _require(
                arg.type == pty,
                f"call to @{callee.name}: arg {i} has type {arg.type}, expected {pty}",
            )
        super().__init__("call", ftype.return_type, list(args), name)
        self.callee = callee

    @property
    def has_side_effects(self) -> bool:
        return True


class Branch(Instruction):
    __slots__ = ("target",)

    def __init__(self, target: "BasicBlock"):
        super().__init__("br", VOID, [])
        self.target = target

    @property
    def is_terminator(self) -> bool:
        return True

    def successors(self) -> list["BasicBlock"]:
        return [self.target]


class CondBranch(Instruction):
    __slots__ = ("true_target", "false_target")

    def __init__(self, cond: Value, true_target: "BasicBlock", false_target: "BasicBlock"):
        _require(cond.type == I1, f"condbr condition must be i1, got {cond.type}")
        super().__init__("condbr", VOID, [cond])
        self.true_target = true_target
        self.false_target = false_target

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def is_terminator(self) -> bool:
        return True

    @property
    def is_control_flow(self) -> bool:
        return True

    def successors(self) -> list["BasicBlock"]:
        return [self.true_target, self.false_target]


class Return(Instruction):
    __slots__ = ()

    def __init__(self, value: Value | None = None):
        super().__init__("ret", VOID, [] if value is None else [value])

    @property
    def return_value(self) -> Value | None:
        return self.operands[0] if self.operands else None

    @property
    def is_terminator(self) -> bool:
        return True

    def successors(self) -> list["BasicBlock"]:
        return []


class Unreachable(Instruction):
    __slots__ = ()

    def __init__(self):
        super().__init__("unreachable", VOID, [])

    @property
    def is_terminator(self) -> bool:
        return True

    def successors(self) -> list["BasicBlock"]:
        return []


TERMINATOR_OPCODES = frozenset({"br", "condbr", "ret", "unreachable"})
