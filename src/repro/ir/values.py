"""Value hierarchy for the vector IR.

Everything an instruction can reference is a :class:`Value`: constants,
function arguments, instructions (their Lvalue results), functions, and
undef.  Values track their *uses* — (user, operand-index) pairs — which is
what both the instrumentor's "replace all users of the original vector
register" step (paper §II-D) and the forward-slice classifier (§II-C) walk.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from .types import (
    F32,
    F64,
    FloatType,
    IntType,
    PointerType,
    Type,
    VectorType,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .instructions import Instruction


class Value:
    """Base class of everything referenceable by an instruction operand."""

    __slots__ = ("type", "name", "_uses")

    def __init__(self, type: Type, name: str = ""):
        self.type = type
        self.name = name
        # Each use is (user instruction, operand index).  A user may appear
        # several times with different indices (e.g. `add %x, %x`).
        self._uses: list[tuple["Instruction", int]] = []

    # -- use tracking -------------------------------------------------------

    @property
    def uses(self) -> tuple[tuple["Instruction", int], ...]:
        return tuple(self._uses)

    def users(self) -> list["Instruction"]:
        """Distinct instructions that use this value, in first-use order."""
        seen: list[Instruction] = []
        for user, _ in self._uses:
            if user not in seen:
                seen.append(user)
        return seen

    def _add_use(self, user: "Instruction", index: int) -> None:
        self._uses.append((user, index))

    def _remove_use(self, user: "Instruction", index: int) -> None:
        self._uses.remove((user, index))

    def replace_all_uses_with(self, new: "Value") -> None:
        """Redirect every user of this value to ``new``.

        This is the final step of VULFI's per-register instrumentation
        workflow (paper Fig. 4): the cloned, instrumented register replaces
        the original for all downstream users.
        """
        if new is self:
            return
        for user, index in list(self._uses):
            user.set_operand(index, new)

    # -- printing helpers ----------------------------------------------------

    def ref(self) -> str:
        """How this value is written when used as an operand."""
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.type} {self.ref()}>"


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("function",)

    def __init__(self, type: Type, name: str, function=None):
        super().__init__(type, name)
        self.function = function


class Constant(Value):
    """Base class for immediate values."""

    def ref(self) -> str:
        raise NotImplementedError


class ConstantInt(Constant):
    __slots__ = ("value",)

    def __init__(self, type: IntType, value: int):
        if not isinstance(type, IntType):
            raise TypeError(f"ConstantInt requires IntType, got {type}")
        super().__init__(type)
        # Canonicalize into the signed range of the width so equal bit
        # patterns compare equal.
        mask = type.max_unsigned
        v = value & mask
        if type.bits > 1 and v > type.max_signed:
            v -= 1 << type.bits
        self.value = v

    def ref(self) -> str:
        if self.type.bits == 1:
            return "true" if self.value else "false"
        return str(self.value)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class ConstantFloat(Constant):
    __slots__ = ("value",)

    def __init__(self, type: FloatType, value: float):
        if not isinstance(type, FloatType):
            raise TypeError(f"ConstantFloat requires FloatType, got {type}")
        super().__init__(type)
        self.value = float(value)

    def ref(self) -> str:
        if math.isnan(self.value):
            return "nan"
        if math.isinf(self.value):
            return "inf" if self.value > 0 else "-inf"
        return repr(self.value)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ConstantFloat)
            and other.type == self.type
            and (
                other.value == self.value
                or (math.isnan(other.value) and math.isnan(self.value))
            )
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class ConstantVector(Constant):
    """A vector immediate: ``<i32 1, i32 2, ...>``."""

    __slots__ = ("elements",)

    def __init__(self, elements: Iterable[Constant]):
        elements = tuple(elements)
        if not elements:
            raise ValueError("constant vector must not be empty")
        elem_ty = elements[0].type
        if any(e.type != elem_ty for e in elements):
            raise TypeError("constant vector elements must share one type")
        super().__init__(VectorType(elem_ty, len(elements)))
        self.elements = elements

    def ref(self) -> str:
        inner = ", ".join(f"{e.type} {e.ref()}" for e in self.elements)
        return f"<{inner}>"

    def __eq__(self, other) -> bool:
        return isinstance(other, ConstantVector) and other.elements == self.elements

    def __hash__(self) -> int:
        return hash(self.elements)


class UndefValue(Constant):
    """LLVM ``undef`` — used to seed broadcast shuffles (paper Fig. 9)."""

    def ref(self) -> str:
        return "undef"

    def __eq__(self, other) -> bool:
        return isinstance(other, UndefValue) and other.type == self.type

    def __hash__(self) -> int:
        return hash(("undef", self.type))


class ConstantPointerNull(Constant):
    def __init__(self, type: PointerType):
        super().__init__(type)

    def ref(self) -> str:
        return "null"

    def __eq__(self, other) -> bool:
        return isinstance(other, ConstantPointerNull) and other.type == self.type

    def __hash__(self) -> int:
        return hash(("null", self.type))


# -- convenience constructors ------------------------------------------------


def const_int(type: IntType, value: int) -> ConstantInt:
    return ConstantInt(type, value)


def const_float(value: float, type: FloatType = F32) -> ConstantFloat:
    return ConstantFloat(type, value)


def const_double(value: float) -> ConstantFloat:
    return ConstantFloat(F64, value)


def const_bool(value: bool) -> ConstantInt:
    from .types import I1

    return ConstantInt(I1, int(bool(value)))


def splat(element: Constant, length: int) -> ConstantVector:
    """A constant vector with ``element`` in every lane."""
    return ConstantVector([element] * length)


def zeroinitializer(type: Type) -> Constant:
    """The all-zero constant of ``type``."""
    if isinstance(type, IntType):
        return ConstantInt(type, 0)
    if isinstance(type, FloatType):
        return ConstantFloat(type, 0.0)
    if isinstance(type, PointerType):
        return ConstantPointerNull(type)
    if isinstance(type, VectorType):
        return ConstantVector(
            [zeroinitializer(type.element) for _ in range(type.length)]
        )
    raise TypeError(f"no zero value for {type}")
