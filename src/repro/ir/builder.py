"""IRBuilder: convenience layer for constructing IR.

Mirrors LLVM's ``IRBuilder``: keeps an insertion point (a block, appending at
its end, or a position before an anchor instruction) and offers one method
per opcode.  Both the MiniISPC code generator and VULFI's instrumentor build
IR exclusively through this class.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import IRError
from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    CastOp,
    CompareOp,
    CondBranch,
    ExtractElement,
    FNeg,
    GetElementPtr,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    ShuffleVector,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function
from .types import I32, IntType, Type, VectorType, vector
from .values import (
    Constant,
    ConstantInt,
    UndefValue,
    Value,
    const_int,
)


class IRBuilder:
    def __init__(self, block: BasicBlock | None = None):
        self._block: BasicBlock | None = block
        self._anchor: Instruction | None = None  # insert before this, if set

    # -- positioning ---------------------------------------------------------

    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise IRError("builder has no insertion block")
        return self._block

    @property
    def function(self) -> Function:
        fn = self.block.parent
        if fn is None:
            raise IRError("insertion block is detached from any function")
        return fn

    def position_at_end(self, block: BasicBlock) -> None:
        self._block = block
        self._anchor = None

    def position_before(self, instr: Instruction) -> None:
        if instr.parent is None:
            raise IRError("cannot position before a detached instruction")
        self._block = instr.parent
        self._anchor = instr

    def position_after(self, instr: Instruction) -> None:
        """Insert subsequent instructions immediately after ``instr``."""
        if instr.parent is None:
            raise IRError("cannot position after a detached instruction")
        block = instr.parent
        idx = block.instructions.index(instr)
        if idx + 1 < len(block.instructions):
            self.position_before(block.instructions[idx + 1])
        else:
            self.position_at_end(block)

    def _insert(self, instr: Instruction) -> Instruction:
        if self._anchor is not None:
            self.block.insert_before(self._anchor, instr)
        else:
            self.block.append(instr)
        return instr

    # -- arithmetic ----------------------------------------------------------

    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._insert(BinaryOp(opcode, lhs, rhs, name))

    def add(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("sdiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("srem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("shl", lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("ashr", lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("lshr", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binop("fdiv", lhs, rhs, name)

    def fneg(self, value: Value, name: str = "") -> Value:
        return self._insert(FNeg(value, name))

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._insert(CompareOp("icmp", predicate, lhs, rhs, name))

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._insert(CompareOp("fcmp", predicate, lhs, rhs, name))

    def select(self, cond: Value, on_true: Value, on_false: Value, name: str = "") -> Value:
        return self._insert(Select(cond, on_true, on_false, name))

    def cast(self, opcode: str, value: Value, target: Type, name: str = "") -> Value:
        return self._insert(CastOp(opcode, value, target, name))

    def bitcast(self, value: Value, target: Type, name: str = "") -> Value:
        return self.cast("bitcast", value, target, name)

    def sext(self, value: Value, target: Type, name: str = "") -> Value:
        return self.cast("sext", value, target, name)

    def zext(self, value: Value, target: Type, name: str = "") -> Value:
        return self.cast("zext", value, target, name)

    def trunc(self, value: Value, target: Type, name: str = "") -> Value:
        return self.cast("trunc", value, target, name)

    def sitofp(self, value: Value, target: Type, name: str = "") -> Value:
        return self.cast("sitofp", value, target, name)

    def fptosi(self, value: Value, target: Type, name: str = "") -> Value:
        return self.cast("fptosi", value, target, name)

    # -- memory ---------------------------------------------------------------

    def alloca(self, allocated_type: Type, count: int = 1, name: str = "") -> Value:
        return self._insert(Alloca(allocated_type, count, name))

    def load(self, ptr: Value, name: str = "") -> Value:
        return self._insert(Load(ptr, name))

    def store(self, value: Value, ptr: Value) -> Instruction:
        return self._insert(Store(value, ptr))

    def gep(self, base: Value, index: Value, name: str = "") -> Value:
        return self._insert(GetElementPtr(base, index, name))

    # -- vectors ---------------------------------------------------------------

    def extractelement(self, vec: Value, index: Value | int, name: str = "") -> Value:
        if isinstance(index, int):
            index = const_int(I32, index)
        return self._insert(ExtractElement(vec, index, name))

    def insertelement(
        self, vec: Value, element: Value, index: Value | int, name: str = ""
    ) -> Value:
        if isinstance(index, int):
            index = const_int(I32, index)
        return self._insert(InsertElement(vec, element, index, name))

    def shufflevector(
        self, v1: Value, v2: Value, mask: Iterable[int], name: str = ""
    ) -> Value:
        return self._insert(ShuffleVector(v1, v2, mask, name))

    def broadcast(self, scalar: Value, length: int, name: str = "") -> Value:
        """Emit the paper-Fig.-9 idiom: insert into lane 0 of undef, then
        shuffle with an all-zero mask."""
        vec_ty = vector(scalar.type, length)
        init = self.insertelement(
            UndefValue(vec_ty), scalar, 0, name=f"{name or scalar.name}_broadcast_init"
        )
        return self.shufflevector(
            init, UndefValue(vec_ty), [0] * length, name=f"{name or scalar.name}_broadcast"
        )

    # -- control flow ------------------------------------------------------------

    def phi(self, type: Type, name: str = "") -> Phi:
        phi = Phi(type, name)
        self.block.insert(self.block.first_non_phi_index(), phi)
        phi.parent = self.block
        return phi

    def br(self, target: BasicBlock) -> Instruction:
        return self._insert(Branch(target))

    def condbr(self, cond: Value, t: BasicBlock, f: BasicBlock) -> Instruction:
        return self._insert(CondBranch(cond, t, f))

    def ret(self, value: Value | None = None) -> Instruction:
        return self._insert(Return(value))

    def unreachable(self) -> Instruction:
        return self._insert(Unreachable())

    def call(self, callee: Function, args: Sequence[Value], name: str = "") -> Value:
        return self._insert(Call(callee, args, name))

    # -- constants (sugar) ---------------------------------------------------------

    @staticmethod
    def i32(value: int) -> ConstantInt:
        return const_int(I32, value)

    @staticmethod
    def int_const(type: IntType, value: int) -> ConstantInt:
        return const_int(type, value)

    @staticmethod
    def undef(type: Type) -> UndefValue:
        return UndefValue(type)

    @staticmethod
    def splat_const(element: Constant, length: int) -> Constant:
        from .values import splat

        return splat(element, length)
