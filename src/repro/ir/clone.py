"""Structural deep-copy of IR modules.

Unlike the print→parse round trip, cloning preserves instruction ``meta``
(the foreach invariant markers, detector/VULFI exclusion flags) — any meta
entry that references an IR value of the same function is remapped to its
clone.  The fault-injection engine clones the module it instruments so the
caller's IR is never mutated.
"""

from __future__ import annotations

from ..errors import IRError
from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    CastOp,
    CompareOp,
    CondBranch,
    ExtractElement,
    FNeg,
    GetElementPtr,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    ShuffleVector,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .values import Constant, Value


def clone_module(module: Module, name: str | None = None) -> Module:
    new = Module(name if name is not None else module.name)
    fn_map: dict[int, Function] = {}
    for fn in module:
        clone = new.add_function(
            fn.name, fn.function_type, [a.name for a in fn.args]
        ) if not fn.is_declaration else new.declare_function(
            fn.name, fn.function_type
        )
        clone.attributes = set(fn.attributes)
        fn_map[id(fn)] = clone
    for fn in module:
        if not fn.is_declaration:
            _clone_body(fn, fn_map[id(fn)], fn_map)
    return new


def _clone_body(src: Function, dst: Function, fn_map: dict[int, Function]) -> None:
    vmap: dict[int, Value] = {}
    for a_old, a_new in zip(src.args, dst.args):
        vmap[id(a_old)] = a_new
    bmap: dict[int, BasicBlock] = {}
    for block in src.blocks:
        nb = BasicBlock(block.name, dst)
        dst.blocks.append(nb)
        bmap[id(block)] = nb

    def map_value(v: Value) -> Value:
        if isinstance(v, Constant):
            return v  # constants are immutable and safely shared
        mapped = vmap.get(id(v))
        if mapped is None:
            raise IRError(
                f"clone: value {v.ref()} used before being defined "
                f"(non-SSA input to clone?)"
            )
        return mapped

    # Visit blocks in dominator-tree preorder so every non-phi use sees its
    # definition already cloned (defs dominate uses in valid SSA); the block
    # *layout* order of the clone is preserved via bmap regardless.
    from .cfg import DominatorTree

    dom = DominatorTree(src)
    order: list[BasicBlock] = []
    stack = [src.entry]
    while stack:
        blk = stack.pop()
        order.append(blk)
        stack.extend(reversed(dom.children(blk)))
    reachable = {id(b) for b in order}
    order.extend(b for b in src.blocks if id(b) not in reachable)

    # Phis may reference values defined later (loop back edges): two passes.
    pending_phis: list[tuple[Phi, Phi]] = []
    for block in order:
        nb = bmap[id(block)]
        for instr in block.instructions:
            cloned = _clone_instruction(instr, map_value, bmap, fn_map, pending_phis)
            cloned.name = instr.name
            cloned.meta = dict(instr.meta)
            nb.instructions.append(cloned)
            cloned.parent = nb
            if instr.has_lvalue():
                vmap[id(instr)] = cloned
    for old_phi, new_phi in pending_phis:
        for value, inc_block in old_phi.incoming():
            new_phi.add_incoming(map_value(value), bmap[id(inc_block)])
    # Remap meta entries that point at values of this function.
    for block in dst.blocks:
        for instr in block.instructions:
            for key, val in list(instr.meta.items()):
                if isinstance(val, Value) and id(val) in vmap:
                    instr.meta[key] = vmap[id(val)]


def _clone_instruction(
    instr: Instruction,
    mv,
    bmap: dict[int, BasicBlock],
    fn_map: dict[int, Function],
    pending_phis: list,
) -> Instruction:
    if isinstance(instr, BinaryOp):
        return BinaryOp(instr.opcode, mv(instr.lhs), mv(instr.rhs))
    if isinstance(instr, FNeg):
        return FNeg(mv(instr.operands[0]))
    if isinstance(instr, CompareOp):
        return CompareOp(instr.opcode, instr.predicate, mv(instr.lhs), mv(instr.rhs))
    if isinstance(instr, Select):
        a, b, c = instr.operands
        return Select(mv(a), mv(b), mv(c))
    if isinstance(instr, CastOp):
        return CastOp(instr.opcode, mv(instr.operands[0]), instr.type)
    if isinstance(instr, Alloca):
        return Alloca(instr.allocated_type, instr.count)
    if isinstance(instr, Load):
        return Load(mv(instr.pointer))
    if isinstance(instr, Store):
        return Store(mv(instr.value), mv(instr.pointer))
    if isinstance(instr, GetElementPtr):
        return GetElementPtr(mv(instr.base), mv(instr.index))
    if isinstance(instr, ExtractElement):
        return ExtractElement(mv(instr.vector_operand), mv(instr.index))
    if isinstance(instr, InsertElement):
        return InsertElement(
            mv(instr.vector_operand), mv(instr.element), mv(instr.index)
        )
    if isinstance(instr, ShuffleVector):
        return ShuffleVector(mv(instr.operands[0]), mv(instr.operands[1]), instr.mask)
    if isinstance(instr, Phi):
        new_phi = Phi(instr.type)
        pending_phis.append((instr, new_phi))
        return new_phi
    if isinstance(instr, Call):
        callee = fn_map.get(id(instr.callee))
        if callee is None:
            raise IRError(f"clone: call to @{instr.callee.name} outside the module")
        return Call(callee, [mv(a) for a in instr.operands])
    if isinstance(instr, Branch):
        return Branch(bmap[id(instr.target)])
    if isinstance(instr, CondBranch):
        return CondBranch(
            mv(instr.condition),
            bmap[id(instr.true_target)],
            bmap[id(instr.false_target)],
        )
    if isinstance(instr, Return):
        rv = instr.return_value
        return Return(mv(rv) if rv is not None else None)
    if isinstance(instr, Unreachable):
        return Unreachable()
    raise IRError(f"clone: unhandled opcode {instr.opcode}")
