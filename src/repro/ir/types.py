"""Type system for the vector IR.

Modelled on LLVM's first-class types, restricted to what the paper's code
shapes need: fixed-width integers (i1/i8/i16/i32/i64), IEEE floats
(float/double), pointers, fixed-length vectors of scalars, void, and function
types.  Types are interned so identity comparison (`is`) works for the common
types, but ``__eq__`` performs structural comparison and is what IR code uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


class Type:
    """Base class for IR types."""

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_vector(self) -> bool:
        return isinstance(self, VectorType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_scalar(self) -> bool:
        """Integer, float, or pointer — the classes the fault model targets."""
        return self.is_integer() or self.is_float() or self.is_pointer()

    def is_first_class(self) -> bool:
        return self.is_scalar() or self.is_vector()

    @property
    def scalar_type(self) -> "Type":
        """The element type for vectors; the type itself for scalars."""
        if isinstance(self, VectorType):
            return self.element
        return self

    @property
    def vector_length(self) -> int:
        """Number of scalar lanes (1 for scalar types); the paper's ``Vl``."""
        if isinstance(self, VectorType):
            return self.length
        return 1

    def store_size(self) -> int:
        """Size in bytes when stored to memory."""
        raise NotImplementedError(f"type {self} has no store size")


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """Fixed-width two's-complement integer; ``i1`` doubles as bool/mask lane."""

    bits: int

    def __post_init__(self) -> None:
        if self.bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width i{self.bits}")

    def __str__(self) -> str:
        return f"i{self.bits}"

    def store_size(self) -> int:
        return max(1, self.bits // 8)

    @property
    def min_signed(self) -> int:
        return -(1 << (self.bits - 1)) if self.bits > 1 else -1

    @property
    def max_signed(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 0

    @property
    def max_unsigned(self) -> int:
        return (1 << self.bits) - 1


@dataclass(frozen=True)
class FloatType(Type):
    """IEEE-754 binary32 (``float``) or binary64 (``double``)."""

    bits: int

    def __post_init__(self) -> None:
        if self.bits not in (32, 64):
            raise ValueError(f"unsupported float width f{self.bits}")

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"

    def store_size(self) -> int:
        return self.bits // 8


@dataclass(frozen=True)
class PointerType(Type):
    """Pointer to a pointee type.  Pointers are 64-bit in the VM."""

    pointee: Type

    def __str__(self) -> str:
        return f"{self.pointee}*"

    def store_size(self) -> int:
        return 8


@dataclass(frozen=True)
class VectorType(Type):
    """Fixed-length vector of scalar elements, printed ``<N x T>``."""

    element: Type
    length: int

    def __post_init__(self) -> None:
        if not self.element.is_scalar():
            raise ValueError(f"vector element must be scalar, got {self.element}")
        if self.length < 1:
            raise ValueError("vector length must be positive")

    def __str__(self) -> str:
        return f"<{self.length} x {self.element}>"

    def store_size(self) -> int:
        return self.length * self.element.store_size()


@dataclass(frozen=True)
class FunctionType(Type):
    return_type: Type
    params: tuple[Type, ...]
    varargs: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(p) for p in self.params)
        if self.varargs:
            inner = inner + ", ..." if inner else "..."
        return f"{self.return_type} ({inner})"


# Interned singletons for the common types ---------------------------------

VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


@lru_cache(maxsize=None)
def pointer(pointee: Type) -> PointerType:
    return PointerType(pointee)


@lru_cache(maxsize=None)
def vector(element: Type, length: int) -> VectorType:
    return VectorType(element, length)


def parse_type(text: str) -> Type:
    """Parse a type written in the printer's syntax (no function types)."""
    text = text.strip()
    if text.endswith("*"):
        return pointer(parse_type(text[:-1]))
    if text.startswith("<") and text.endswith(">"):
        body = text[1:-1]
        n_str, _, elem_str = body.partition(" x ")
        return vector(parse_type(elem_str), int(n_str))
    if text == "void":
        return VOID
    if text == "float":
        return F32
    if text == "double":
        return F64
    if text.startswith("i") and text[1:].isdigit():
        return IntType(int(text[1:]))
    raise ValueError(f"cannot parse type {text!r}")
