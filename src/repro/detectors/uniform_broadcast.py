"""The uniform-broadcast XOR detector (paper §III-B).

A ``uniform`` value is broadcast to a vector register with the Fig.-9
``insertelement`` + ``shufflevector`` idiom; all lanes must then hold the
same value.  This pass inserts, after each broadcast, a checker that XORs
every lane against lane 0 ("inexpensively achieved by XORing"), ORs the
differences together, and branches to a reporting block when non-zero::

    %lane0 = extractelement <8 x i32> %bc, i32 0
    %x1    = extractelement <8 x i32> %bc, i32 1
    %d1    = xor i32 %x1, %lane0
    ...
    %acc   = or i32 %d1, ... , %d7
    %bad   = icmp ne i32 %acc, 0
    br i1 %bad, label %uniform_check_fail, label %cont

Float broadcasts are bit-cast to an integer vector first so the comparison
is bitwise (two NaNs with different payloads still differ — exactly what a
bit flip produces).

The paper leaves implementing this detector to future work; it is built
here and ablated in the extended benchmarks.  All inserted instructions are
``meta['detector']``-marked so they are never fault sites.
"""

from __future__ import annotations

from ..ir.builder import IRBuilder
from ..ir.instructions import Branch, Instruction, ShuffleVector
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import F32, FloatType, I32, IntType, vector
from ..ir.values import const_int
from .runtime import DET_UNIFORM_BROADCAST, REPORT_DETECTION, declare_detector_api

FAIL_BLOCK_NAME = "uniform_check_fail"


def _split_block(block: BasicBlock, index: int, name: str) -> BasicBlock:
    """Split ``block`` before instruction ``index``; the tail moves to a new
    block and the original gets an unconditional branch (replaced by the
    caller).  Phi edges in successors are re-pointed at the tail."""
    fn = block.parent
    assert fn is not None
    tail = fn.add_block(name, after=block)
    moving = block.instructions[index:]
    del block.instructions[index:]
    for instr in moving:
        instr.parent = tail
    tail.instructions = moving
    for succ in tail.successors():
        for phi in succ.phis():
            for i, inc in enumerate(phi.incoming_blocks):
                if inc is block:
                    phi.incoming_blocks[i] = tail
    return tail


def insert_uniform_broadcast_detectors(module: Module) -> int:
    """Insert an XOR checker after every broadcast; returns how many."""
    declare_detector_api(module)
    report = module.get_function(REPORT_DETECTION)
    count = 0
    for fn in module.defined_functions():
        # Snapshot: we mutate the block list while iterating.
        broadcasts = [
            i
            for i in fn.instructions()
            if isinstance(i, ShuffleVector)
            and ShuffleVector.is_broadcast(i)
            and not i.meta.get("detector")
            and not i.meta.get("vulfi")
        ]
        for bc in broadcasts:
            _instrument_broadcast(fn, bc, report)
            count += 1
    return count


def _instrument_broadcast(fn: Function, bc: ShuffleVector, report) -> None:
    block = bc.parent
    assert block is not None
    index = block.instructions.index(bc) + 1
    cont = _split_block(block, index, block.name + ".bccheck")

    b = IRBuilder()
    b.position_at_end(block)

    def mark(v):
        if isinstance(v, Instruction):
            v.meta["detector"] = True
        return v

    value = bc
    elem = bc.type.scalar_type
    lanes = bc.type.vector_length
    if isinstance(elem, FloatType):
        ivec = vector(IntType(elem.bits), lanes)
        value = mark(b.bitcast(bc, ivec, "bcbits"))
        elem = IntType(elem.bits)
    lane0 = mark(b.extractelement(value, 0, "lane0"))
    acc = None
    for lane in range(1, lanes):
        x = mark(b.extractelement(value, lane, f"lane{lane}"))
        d = mark(b.xor(x, lane0, f"d{lane}"))
        acc = d if acc is None else mark(b.or_(acc, d, f"acc{lane}"))
    assert acc is not None
    zero = const_int(elem, 0)
    bad = mark(b.icmp("ne", acc, zero, "bc_bad"))

    fail = fn.add_block(FAIL_BLOCK_NAME, after=block)
    fb = IRBuilder()
    fb.position_at_end(fail)
    call = mark(fb.call(report, [const_int(I32, DET_UNIFORM_BROADCAST)]))
    mark(fb.br(cont))

    term = mark(b.condbr(bad, fail, cont))
    term.meta["detector"] = True


def has_uniform_detector(fn: Function) -> bool:
    return any(b.name.startswith(FAIL_BLOCK_NAME) for b in fn.blocks)
