"""The foreach loop-invariant detector pass (paper §III-A, Figs 7-8).

For every ``foreach`` loop the code generator marked (latch branch metadata),
this pass splits the loop's exit edge and inserts a detector basic block —
named ``foreach_fullbody_check_invariants`` as in Fig. 7 — containing a
single call::

    call void @checkInvariantsForeachFullBody(i32 %new_counter,
                                              i32 %aligned_end, i32 Vl)

The invariants (Fig. 8) are checked by the runtime **only upon loop exit**,
the paper's overhead-minimizing choice.  Everything inserted carries
``meta['detector']`` so VULFI never selects detector code as a fault site.

Run this pass right after code generation (before the optimizer): the
detector call keeps ``new_counter``/``aligned_end`` alive through mem2reg
and the use-def plumbing keeps the operands current through later rewrites.
"""

from __future__ import annotations

from ..errors import IRError
from ..ir.instructions import Branch, Call, CondBranch, Instruction
from ..ir.module import Function, Module
from ..ir.values import const_int
from ..ir.types import I32
from .runtime import FOREACH_CHECK, declare_detector_api

CHECK_BLOCK_NAME = "foreach_fullbody_check_invariants"


def insert_foreach_detectors(module: Module, every_iteration: bool = False) -> int:
    """Insert a detector block per foreach loop; returns how many.

    ``every_iteration=True`` is the ablation the paper decided *against*:
    the invariants are additionally checked at the end of every full-body
    iteration rather than only upon loop exit.  Detection coverage is the
    same (the invariants are monotone in the iterator) but the overhead is
    paid per iteration — the ablation benchmark quantifies the difference.
    """
    declare_detector_api(module)
    check_fn = module.get_function(FOREACH_CHECK)
    count = 0
    for fn in module.defined_functions():
        count += _insert_in_function(fn, check_fn, every_iteration)
    return count


def _insert_in_function(fn: Function, check_fn, every_iteration: bool = False) -> int:
    latches = [
        instr
        for instr in fn.instructions()
        if isinstance(instr, CondBranch) and instr.meta.get("foreach_role") == "latch"
    ]
    count = 0
    for latch in latches:
        new_counter = latch.meta.get("foreach_new_counter")
        aligned_end = latch.meta.get("foreach_aligned_end")
        vl = latch.meta.get("foreach_vl")
        if new_counter is None or aligned_end is None or vl is None:
            raise IRError(
                f"@{fn.name}: foreach latch is missing invariant metadata"
            )
        loop_block = latch.parent
        assert loop_block is not None
        exit_block = latch.false_target

        # Split the exit edge: loop -> check -> exit.
        check_block = fn.add_block(CHECK_BLOCK_NAME, after=loop_block)
        call = Call(check_fn, [new_counter, aligned_end, const_int(I32, vl)])
        call.meta["detector"] = True
        check_block.append(call)
        br = Branch(exit_block)
        br.meta["detector"] = True
        check_block.append(br)
        latch.false_target = check_block
        # Phi edges in the exit block must follow the edge split.  These are
        # direct field writes, so bump the decode-cache version by hand.
        for phi in exit_block.phis():
            for i, inc in enumerate(phi.incoming_blocks):
                if inc is loop_block:
                    phi.incoming_blocks[i] = check_block
        latch._bump_version()

        if every_iteration:
            # Ablation: also check right before the latch, every iteration.
            per_iter = Call(check_fn, [new_counter, aligned_end, const_int(I32, vl)])
            per_iter.meta["detector"] = True
            loop_block.insert_before(latch, per_iter)
        count += 1
    return count


def has_foreach_detector(fn: Function) -> bool:
    return any(b.name.startswith(CHECK_BLOCK_NAME) for b in fn.blocks)
