"""Runtime side of the compiler-invariant error detectors.

The detector passes insert IR that calls into this API:

* ``checkInvariantsForeachFullBody(new_counter, aligned_end, Vl)`` — the
  paper Fig. 7/8 detector block, invoked once on foreach-loop exit;
* ``reportDetection(detector_id)`` — invoked from the uniform-broadcast
  XOR checker's failure arm (§III-B).

A :class:`DetectorRuntime` records firings without aborting execution, so
an experiment still produces an SDC/Benign/Crash outcome and the detection
flag is reported alongside it — matching Fig. 12, which reports the SDC
rate *and* the fraction of SDCs detected.  Set ``halt_on_detection=True``
to model a deployment that traps instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DetectionEvent
from ..ir.module import Module
from ..ir.types import FunctionType, I32, VOID

FOREACH_CHECK = "checkInvariantsForeachFullBody"
REPORT_DETECTION = "reportDetection"

#: Detector ids used by reportDetection.
DET_FOREACH = 1
DET_UNIFORM_BROADCAST = 2

DETECTOR_API_NAMES = frozenset({FOREACH_CHECK, REPORT_DETECTION})


def declare_detector_api(module: Module) -> None:
    module.declare_function(
        FOREACH_CHECK,
        FunctionType(VOID, (I32, I32, I32)),
        attributes=("detector-runtime",),
    )
    module.declare_function(
        REPORT_DETECTION,
        FunctionType(VOID, (I32,)),
        attributes=("detector-runtime",),
    )


@dataclass
class DetectionFiring:
    detector: str
    detail: str


@dataclass
class DetectorRuntime:
    halt_on_detection: bool = False
    firings: list[DetectionFiring] = field(default_factory=list)

    @property
    def fired(self) -> bool:
        return bool(self.firings)

    def _record(self, detector: str, detail: str) -> None:
        self.firings.append(DetectionFiring(detector, detail))
        if self.halt_on_detection:
            raise DetectionEvent(detector, detail)

    # -- entry points bound into the interpreter --------------------------------

    def check_foreach_invariants(self, new_counter: int, aligned_end: int, vl: int) -> None:
        """Paper Fig. 8: Invariant 1: new_counter >= 0; Invariant 2:
        new_counter <= aligned_end; Invariant 3: new_counter % Vl == 0."""
        violations = []
        if new_counter < 0:
            violations.append(f"new_counter={new_counter} < 0")
        if new_counter > aligned_end:
            violations.append(f"new_counter={new_counter} > aligned_end={aligned_end}")
        if vl <= 0 or new_counter % vl != 0:
            violations.append(f"new_counter={new_counter} % Vl={vl} != 0")
        if violations:
            self._record("foreach-invariants", "; ".join(violations))

    def report_detection(self, detector_id: int) -> None:
        name = {
            DET_FOREACH: "foreach-invariants",
            DET_UNIFORM_BROADCAST: "uniform-broadcast",
        }.get(detector_id, f"detector-{detector_id}")
        self._record(name, "reportDetection")

    def bindings(self) -> dict:
        return {
            FOREACH_CHECK: self.check_foreach_invariants,
            REPORT_DETECTION: self.report_detection,
        }


def detector_bindings_factory(halt_on_detection: bool = False):
    """A :data:`~repro.core.injector.BindingsFactory` for detector-enabled
    modules: returns fresh per-run bindings plus the fired probe."""

    def factory():
        rt = DetectorRuntime(halt_on_detection=halt_on_detection)
        return rt.bindings(), lambda: rt.fired

    return factory
