"""Compiler-invariant error detectors (paper §III)."""

from .foreach_invariants import (
    CHECK_BLOCK_NAME,
    has_foreach_detector,
    insert_foreach_detectors,
)
from .runtime import (
    DET_FOREACH,
    DET_UNIFORM_BROADCAST,
    DETECTOR_API_NAMES,
    DetectionFiring,
    DetectorRuntime,
    FOREACH_CHECK,
    REPORT_DETECTION,
    declare_detector_api,
    detector_bindings_factory,
)
from .uniform_broadcast import (
    FAIL_BLOCK_NAME,
    has_uniform_detector,
    insert_uniform_broadcast_detectors,
)

__all__ = [
    "CHECK_BLOCK_NAME",
    "has_foreach_detector",
    "insert_foreach_detectors",
    "DET_FOREACH",
    "DET_UNIFORM_BROADCAST",
    "DETECTOR_API_NAMES",
    "DetectionFiring",
    "DetectorRuntime",
    "FOREACH_CHECK",
    "REPORT_DETECTION",
    "declare_detector_api",
    "detector_bindings_factory",
    "FAIL_BLOCK_NAME",
    "has_uniform_detector",
    "insert_uniform_broadcast_detectors",
]
