"""Simulated cluster: run N schedule stripes in N processes, then merge.

Each shard run is a *real* distributed worker in miniature: its own
process, its own store directory (``<parent>/shard-<i>/``), its own
worker pool if the driver asks for one — nothing shared with its siblings
but the read-only campaign definition.  The orchestrator forks them
(non-daemonic, so a shard may spawn its own :class:`~repro.core.parallel.
SweepPool`), collects per-shard wall times and counters over a pipe,
merges the shard journals with :func:`repro.store.merge.merge_shards`,
and rebuilds results from the merged journal alone — exactly the workflow
N independent hosts would follow with a shared filesystem, minus the
hosts.

``sequential=True`` runs the same forked shard processes one at a time.
That is the honest benchmarking mode on a small machine: each shard's
wall time is measured with the whole machine to itself, and the
*simulated* cluster wall — ``max(shard seconds) + merge seconds`` — is
what N single-core hosts would deliver, while ``machine_seconds`` (the
sum) is what this one machine actually spent.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..errors import ReproError


@dataclass
class ShardOutcome:
    """One shard process's run, as reported back over the result pipe."""

    index: int
    seconds: float
    counters: dict = field(default_factory=dict)
    error: str | None = None


@dataclass
class ClusterResult:
    parent: Path
    count: int
    shards: list[ShardOutcome]
    merge: "object"  # repro.store.merge.MergeReport
    merge_seconds: float
    sequential: bool

    @property
    def merged_store(self) -> Path:
        return self.merge.out

    @property
    def shard_seconds(self) -> list[float]:
        return [s.seconds for s in self.shards]

    @property
    def simulated_wall_seconds(self) -> float:
        """What N independent hosts would experience: slowest shard + merge."""
        return max(self.shard_seconds, default=0.0) + self.merge_seconds

    @property
    def machine_seconds(self) -> float:
        """What this one machine spent running every stripe itself."""
        return sum(self.shard_seconds) + self.merge_seconds

    def skew(self, q: float = 0.99) -> float:
        """Shard load imbalance: the ``q``-quantile shard over the mean."""
        seconds = sorted(self.shard_seconds)
        if not seconds or not any(seconds):
            return 1.0
        rank = min(len(seconds) - 1, max(0, round(q * (len(seconds) - 1))))
        mean = sum(seconds) / len(seconds)
        return seconds[rank] / mean


def _shard_main(parent, index, count, worker, conn) -> None:
    """Child-process entry: open the shard store, run the stripe, report."""
    from ..store import CampaignStore, ShardSpec
    from ..store.shard import shard_dir

    start = time.perf_counter()
    try:
        spec = ShardSpec(index, count)
        store = CampaignStore(shard_dir(parent, index))
        store.set_shard(spec)
        try:
            counters = worker(store, spec)
        finally:
            store.flush()
            store.save_shard_state()
            store.close()
        conn.send(
            ShardOutcome(
                index=index,
                seconds=time.perf_counter() - start,
                counters=dict(counters or {}),
            )
        )
    except BaseException:
        conn.send(
            ShardOutcome(
                index=index,
                seconds=time.perf_counter() - start,
                error=traceback.format_exc(),
            )
        )
        raise
    finally:
        conn.close()


def run_sharded(
    parent: str | Path,
    count: int,
    worker: Callable,
    *,
    sequential: bool = False,
    out: str | Path | None = None,
) -> ClusterResult:
    """Fork ``count`` shard runs of ``worker`` under ``parent`` and merge.

    ``worker(store, shard)`` runs inside each child with that shard's
    opened :class:`~repro.store.CampaignStore` (already pinned to its
    stripe) and must drive the sweep with ``shard=shard`` so only owned
    schedule positions execute.  Whatever picklable counter dict it
    returns rides back for aggregation.  The fork start method is
    required: workers are usually closures over injectors and configs,
    which only inheritance (not pickling) can ship.
    """
    from ..store.merge import merge_shards

    if count < 1:
        raise ReproError(f"cluster needs >= 1 shard, got {count}")
    parent = Path(parent)
    parent.mkdir(parents=True, exist_ok=True)
    ctx = multiprocessing.get_context("fork")

    outcomes: dict[int, ShardOutcome] = {}

    def launch(index: int):
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_shard_main,
            args=(parent, index, count, worker, send),
            name=f"shard-{index}",
        )
        proc.start()
        send.close()
        return proc, recv

    def collect(index: int, proc, recv) -> None:
        outcome = None
        try:
            if recv.poll(timeout=None):
                outcome = recv.recv()
        except EOFError:
            outcome = None
        finally:
            recv.close()
        proc.join()
        if outcome is None:
            outcome = ShardOutcome(
                index=index,
                seconds=0.0,
                error=f"shard {index} died (exit {proc.exitcode}) before "
                f"reporting",
            )
        outcomes[index] = outcome

    if sequential:
        for index in range(count):
            proc, recv = launch(index)
            collect(index, proc, recv)
    else:
        procs = [launch(index) for index in range(count)]
        for index, (proc, recv) in enumerate(procs):
            collect(index, proc, recv)

    failed = [o for o in outcomes.values() if o.error]
    if failed:
        details = "\n\n".join(
            f"shard {o.index}:\n{o.error}" for o in failed
        )
        raise ReproError(
            f"{len(failed)} of {count} shard run(s) failed; fix and re-run "
            f"them (each resumes from its own store), then merge.\n{details}"
        )

    shards = [outcomes[i] for i in sorted(outcomes)]
    merge_start = time.perf_counter()
    report = merge_shards(
        parent, out=out, durations={o.index: o.seconds for o in shards}
    )
    merge_seconds = time.perf_counter() - merge_start
    return ClusterResult(
        parent=parent,
        count=count,
        shards=shards,
        merge=report,
        merge_seconds=merge_seconds,
        sequential=sequential,
    )


# -- single-cell API sugar (tests / benchmarks) --------------------------------


def run_cell_sharded(
    parent: str | Path,
    count: int,
    cell,
    *,
    sequential: bool = False,
    out: str | Path | None = None,
):
    """Shard one campaign cell across ``count`` processes and merge.

    ``cell(store, shard)`` must run the cell's campaigns into ``store``
    with ``shard=shard`` (e.g. via :func:`~repro.core.campaign.
    run_campaigns`) and return its :class:`~repro.core.campaign.
    CampaignSummary`; the cluster result's counters then carry each
    shard's ``golden_cache``/``store`` accounting for :func:`merged_cell_
    summary` to aggregate.
    """

    def worker(store, shard):
        summary = cell(store, shard)
        return {
            "golden_cache": summary.golden_cache,
            "checkpoints": summary.checkpoints,
            "store": summary.store,
        }

    result = run_sharded(parent, count, worker, sequential=sequential, out=out)
    return result


def _sum_counters(dicts) -> dict | None:
    """Key-wise sum of numeric counter dicts; ``None`` if none present."""
    total: dict = {}
    seen = False
    for counters in dicts:
        if not counters:
            continue
        seen = True
        for key, value in counters.items():
            if isinstance(value, (int, float)):
                total[key] = total.get(key, 0) + value
            else:
                total.setdefault(key, value)
    return total if seen else None


def merged_cell_summary(store_root: str | Path, cluster: ClusterResult):
    """Rebuild one cell's :class:`CampaignSummary` from a merged store.

    The campaign structure (per-campaign stats, rates, convergence) comes
    from the merged journal alone — the same records a serial run would
    hold — while the cache/recorder accounting is the *sum across shards*
    of what each shard process observed: the distributed run's golden-run
    cache work and store hit/miss traffic, which no single store records.
    """
    from ..store import CampaignStore
    from ..store.records import decode_result
    from .campaign import (
        CampaignConfig,
        CampaignStats,
        CampaignSummary,
        would_converge,
    )
    from ..analysis.stats import estimate_rate

    with CampaignStore(store_root) as store:
        manifests = store.manifests()
        if len(manifests) != 1:
            raise ReproError(
                f"{store_root} holds {len(manifests)} campaign(s); "
                f"merged_cell_summary wants exactly one cell"
            )
        manifest = manifests[0]
        records = store.experiments_for(manifest["campaign_key"])
    config = CampaignConfig(**manifest["config"])
    per = config.experiments_per_campaign
    campaigns: list[CampaignStats] = []
    totals = CampaignStats()
    for start in range(0, len(records), per):
        stats = CampaignStats()
        for record in records[start : start + per]:
            stats.add(decode_result(record["result"]))
        campaigns.append(stats)
        totals.merge(stats)
    sdc_samples = [c.rate("sdc") for c in campaigns]
    store_counters = _sum_counters(
        o.counters.get("store") for o in cluster.shards
    )
    if store_counters is not None:
        # `recorded` is a per-store gauge, not a flow: the merged journal's
        # record count is the cluster-wide figure.
        store_counters["recorded"] = len(records)
    return CampaignSummary(
        config=config,
        campaigns=campaigns,
        totals=totals,
        sdc_rate=estimate_rate(sdc_samples, config.confidence),
        benign_rate=estimate_rate(
            [c.rate("benign") for c in campaigns], config.confidence
        ),
        crash_rate=estimate_rate(
            [c.rate("crash") for c in campaigns], config.confidence
        ),
        converged=would_converge(sdc_samples, config),
        golden_cache=_sum_counters(
            o.counters.get("golden_cache") for o in cluster.shards
        ),
        checkpoints=_sum_counters(
            o.counters.get("checkpoints") for o in cluster.shards
        ),
        store=store_counters,
    )
