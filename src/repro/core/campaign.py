"""Campaign driver (paper §IV-D).

A *fault injection campaign* is a batch of independent experiments (100 in
the paper); the campaign's SDC rate is one statistical sample.  The driver
runs campaigns until the sample distribution is near normal and the t-based
margin of error at the requested confidence drops inside the target (the
paper reaches ±3 points at 95% within 20 campaigns per benchmark/category),
or until ``max_campaigns``.

Each experiment draws a program input at random from the workload's
predefined input space (§IV-B) via the caller-supplied ``runner_factory``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Callable

from ..analysis.stats import RateEstimate, estimate_rate, is_near_normal, margin_of_error
from .injector import BindingsFactory, FaultInjector, Runner
from .outcomes import ExperimentResult, Outcome


@dataclass
class CampaignConfig:
    experiments_per_campaign: int = 100
    max_campaigns: int = 20
    min_campaigns: int = 3
    confidence: float = 0.95
    margin_target: float = 0.03
    require_normality: bool = True


@dataclass
class CampaignStats:
    """Aggregated counts over any number of experiments."""

    sdc: int = 0
    benign: int = 0
    crash: int = 0
    detected_sdc: int = 0
    detected_total: int = 0
    crash_kinds: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.sdc + self.benign + self.crash

    def add(self, result: ExperimentResult) -> None:
        if result.outcome is Outcome.SDC:
            self.sdc += 1
            if result.detected:
                self.detected_sdc += 1
        elif result.outcome is Outcome.BENIGN:
            self.benign += 1
        else:
            self.crash += 1
            kind = result.crash_kind or "unknown"
            self.crash_kinds[kind] = self.crash_kinds.get(kind, 0) + 1
        if result.detected:
            self.detected_total += 1

    def rate(self, what: str) -> float:
        if self.total == 0:
            return float("nan")
        return {"sdc": self.sdc, "benign": self.benign, "crash": self.crash}[
            what
        ] / self.total

    @property
    def sdc_detection_rate(self) -> float:
        """Fraction of SDC outcomes that the detectors flagged (Fig. 12)."""
        if self.sdc == 0:
            return 0.0
        return self.detected_sdc / self.sdc


@dataclass
class CampaignSummary:
    config: CampaignConfig
    campaigns: list[CampaignStats]
    totals: CampaignStats
    sdc_rate: RateEstimate
    benign_rate: RateEstimate
    crash_rate: RateEstimate
    converged: bool

    @property
    def campaigns_run(self) -> int:
        return len(self.campaigns)


def run_campaigns(
    injector: FaultInjector,
    runner_factory: Callable[[Random], Runner],
    config: CampaignConfig | None = None,
    seed: int = 0,
    bindings_factory: BindingsFactory | None = None,
) -> CampaignSummary:
    """Run fault-injection campaigns to statistical convergence.

    ``runner_factory(rng)`` must return a *deterministic* runner for a
    randomly drawn input (the rng is only used for the draw).
    """
    config = config or CampaignConfig()
    rng = Random(seed)
    campaigns: list[CampaignStats] = []
    totals = CampaignStats()
    sdc_samples: list[float] = []
    converged = False

    while len(campaigns) < config.max_campaigns:
        stats = CampaignStats()
        for _ in range(config.experiments_per_campaign):
            runner = runner_factory(rng)
            result = injector.experiment(
                runner, rng, bindings_factory=bindings_factory
            )
            stats.add(result)
            totals.add(result)
        campaigns.append(stats)
        sdc_samples.append(stats.rate("sdc"))

        if len(campaigns) >= config.min_campaigns:
            moe_ok = margin_of_error(sdc_samples, config.confidence) <= config.margin_target
            normal_ok = (not config.require_normality) or is_near_normal(sdc_samples)
            if moe_ok and normal_ok:
                converged = True
                break

    benign_samples = [c.rate("benign") for c in campaigns]
    crash_samples = [c.rate("crash") for c in campaigns]
    return CampaignSummary(
        config=config,
        campaigns=campaigns,
        totals=totals,
        sdc_rate=estimate_rate(sdc_samples, config.confidence),
        benign_rate=estimate_rate(benign_samples, config.confidence),
        crash_rate=estimate_rate(crash_samples, config.confidence),
        converged=converged,
    )
