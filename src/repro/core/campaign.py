"""Campaign driver (paper §IV-D).

A *fault injection campaign* is a batch of independent experiments (100 in
the paper); the campaign's SDC rate is one statistical sample.  The driver
runs campaigns until the sample distribution is near normal and the t-based
margin of error at the requested confidence drops inside the target (the
paper reaches ±3 points at 95% within 20 campaigns per benchmark/category),
or until ``max_campaigns``.

Each experiment draws a program input at random from the workload's
predefined input space (§IV-B) via the caller-supplied ``runner_factory``.

With ``jobs > 1`` and a :class:`~repro.core.parallel.WorkerContext`, the
faulty runs fan out over a worker pool while the parent pre-draws the
schedule with the same ``Random(seed)`` stream — results are bit-identical
to serial execution at any job count.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from random import Random
from typing import Callable

import queue

from ..analysis.stats import RateEstimate, estimate_rate, is_near_normal, margin_of_error
from .injector import BindingsFactory, FaultInjector, Runner
from .outcomes import ExperimentResult, Outcome
from .parallel import (
    ExperimentPool,
    WorkerContext,
    draw_experiment,
    make_schedule_entry,
)


@dataclass
class CampaignConfig:
    experiments_per_campaign: int = 100
    max_campaigns: int = 20
    min_campaigns: int = 3
    confidence: float = 0.95
    margin_target: float = 0.03
    require_normality: bool = True


def would_converge(sdc_samples: list[float], config: CampaignConfig) -> bool:
    """Would a convergence-gated run have stopped within these samples?

    Prefix-evaluates exactly the predicate :func:`run_campaigns` applies
    after each campaign (t-based margin of error within target, optional
    near-normality, ``min_campaigns`` warm-up).  Shard runs disable the
    early exit — every shard must consume the identical full-budget
    schedule or the stripes would desynchronize — so the convergence flag
    is recomputed from the recorded samples instead: here at the end of a
    ``--shards 1`` baseline run, and in :func:`repro.store.merge.
    merge_shards` from the reassembled journal.  Both paths see the same
    samples, so the flag lands byte-identical in both manifests.
    """
    for n in range(config.min_campaigns, len(sdc_samples) + 1):
        prefix = sdc_samples[:n]
        moe_ok = margin_of_error(prefix, config.confidence) <= config.margin_target
        normal_ok = (not config.require_normality) or is_near_normal(prefix)
        if moe_ok and normal_ok:
            return True
    return False


@dataclass
class CampaignStats:
    """Aggregated counts over any number of experiments."""

    sdc: int = 0
    benign: int = 0
    crash: int = 0
    detected_sdc: int = 0
    detected_total: int = 0
    crash_kinds: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return self.sdc + self.benign + self.crash

    def add(self, result: ExperimentResult) -> None:
        if result.outcome is Outcome.SDC:
            self.sdc += 1
            if result.detected:
                self.detected_sdc += 1
        elif result.outcome is Outcome.BENIGN:
            self.benign += 1
        else:
            self.crash += 1
            self.crash_kinds[result.crash_kind or "unknown"] += 1
        if result.detected:
            self.detected_total += 1

    def merge(self, other: "CampaignStats") -> "CampaignStats":
        """Fold another stats block into this one (returns self).

        This is how per-worker / per-campaign partial counts combine into
        totals without replaying results.
        """
        self.sdc += other.sdc
        self.benign += other.benign
        self.crash += other.crash
        self.detected_sdc += other.detected_sdc
        self.detected_total += other.detected_total
        self.crash_kinds.update(other.crash_kinds)
        return self

    def rate(self, what: str) -> float:
        if self.total == 0:
            return float("nan")
        return {"sdc": self.sdc, "benign": self.benign, "crash": self.crash}[
            what
        ] / self.total

    @property
    def sdc_detection_rate(self) -> float:
        """Fraction of SDC outcomes that the detectors flagged (Fig. 12)."""
        if self.sdc == 0:
            return 0.0
        return self.detected_sdc / self.sdc


@dataclass
class CampaignSummary:
    config: CampaignConfig
    campaigns: list[CampaignStats]
    totals: CampaignStats
    sdc_rate: RateEstimate
    benign_rate: RateEstimate
    crash_rate: RateEstimate
    converged: bool
    #: :meth:`GoldenCache.cache_info` of the parent's injector at summary
    #: time — hit/miss/eviction counters for campaign provenance.  ``None``
    #: only on hand-built summaries.
    golden_cache: dict | None = None
    #: The injector's ``checkpoint_stats`` (restores, sites skipped,
    #: convergence exits...) — parent-process counters only; worker-side
    #: restores are process-local and not aggregated here.
    checkpoints: dict | None = None
    #: :meth:`~repro.store.CampaignRecorder.counters` when the run recorded
    #: to a campaign store: ``hits`` (experiments replayed from the store,
    #: faulty run skipped), ``misses`` (executed and recorded this run),
    #: ``recorded`` (the campaign's total stored records).  ``None`` on
    #: storeless runs — same shape and vocabulary as ``golden_cache``, so
    #: ``status`` and perf reports share one accounting path.
    store: dict | None = None

    @property
    def campaigns_run(self) -> int:
        return len(self.campaigns)


def _campaign_results_serial(
    injector: FaultInjector,
    runner_factory: Callable[[Random], Runner],
    count: int,
    rng: Random,
    bindings_factory: BindingsFactory | None,
    recorder=None,
    shard=None,
):
    if recorder is None:
        for _ in range(count):
            runner = runner_factory(rng)
            yield injector.experiment(runner, rng, bindings_factory=bindings_factory)
        return
    # Store-recorded path: draw the schedule triple first (identical RNG
    # consumption to injector.experiment), so a completed experiment can be
    # replayed from the store without its faulty run ever executing.  A
    # shard run draws *every* position — the schedule is one RNG stream, so
    # skipping a draw would shift every later shard's triples — but only
    # executes the positions its stripe owns.
    for _ in range(count):
        runner = runner_factory(rng)
        golden, k, bit = draw_experiment(injector, runner, rng, bindings_factory)
        params = getattr(runner, "params", None)
        key, seq = recorder.claim(k, bit, params)
        if shard is not None and not shard.owns(seq):
            continue
        stored = recorder.replay(key)
        if stored is not None:
            yield stored
            continue
        result = injector.faulty(
            runner, golden, k, bit=bit, bindings_factory=bindings_factory
        )
        recorder.record(key, seq, k, bit, params, result)
        yield result


def _campaign_results_parallel(
    injector: FaultInjector,
    runner_factory: Callable[[Random], Runner],
    count: int,
    rng: Random,
    bindings_factory: BindingsFactory | None,
    pool: ExperimentPool,
    recorder=None,
    shard=None,
):
    if recorder is None:

        def schedule():
            for _ in range(count):
                runner = runner_factory(rng)
                yield make_schedule_entry(injector, runner, rng, bindings_factory)

        # imap keeps the parent drawing goldens while workers run faulty
        # halves, and returns results in schedule order — determinism needs
        # the order, not the timing.
        yield from pool.imap(schedule())
        return

    # Store-recorded path.  The pool's task-handler thread consumes the
    # schedule generator, so stored/pending decisions are relayed to this
    # (consuming) side through an in-order queue: "stored" entries never
    # reach the workers, "run" entries are executed and recorded as their
    # results stream back — still in schedule order, still bit-identical.
    plan: queue.SimpleQueue = queue.SimpleQueue()

    def schedule():
        try:
            for _ in range(count):
                runner = runner_factory(rng)
                entry = make_schedule_entry(injector, runner, rng, bindings_factory)
                key, seq = recorder.claim(entry.k, entry.bit, entry.params)
                if shard is not None and not shard.owns(seq):
                    # Drawn (the RNG stream must advance identically on
                    # every shard) but owned by another stripe: never
                    # reaches the workers, never yields a result.
                    plan.put(("skip", None, None))
                    continue
                stored = recorder.replay(key)
                if stored is not None:
                    plan.put(("stored", stored, None))
                else:
                    plan.put(("run", key, (seq, entry)))
                    yield entry
        except BaseException as exc:
            # The pool would surface this through next(results) eventually,
            # but the consumer may be blocked on the plan queue first.
            plan.put(("error", exc, None))
            raise

    results = pool.imap(schedule())
    for _ in range(count):
        kind, payload, meta = plan.get()
        if kind == "error":
            raise payload
        if kind == "skip":
            continue
        if kind == "stored":
            yield payload
            continue
        result = next(results)
        seq, entry = meta
        recorder.record(payload, seq, entry.k, entry.bit, entry.params, result)
        yield result


def run_batch(
    injector: FaultInjector,
    runner_factory: Callable[[Random], Runner],
    count: int,
    rng: Random,
    bindings_factory: BindingsFactory | None = None,
    jobs: int = 1,
    worker_context: WorkerContext | None = None,
    pool=None,
    recorder=None,
    shard=None,
) -> CampaignStats:
    """Run ``count`` experiments into one :class:`CampaignStats` block.

    The flat (no convergence loop) driver used by the Fig. 12 detector
    study; honors the same serial/parallel split as :func:`run_campaigns`.
    An externally owned ``pool`` (e.g. a :class:`SweepPool` cell view)
    takes precedence over spawning one here and is left open on return.
    A ``recorder`` (:meth:`repro.store.CampaignStore.recorder`) streams
    every result into a durable store and replays already-stored
    experiments instead of executing them — bit-identical either way.
    A ``shard`` (:class:`~repro.store.ShardSpec`, recorder required) draws
    the full schedule but executes/records only its stripe of it.
    """
    if shard is not None and recorder is None:
        raise ValueError("run_batch(shard=...) requires a recorder")
    stats = CampaignStats()
    try:
        if pool is not None:
            for result in _campaign_results_parallel(
                injector, runner_factory, count, rng, bindings_factory, pool,
                recorder, shard,
            ):
                stats.add(result)
        elif jobs > 1 and worker_context is not None:
            with ExperimentPool(jobs, worker_context) as own_pool:
                for result in _campaign_results_parallel(
                    injector, runner_factory, count, rng, bindings_factory,
                    own_pool, recorder, shard,
                ):
                    stats.add(result)
                own_pool.close()
        else:
            for result in _campaign_results_serial(
                injector, runner_factory, count, rng, bindings_factory,
                recorder, shard,
            ):
                stats.add(result)
    finally:
        if recorder is not None:
            recorder.store.flush()
    if recorder is not None:
        recorder.finish(executed_total=stats.total)
    return stats


def run_campaigns(
    injector: FaultInjector,
    runner_factory: Callable[[Random], Runner],
    config: CampaignConfig | None = None,
    seed: int = 0,
    bindings_factory: BindingsFactory | None = None,
    jobs: int = 1,
    worker_context: WorkerContext | None = None,
    pool=None,
    recorder=None,
    shard=None,
) -> CampaignSummary:
    """Run fault-injection campaigns to statistical convergence.

    ``runner_factory(rng)`` must return a *deterministic* runner for a
    randomly drawn input (the rng is only used for the draw).  With
    ``jobs > 1`` a ``worker_context`` is required; the summary is then
    bit-identical to ``jobs=1`` with the same seed.  An externally owned
    ``pool`` (e.g. a :class:`~repro.core.parallel.SweepPool` cell view)
    takes precedence and is left open on return — sweeps share one pool
    across all their cells instead of re-forking per cell.

    A ``recorder`` (built by :meth:`repro.store.CampaignStore.recorder`)
    journals every experiment to a durable store as it completes and
    replays already-stored experiments without executing their faulty
    runs; an interrupted campaign resumed this way converges to the same
    summary, record for record, as an uninterrupted one.

    A ``shard`` (:class:`~repro.store.ShardSpec`; recorder required) runs
    one stripe of a distributed sweep: the full schedule is drawn (same RNG
    stream as serial) but only owned positions execute, and the convergence
    early-exit is disabled — every shard must cover the identical
    ``max_campaigns`` budget or the stripes could not be merged.  The
    convergence flag is instead recomputed from the samples via
    :func:`would_converge` (complete samples only: a ``1``-shard baseline
    here, the merged journal in ``store merge``).
    """
    if shard is not None and recorder is None:
        raise ValueError("run_campaigns(shard=...) requires a recorder")
    config = config or CampaignConfig()
    rng = Random(seed)
    campaigns: list[CampaignStats] = []
    totals = CampaignStats()
    sdc_samples: list[float] = []
    converged = False

    owns_pool = False
    if pool is None and jobs > 1:
        if worker_context is None:
            raise ValueError(
                "run_campaigns(jobs>1) needs a worker_context; build one via "
                "experiments.common.campaign_worker_context or core.parallel"
            )
        pool = ExperimentPool(jobs, worker_context)
        owns_pool = True

    try:
        while len(campaigns) < config.max_campaigns:
            stats = CampaignStats()
            if pool is not None:
                results = _campaign_results_parallel(
                    injector,
                    runner_factory,
                    config.experiments_per_campaign,
                    rng,
                    bindings_factory,
                    pool,
                    recorder,
                    shard,
                )
            else:
                results = _campaign_results_serial(
                    injector,
                    runner_factory,
                    config.experiments_per_campaign,
                    rng,
                    bindings_factory,
                    recorder,
                    shard,
                )
            for result in results:
                stats.add(result)
            totals.merge(stats)
            campaigns.append(stats)
            sdc_samples.append(stats.rate("sdc"))

            if shard is None and len(campaigns) >= config.min_campaigns:
                moe_ok = margin_of_error(sdc_samples, config.confidence) <= config.margin_target
                normal_ok = (not config.require_normality) or is_near_normal(sdc_samples)
                if moe_ok and normal_ok:
                    converged = True
                    break
    finally:
        if owns_pool:
            pool.close()
        if recorder is not None:
            # Whatever happened — convergence, a crash, a deliberate abort —
            # land every journaled record before control leaves.
            recorder.store.flush()

    if shard is not None and shard.count == 1:
        # Full-budget baseline with complete samples: recompute the flag a
        # convergence-gated run would have produced, so the manifest matches
        # what `store merge` derives from a merged multi-shard journal.
        converged = would_converge(sdc_samples, config)

    if recorder is not None:
        # A >1-shard stripe sees only its share of each campaign, so its
        # samples cannot answer the convergence question; merge recomputes
        # the flag from the reassembled journal instead.
        finish_converged = (
            None if shard is not None and shard.count > 1 else converged
        )
        recorder.finish(executed_total=totals.total, converged=finish_converged)

    benign_samples = [c.rate("benign") for c in campaigns]
    crash_samples = [c.rate("crash") for c in campaigns]
    return CampaignSummary(
        config=config,
        campaigns=campaigns,
        totals=totals,
        sdc_rate=estimate_rate(sdc_samples, config.confidence),
        benign_rate=estimate_rate(benign_samples, config.confidence),
        crash_rate=estimate_rate(crash_samples, config.confidence),
        converged=converged,
        golden_cache=injector.golden_cache.cache_info(),
        checkpoints=dict(injector.checkpoint_stats),
        store=recorder.counters() if recorder is not None else None,
    )
