"""VULFI — the Vector oriented Utah LLVM Fault Injector (reproduced).

The paper's primary contribution: fault-site enumeration with per-lane
vector expansion (§II-B), forward-slice site classification (§II-C),
mask-aware per-lane instrumentation (§II-D), the two-execution injection
strategy, outcome classification, and campaign statistics (§IV).
"""

from .campaign import (
    CampaignConfig,
    CampaignStats,
    CampaignSummary,
    run_batch,
    run_campaigns,
    would_converge,
)
from .classify import ADDRESS, CONTROL, PURE_DATA, classify_instruction
from .cluster import (
    ClusterResult,
    ShardOutcome,
    merged_cell_summary,
    run_cell_sharded,
    run_sharded,
)
from .direct import build_injection_plan, chain_tax
from .injector import ENGINES, FaultInjector, GoldenCache, GoldenRun, clone_module
from .parallel import (
    DEFAULT_CHUNKSIZE,
    ExperimentPool,
    ScheduledExperiment,
    SweepPool,
    WorkerContext,
)
from .instrument import Instrumentor, instrument_module
from .outcomes import ExperimentResult, Outcome, outputs_equal, values_equal
from .runtime import (
    API,
    FaultRuntime,
    InjectionRecord,
    MODE_COUNT,
    MODE_INJECT,
    api_name_for,
    declare_api,
)
from .sites import (
    CATEGORIES,
    MaskSpec,
    StaticSite,
    enumerate_module_sites,
    enumerate_sites,
    filter_sites,
)

__all__ = [
    "CampaignConfig",
    "CampaignStats",
    "CampaignSummary",
    "ClusterResult",
    "ShardOutcome",
    "merged_cell_summary",
    "run_batch",
    "run_campaigns",
    "run_cell_sharded",
    "run_sharded",
    "would_converge",
    "GoldenCache",
    "DEFAULT_CHUNKSIZE",
    "ExperimentPool",
    "ScheduledExperiment",
    "SweepPool",
    "WorkerContext",
    "ADDRESS",
    "CONTROL",
    "PURE_DATA",
    "classify_instruction",
    "build_injection_plan",
    "chain_tax",
    "ENGINES",
    "FaultInjector",
    "GoldenRun",
    "clone_module",
    "Instrumentor",
    "instrument_module",
    "ExperimentResult",
    "Outcome",
    "outputs_equal",
    "values_equal",
    "API",
    "FaultRuntime",
    "InjectionRecord",
    "MODE_COUNT",
    "MODE_INJECT",
    "api_name_for",
    "declare_api",
    "CATEGORIES",
    "MaskSpec",
    "StaticSite",
    "enumerate_module_sites",
    "enumerate_sites",
    "filter_sites",
]
