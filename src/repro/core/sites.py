"""Static fault-site enumeration (paper §II-B).

A *fault site* is a scalar register that can receive a single-bit flip:

* the Lvalue of any instruction producing an integer, float, or pointer —
  for a vector Lvalue, **each scalar lane is its own site** (§II-B: "a
  systematic approach is developed to allow each of these scalar registers
  to be treated independently during fault injection");
* the value operand of a ``store`` (stores have no Lvalue; the value is
  intercepted just before the store executes), including the stored-value
  operand of masked-store/scatter intrinsics.

Masked vector operations contribute *potential* sites for every lane; the
decision whether a lane is really a fault site is made at **runtime** from
the execution mask (an inactive lane never counts as a dynamic site), which
is why each site records how to locate its mask.

Exclusions: phi nodes (register shuffling handled at block entry; their
inputs are other instructions' Lvalues which are themselves sites), allocas
(compile-time constants of the stack layout), VULFI's own injected runtime
calls, and detector instructions — marked by ``meta``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.instructions import Alloca, Call, Instruction, Phi, Store
from ..ir.intrinsics import IntrinsicInfo, intrinsic_info_for_call
from ..ir.module import Function, Module
from ..ir.types import Type
from .classify import classify_instruction

#: Site category names, as in the paper.
PURE_DATA = "pure-data"
CONTROL = "control"
ADDRESS = "address"
CATEGORIES = (PURE_DATA, CONTROL, ADDRESS)


@dataclass(frozen=True)
class MaskSpec:
    """How to obtain the execution-mask lane for a masked site."""

    operand_index: int  # operand of the call that carries the mask
    convention: str  # MASK_I1 or MASK_SIGN


@dataclass
class StaticSite:
    """One scalar lane of one instrumentable register."""

    instr: Instruction
    lane: int | None  # None for scalar registers
    scalar_type: Type
    categories: frozenset[str]
    # None → target the Lvalue; otherwise the operand index of a store-like
    # value (plain store: 0; maskstore/scatter: the intrinsic's data operand).
    operand_index: int | None = None
    mask: MaskSpec | None = None
    site_id: int = -1  # assigned by the instrumentor

    @property
    def is_vector_lane(self) -> bool:
        return self.lane is not None

    @property
    def targets_store_value(self) -> bool:
        return self.operand_index is not None

    def describe(self) -> str:
        lane = f"[lane {self.lane}]" if self.lane is not None else ""
        what = "store-value of" if self.targets_store_value else "lvalue of"
        fn = self.instr.function
        where = f"@{fn.name}" if fn else "?"
        return (
            f"site #{self.site_id} {what} '{self.instr.opcode}'{lane} "
            f"({self.scalar_type}) in {where} {{{', '.join(sorted(self.categories))}}}"
        )


def _is_excluded(instr: Instruction) -> bool:
    if instr.meta.get("vulfi") or instr.meta.get("detector"):
        return True
    if isinstance(instr, (Phi, Alloca)):
        return True
    return False


def _expand(
    instr: Instruction,
    value_type: Type,
    categories: frozenset[str],
    operand_index: int | None,
    mask: MaskSpec | None,
) -> list[StaticSite]:
    if value_type.is_vector():
        elem = value_type.scalar_type
        return [
            StaticSite(instr, lane, elem, categories, operand_index, mask)
            for lane in range(value_type.vector_length)
        ]
    return [StaticSite(instr, None, value_type, categories, operand_index, mask)]


def enumerate_sites(fn: Function) -> list[StaticSite]:
    """All static fault sites of a function, in program order."""
    from ..ir.intrinsics import MASK_I1

    sites: list[StaticSite] = []
    for instr in fn.instructions():
        if _is_excluded(instr):
            continue

        info: IntrinsicInfo | None = None
        if isinstance(instr, Call):
            info = intrinsic_info_for_call(instr)

        # Store-like: target the value operand, before the store happens.
        if isinstance(instr, Store):
            vt = instr.value.type
            if vt.is_first_class():
                cats = classify_instruction(instr, as_store_value=True)
                sites.extend(_expand(instr, vt, cats, 0, None))
            continue
        if info is not None and info.stored_value_index is not None:
            vt = info.function_type.params[info.stored_value_index]
            cats = classify_instruction(instr, as_store_value=True)
            mask = (
                MaskSpec(info.mask_index, info.mask_convention)
                if info.masked and info.mask_index is not None
                else None
            )
            sites.extend(_expand(instr, vt, cats, info.stored_value_index, mask))
            continue

        # Ordinary Lvalue target.
        if not instr.has_lvalue() or not instr.type.is_first_class():
            continue
        cats = classify_instruction(instr)
        mask = None
        if info is not None and info.masked and info.mask_index is not None:
            mask = MaskSpec(info.mask_index, info.mask_convention)
        sites.extend(_expand(instr, instr.type, cats, None, mask))
    return sites


def enumerate_module_sites(
    module: Module, functions: list[str] | None = None
) -> list[StaticSite]:
    """Sites across the module's defined functions (optionally restricted)."""
    sites: list[StaticSite] = []
    for fn in module.defined_functions():
        if functions is not None and fn.name not in functions:
            continue
        sites.extend(enumerate_sites(fn))
    return sites


def filter_sites(sites: list[StaticSite], category: str) -> list[StaticSite]:
    """Apply one of the §II-C site-selection heuristics."""
    if category == "all":
        return list(sites)
    if category not in CATEGORIES:
        raise ValueError(f"unknown site category {category!r}")
    return [s for s in sites if category in s.categories]


def site_groups(sites: list[StaticSite]) -> list[list[StaticSite]]:
    """Group per-lane sites of one register, lanes in order (Fig. 4).

    One group per ``(instruction, operand)`` target, in first-appearance
    order.  Both executable forms of a site list — the IR instrumentor and
    the direct engine's injection plan — walk these identical groups, which
    is what keeps their site ids and dynamic-site ordering in lockstep.
    """
    groups: dict[tuple[int, int | None], list[StaticSite]] = {}
    order: list[tuple[int, int | None]] = []
    for site in sites:
        key = (id(site.instr), site.operand_index)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(site)
    return [
        sorted(groups[key], key=lambda s: (s.lane is not None, s.lane or 0))
        for key in order
    ]


def assign_site_ids(sites: list[StaticSite]) -> list[list[StaticSite]]:
    """Assign sequential site ids in canonical group order.

    Returns the groups so callers can keep walking them.  Deterministic for
    a given site list: parallel workers rebuilding an engine from the same
    pristine module enumerate identical ids.
    """
    groups = site_groups(sites)
    next_id = 0
    for group in groups:
        for site in group:
            site.site_id = next_id
            next_id += 1
    return groups
