"""Forward-slice fault-site classification (paper §II-C, Fig. 2).

The three categories:

* **pure-data**: the forward slice has no ``getelementptr`` and no
  control-flow instruction;
* **control**: the slice has at least one control-flow instruction (a
  conditional branch — the instruction that *decides* control from data);
* **address**: the slice has at least one ``getelementptr``.

Pure-data is disjoint from the other two; control ∩ address can be non-empty
(the Fig. 3 loop counter ``i`` is both).  The slice is taken over SSA
def-use edges and **includes the site's own instruction**, so a
``getelementptr``'s Lvalue — a raw address — is itself an address site.
As a refinement of the paper's definition, *any* pointer-typed Lvalue is an
address site (a pointer produced by ``bitcast`` from a gep is still an
address even though its own slice contains no further ``getelementptr`` —
the paper's Fig. 10 discussion notes exactly this cast pattern).

For store-value sites the "slice" is the store alone (the value is consumed
by memory); such sites are pure-data: a corrupted stored datum never alters
an address computation or a branch directly.
"""

from __future__ import annotations

from ..ir.dataflow import slice_contains
from ..ir.instructions import GetElementPtr, Instruction

PURE_DATA = "pure-data"
CONTROL = "control"
ADDRESS = "address"

_PURE_DATA_ONLY = frozenset({PURE_DATA})


def classify_instruction(
    instr: Instruction, as_store_value: bool = False
) -> frozenset[str]:
    """Category membership of the fault site anchored at ``instr``.

    Returns ``{'pure-data'}`` or a non-empty subset of
    ``{'control', 'address'}`` (Fig. 2: pure-data excludes the others).
    """
    if as_store_value:
        return _PURE_DATA_ONLY

    cached = instr.meta.get("vulfi_categories")
    if cached is not None:
        return cached

    cats: set[str] = set()
    if isinstance(instr, GetElementPtr) or instr.is_control_flow:
        # The slice includes the instruction itself.
        cats.add(ADDRESS if isinstance(instr, GetElementPtr) else CONTROL)
    if instr.has_lvalue() and instr.type.scalar_type.is_pointer():
        # A pointer-valued register (gep result, pointer bitcast, vector of
        # gather addresses) *is* an address: flipping it produces a wild
        # access even though no further getelementptr appears downstream.
        cats.add(ADDRESS)
    # Detector plumbing (inserted condbr/gep of checker code) must not
    # reclassify application values: the categories describe the program
    # under study, not the instrumentation around it.
    if slice_contains(
        instr,
        lambda u: isinstance(u, GetElementPtr) and not u.meta.get("detector"),
    ):
        cats.add(ADDRESS)
    if slice_contains(
        instr, lambda u: u.is_control_flow and not u.meta.get("detector")
    ):
        cats.add(CONTROL)
    if not cats:
        cats.add(PURE_DATA)
    result = frozenset(cats)
    instr.meta["vulfi_categories"] = result
    return result
