"""The fault-injection engine: VULFI's two-execution strategy (paper §IV-B).

One *experiment*:

1. **Golden run** — execute the instrumented program with the runtime in
   ``count`` mode: record the output and the number ``N`` of dynamic fault
   sites encountered.
2. Choose a dynamic site index ``k ~ U{1..N}`` and (at injection time) a
   uniformly random bit of the site's value.
3. **Faulty run** — re-execute with the runtime in ``inject`` mode; the
   ``k``-th dynamic site gets one bit flipped.
4. Classify: Crash if the run trapped (or hung past the step budget), SDC
   if the output differs from the golden run, Benign otherwise; record
   whether any inserted detector fired.

Two execution engines implement the protocol, selected by ``engine=``:

* ``"direct"`` (default) — fault sites are folded into the decoded program
  of the *pristine* module (:mod:`repro.core.direct`): no clone, no IR
  rewriting, no interpreted injection chains.  Bit-identical to the
  instrumented engine — same site ids, dynamic-site order, RNG stream,
  records, crash behaviour, and dynamic-instruction totals — and much
  faster, because each dynamic site costs one closure call instead of
  several interpreted instructions.
* ``"instrumented"`` — VULFI's actual mechanism: instrument a structural
  *clone* of the module (meta-preserving, see :mod:`repro.ir.clone`) with
  ``injectFault<Ty>Ty`` calls.  Kept as the reference semantics (the
  differential oracle for the direct engine) and for IR-level studies.

Either way the caller's IR is never mutated and one engine can serve
thousands of experiments — all mutable injection state lives in the
per-run :class:`~repro.core.runtime.FaultRuntime`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from random import Random
from typing import Callable, Hashable

from ..errors import InjectionError, VMTrap
from ..ir.clone import clone_module
from ..ir.module import Module
from ..vm.interpreter import DEFAULT_STEP_LIMIT, Interpreter
from .direct import build_injection_plan
from .instrument import instrument_module
from .outcomes import ExperimentResult, Outcome, outputs_equal
from .runtime import FaultRuntime, MODE_COUNT, MODE_INJECT
from .sites import StaticSite, enumerate_module_sites, filter_sites

#: Execution engines implementing the two-execution protocol.
ENGINES = ("direct", "instrumented")

#: A runner drives one complete program execution against a fresh
#: interpreter (allocate inputs, call the kernel, gather outputs) and must
#: be deterministic: the golden and faulty runs replay the same runner.
Runner = Callable[[Interpreter], dict]

#: Supplies extra host bindings (detector runtimes); returns the bindings
#: plus a zero-argument "did any detector fire?" probe.
BindingsFactory = Callable[[], tuple[dict, Callable[[], bool]]]


@dataclass
class GoldenRun:
    output: dict
    dynamic_sites: int
    dynamic_instructions: int
    detector_fired: bool
    #: Per-dynamic-site API bit widths (``site_widths[k-1]`` is site ``k``'s
    #: width), recorded by the count run.  Lets the campaign driver pre-draw
    #: the injected bit without executing the faulty run.  ``None`` on
    #: hand-built GoldenRun objects; the engine then falls back to the lazy
    #: in-run draw (which consumes the identical RNG value).
    site_widths: bytes | None = None


class GoldenCache:
    """Input-keyed memo of golden runs (bounded LRU).

    The paper's protocol pays a full golden execution per experiment; with a
    predefined input space (§IV-B) the golden output and dynamic-site count
    for one input never change per injector, so each distinct ``input_key``
    is executed once and replayed from here afterwards.  Goldens observed
    with a fired detector are never stored (see
    :meth:`FaultInjector.cached_golden`).
    """

    def __init__(self, maxsize: int = 1024):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Hashable, GoldenRun] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> GoldenRun | None:
        golden = self._entries.get(key)
        if golden is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return golden

    def put(self, key: Hashable, golden: GoldenRun) -> None:
        self._entries[key] = golden
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


class FaultInjector:
    """Builds one execution engine for a module and runs experiments on it."""

    def __init__(
        self,
        module: Module,
        category: str = "all",
        functions: list[str] | None = None,
        step_limit: int = DEFAULT_STEP_LIMIT,
        clone: bool = True,
        respect_masks: bool = True,
        golden_cache_size: int = 1024,
        engine: str = "direct",
    ):
        if engine not in ENGINES:
            raise InjectionError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.engine = engine
        self.category = category
        self.functions = functions
        self.step_limit = step_limit
        self.respect_masks = respect_masks
        #: The caller's pristine module — what a parallel worker needs to
        #: rebuild this injector (site enumeration and instrumentation are
        #: deterministic, so the rebuilt engine enumerates identical ids).
        self.source_module = module
        if engine == "direct":
            # The direct engine never mutates IR: enumerate sites on the
            # pristine module itself and fold them into the decoded program.
            self._cloned = True
            self.module = module
            self.sites = self._enumerate(self.module)
            self._plan = build_injection_plan(
                self.sites, respect_masks=respect_masks
            )
        else:
            self._cloned = clone
            self.module = clone_module(module) if clone else module
            self.sites = self._enumerate(self.module)
            self._plan = None
            instrument_module(self.module, self.sites, respect_masks=respect_masks)
        self._site_by_id = {s.site_id: s for s in self.sites}
        self.golden_cache = GoldenCache(maxsize=golden_cache_size)

    def _enumerate(self, module: Module) -> list[StaticSite]:
        sites = filter_sites(
            enumerate_module_sites(module, self.functions), self.category
        )
        if not sites:
            raise InjectionError(
                f"no fault sites in category {self.category!r}"
            )
        return sites

    def worker_payload(self) -> dict:
        """Constructor kwargs for rebuilding this injector in a worker."""
        if not self._cloned:
            raise InjectionError(
                "parallel workers need an injector built with clone=True "
                "(clone=False instruments the caller's module in place, so "
                "no pristine copy exists to ship)"
            )
        return {
            "module": self.source_module,
            "category": self.category,
            "functions": self.functions,
            "step_limit": self.step_limit,
            "respect_masks": self.respect_masks,
            "engine": self.engine,
        }

    # -- execution ------------------------------------------------------------

    def _prepare_vm(
        self,
        fault_runtime: FaultRuntime,
        bindings_factory: BindingsFactory | None,
    ) -> tuple[Interpreter, Callable[[], bool]]:
        vm = Interpreter(
            self.module, step_limit=self.step_limit, plan=self._plan
        )
        if self._plan is not None:
            vm.fault_entries = fault_runtime.entries()
            vm.fault_spans = fault_runtime.spans()
        else:
            vm.bind_all(fault_runtime.bindings())
        fired: Callable[[], bool] = lambda: False
        if bindings_factory is not None:
            extra, fired = bindings_factory()
            vm.bind_all(extra)
        return vm, fired

    def golden(
        self, runner: Runner, bindings_factory: BindingsFactory | None = None
    ) -> GoldenRun:
        rt = FaultRuntime(MODE_COUNT)
        vm, fired = self._prepare_vm(rt, bindings_factory)
        output = runner(vm)
        return GoldenRun(
            output=output,
            dynamic_sites=rt.dynamic_count,
            dynamic_instructions=vm.stats.total,
            detector_fired=fired(),
            site_widths=bytes(rt.site_widths),
        )

    def cached_golden(
        self, runner: Runner, bindings_factory: BindingsFactory | None = None
    ) -> GoldenRun:
        """The golden run for ``runner``, memoized by ``runner.input_key``.

        Runners without a stable ``input_key`` attribute (or with one of
        ``None``) always execute — the cache only ever serves inputs it can
        identify.  A golden during which a detector fired is returned but
        never stored: it signals broken invariants and must keep failing
        loudly on every experiment, not be masked by a stale cache entry.
        """
        key = getattr(runner, "input_key", None)
        if key is None:
            return self.golden(runner, bindings_factory)
        cached = self.golden_cache.get(key)
        if cached is not None:
            return cached
        golden = self.golden(runner, bindings_factory)
        if not golden.detector_fired:
            self.golden_cache.put(key, golden)
        return golden

    def experiment(
        self,
        runner: Runner,
        rng: Random,
        bindings_factory: BindingsFactory | None = None,
        golden: GoldenRun | None = None,
    ) -> ExperimentResult:
        """Run one complete fault-injection experiment.

        ``golden`` may be passed in when the caller reuses one input for
        many experiments (the detector study does); otherwise it comes from
        the input-keyed golden cache — the paper's two-execution protocol
        with the first execution amortized across same-input experiments.
        """
        if golden is None:
            golden = self.cached_golden(runner, bindings_factory)
        if golden.detector_fired:
            raise InjectionError(
                "detector fired during the golden run: the invariants are "
                "wrong or the program is miscompiled"
            )
        n = golden.dynamic_sites
        if n == 0:
            raise InjectionError(
                f"program exercised no dynamic fault sites in category "
                f"{self.category!r}"
            )
        k = rng.randint(1, n)
        widths = golden.site_widths
        if widths is not None and len(widths) >= n:
            # Pre-draw the bit from the count run's recorded site width:
            # the same value, from the same RNG-stream position, as the
            # lazy draw the faulty run would have made at site k.
            return self.faulty(
                runner, golden, k, bit=rng.randrange(widths[k - 1]),
                bindings_factory=bindings_factory,
            )
        return self.faulty(
            runner, golden, k, rng=rng, bindings_factory=bindings_factory
        )

    def faulty(
        self,
        runner: Runner,
        golden: GoldenRun,
        k: int,
        bit: int | None = None,
        rng: Random | None = None,
        bindings_factory: BindingsFactory | None = None,
    ) -> ExperimentResult:
        """Run and classify the faulty half of one experiment.

        Flips ``bit`` (or an rng-drawn bit) of dynamic site ``k`` and
        classifies the outcome against ``golden``.  This is the unit of work
        a parallel campaign ships to workers: the schedule ``(input, k,
        bit)`` is drawn in the parent, so results are bit-identical to
        serial execution at any worker count.
        """
        n = golden.dynamic_sites
        rt = FaultRuntime(MODE_INJECT, target_index=k, rng=rng, bit=bit)
        vm, fired = self._prepare_vm(rt, bindings_factory)
        try:
            output = runner(vm)
        except VMTrap as trap:
            return ExperimentResult(
                outcome=Outcome.CRASH,
                crash_kind=trap.kind,
                detected=fired(),
                injection=rt.record,
                dynamic_sites=n,
                target_index=k,
                site_categories=self._categories_of(rt),
                golden_dynamic_instructions=golden.dynamic_instructions,
            )
        detected = fired()
        if rt.record is None:
            raise InjectionError(
                f"faulty run never reached dynamic site {k} of {n}; "
                "the program is nondeterministic"
            )
        outcome = (
            Outcome.BENIGN if outputs_equal(golden.output, output) else Outcome.SDC
        )
        return ExperimentResult(
            outcome=outcome,
            detected=detected,
            injection=rt.record,
            dynamic_sites=n,
            target_index=k,
            site_categories=self._categories_of(rt),
            golden_dynamic_instructions=golden.dynamic_instructions,
        )

    def _categories_of(self, rt: FaultRuntime) -> frozenset[str]:
        if rt.record is None:
            return frozenset()
        site = self._site_by_id.get(rt.record.site_id)
        return site.categories if site is not None else frozenset()
