"""The fault-injection engine: VULFI's two-execution strategy (paper §IV-B).

One *experiment*:

1. **Golden run** — execute the instrumented program with the runtime in
   ``count`` mode: record the output and the number ``N`` of dynamic fault
   sites encountered.
2. Choose a dynamic site index ``k ~ U{1..N}`` and (at injection time) a
   uniformly random bit of the site's value.
3. **Faulty run** — re-execute with the runtime in ``inject`` mode; the
   ``k``-th dynamic site gets one bit flipped.
4. Classify: Crash if the run trapped (or hung past the step budget), SDC
   if the output differs from the golden run, Benign otherwise; record
   whether any inserted detector fired.

Two execution engines implement the protocol, selected by ``engine=``:

* ``"direct"`` (default) — fault sites are folded into the decoded program
  of the *pristine* module (:mod:`repro.core.direct`): no clone, no IR
  rewriting, no interpreted injection chains.  Bit-identical to the
  instrumented engine — same site ids, dynamic-site order, RNG stream,
  records, crash behaviour, and dynamic-instruction totals — and much
  faster, because each dynamic site costs one closure call instead of
  several interpreted instructions.
* ``"instrumented"`` — VULFI's actual mechanism: instrument a structural
  *clone* of the module (meta-preserving, see :mod:`repro.ir.clone`) with
  ``injectFault<Ty>Ty`` calls.  Kept as the reference semantics (the
  differential oracle for the direct engine) and for IR-level studies.
* ``"compiled"`` — the direct engine's plan executed by the block-compiled
  VM (:mod:`repro.vm.compile`): superblock chains are ``exec``-compiled to
  specialized closures once per module version, and faulty runs fall back
  to the decoded interpreter only for the chain containing the target
  site.  Bit-identical to both other engines; fastest for campaigns.

Either way the caller's IR is never mutated and one engine can serve
thousands of experiments — all mutable injection state lives in the
per-run :class:`~repro.core.runtime.FaultRuntime`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from random import Random
from typing import Callable, Hashable

from ..errors import InjectionError, VMTrap
from ..ir.clone import clone_module
from ..ir.module import Module
from ..vm.interpreter import DEFAULT_STEP_LIMIT, Interpreter
from ..vm.snapshot import (
    Checkpoint,
    CheckpointTape,
    ConvergedToGolden,
    FrameState,
    ResumePoint,
    copy_regs,
    regs_match,
)
from .direct import build_injection_plan
from .instrument import instrument_module
from .outcomes import ExperimentResult, Outcome, outputs_equal
from .runtime import FaultRuntime, MODE_COUNT, MODE_INJECT
from .sites import StaticSite, enumerate_module_sites, filter_sites

#: Execution engines implementing the two-execution protocol.
ENGINES = ("direct", "instrumented", "compiled")

#: A runner drives one complete program execution against a fresh
#: interpreter (allocate inputs, call the kernel, gather outputs) and must
#: be deterministic: the golden and faulty runs replay the same runner.
Runner = Callable[[Interpreter], dict]

#: Supplies extra host bindings (detector runtimes); returns the bindings
#: plus a zero-argument "did any detector fire?" probe.
BindingsFactory = Callable[[], tuple[dict, Callable[[], bool]]]


@dataclass
class GoldenRun:
    output: dict
    dynamic_sites: int
    dynamic_instructions: int
    detector_fired: bool
    #: Per-dynamic-site API bit widths (``site_widths[k-1]`` is site ``k``'s
    #: width), recorded by the count run.  Lets the campaign driver pre-draw
    #: the injected bit without executing the faulty run.  ``None`` on
    #: hand-built GoldenRun objects; the engine then falls back to the lazy
    #: in-run draw (which consumes the identical RNG value).
    site_widths: bytes | None = None
    #: :class:`~repro.vm.snapshot.CheckpointTape` recorded by the count run
    #: when the injector has a ``checkpoint_interval``; ``None`` otherwise
    #: (and on hand-built / worker-synthesized GoldenRun objects).  Process-
    #: local: never pickled, never shipped to workers.
    checkpoints: object | None = None


class GoldenCache:
    """Input-keyed memo of golden runs (bounded LRU).

    The paper's protocol pays a full golden execution per experiment; with a
    predefined input space (§IV-B) the golden output and dynamic-site count
    for one input never change per injector, so each distinct ``input_key``
    is executed once and replayed from here afterwards.  Goldens observed
    with a fired detector are never stored (see
    :meth:`FaultInjector.cached_golden`).
    """

    def __init__(self, maxsize: int = 1024):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Hashable, GoldenRun] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> GoldenRun | None:
        golden = self._entries.get(key)
        if golden is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return golden

    def put(self, key: Hashable, golden: GoldenRun) -> None:
        self._entries[key] = golden
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def cache_info(self) -> dict:
        """Counters for campaign stats / benchmark provenance."""
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class FaultInjector:
    """Builds one execution engine for a module and runs experiments on it."""

    def __init__(
        self,
        module: Module,
        category: str = "all",
        functions: list[str] | None = None,
        step_limit: int = DEFAULT_STEP_LIMIT,
        clone: bool = True,
        respect_masks: bool = True,
        golden_cache_size: int = 1024,
        engine: str = "direct",
        checkpoint_interval: int | None = None,
        convergence_exit: bool = True,
    ):
        if engine not in ENGINES:
            raise InjectionError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise InjectionError(
                f"checkpoint_interval must be >= 1 dynamic sites, got "
                f"{checkpoint_interval}"
            )
        self.engine = engine
        self.category = category
        self.functions = functions
        self.step_limit = step_limit
        self.respect_masks = respect_masks
        #: Record a golden checkpoint every N dynamic sites (None = off).
        #: Faulty runs then restore the nearest checkpoint strictly before
        #: their target site instead of replaying the whole prefix.
        self.checkpoint_interval = checkpoint_interval
        #: With checkpoints on, also watch the faulty run for re-convergence
        #: with the recorded golden state and classify Benign immediately.
        self.convergence_exit = convergence_exit
        #: Observability counters for the checkpoint fast-forward path.
        self.checkpoint_stats = {
            "tapes_recorded": 0,
            "checkpoints_recorded": 0,
            "restores": 0,
            "full_replays": 0,
            "sites_skipped": 0,
            "convergence_exits": 0,
            "unconsumed_resumes": 0,
        }
        #: The caller's pristine module — what a parallel worker needs to
        #: rebuild this injector (site enumeration and instrumentation are
        #: deterministic, so the rebuilt engine enumerates identical ids).
        self.source_module = module
        if engine in ("direct", "compiled"):
            # Neither plan-based engine mutates IR: enumerate sites on the
            # pristine module itself and fold them into the decoded program
            # (which the compiled engine then turns into chain closures).
            self._cloned = True
            self.module = module
            self.sites = self._enumerate(self.module)
            self._plan = build_injection_plan(
                self.sites, respect_masks=respect_masks
            )
        else:
            self._cloned = clone
            self.module = clone_module(module) if clone else module
            self.sites = self._enumerate(self.module)
            self._plan = None
            instrument_module(self.module, self.sites, respect_masks=respect_masks)
        self._site_by_id = {s.site_id: s for s in self.sites}
        self.golden_cache = GoldenCache(maxsize=golden_cache_size)
        # Pooled count-mode runtime (plus its prebuilt entry closures) —
        # golden runs reset and reuse it instead of rebuilding ~20 closures
        # per run (see FaultRuntime.reset_counting).
        self._count_runtime: FaultRuntime | None = None
        self._count_prepared: tuple | None = None

    def warm(self) -> None:
        """Build this engine's execution caches eagerly.

        Decodes (and, for ``engine="compiled"``, ``exec``-compiles) every
        defined function of the module now instead of on the first run.
        Parallel workers call this once at fork so per-experiment timings
        never include one-time compilation, and so COMPILE_EVENTS-based
        tests can prove compilation happens once per process.
        """
        from ..vm.decode import decoded_program

        program = decoded_program(self.module, self._plan)
        compiled = None
        if self.engine == "compiled":
            from ..vm.compile import compiled_program

            compiled = compiled_program(self.module, self._plan)
        for fn in self.module.defined_functions():
            program.function(fn)
            if compiled is not None:
                compiled.function(fn)

    def reset_perf_counters(self) -> None:
        """Zero the observability counters (golden cache, checkpoints).

        Benchmarks measuring several regimes on one injector call this
        between regimes so each reported block covers only its own runs;
        execution caches (plans, decoded/compiled programs) are left warm
        on purpose — only the *counters* reset.  The golden cache is
        dropped too: its hit/miss counters are meaningless without its
        contents' history, and a regime should pay its own golden runs.
        """
        for key in self.checkpoint_stats:
            self.checkpoint_stats[key] = 0
        self.golden_cache.clear()

    def _enumerate(self, module: Module) -> list[StaticSite]:
        sites = filter_sites(
            enumerate_module_sites(module, self.functions), self.category
        )
        if not sites:
            raise InjectionError(
                f"no fault sites in category {self.category!r}"
            )
        return sites

    def engine_identity(self) -> dict:
        """The result-determining engine fields, as a plain dict.

        Everything that (together with a campaign seed and config) fixes
        the experiment stream: pristine-module content hash, engine, site
        category, step limit, and mask policy.  ``checkpoint_interval`` is
        deliberately absent — checkpointing is proven bit-identical to
        full replay, so two injectors differing only there are
        interchangeable.  This is both the campaign-store key prefix (see
        :func:`repro.store.keys.campaign_identity`) and the cache key the
        campaign service shares warm engines under across tenants.
        """
        from ..store.keys import module_fingerprint

        return {
            "module": module_fingerprint(self.source_module),
            "engine": self.engine,
            "category": self.category,
            "step_limit": self.step_limit,
            "respect_masks": self.respect_masks,
        }

    def worker_payload(self) -> dict:
        """Constructor kwargs for rebuilding this injector in a worker."""
        if not self._cloned:
            raise InjectionError(
                "parallel workers need an injector built with clone=True "
                "(clone=False instruments the caller's module in place, so "
                "no pristine copy exists to ship)"
            )
        return {
            "module": self.source_module,
            "category": self.category,
            "functions": self.functions,
            "step_limit": self.step_limit,
            "respect_masks": self.respect_masks,
            "engine": self.engine,
            "checkpoint_interval": self.checkpoint_interval,
            "convergence_exit": self.convergence_exit,
        }

    # -- execution ------------------------------------------------------------

    def _prepare_vm(
        self,
        fault_runtime: FaultRuntime,
        bindings_factory: BindingsFactory | None,
        prepared: tuple | None = None,
    ) -> tuple[Interpreter, Callable[[], bool]]:
        vm = Interpreter(
            self.module,
            step_limit=self.step_limit,
            plan=self._plan,
            compiled=(self.engine == "compiled"),
        )
        if self._plan is not None:
            if prepared is not None:
                vm.fault_entries, vm.fault_spans = prepared
            else:
                vm.fault_entries = fault_runtime.entries()
                vm.fault_spans = fault_runtime.spans()
            # Compiled chains read the runtime's dynamic-site counter
            # directly and pick their injection-aware variant by mode.
            vm.fault_runtime = fault_runtime
            vm.compiled_inject = fault_runtime.mode == MODE_INJECT
        else:
            vm.bind_all(prepared[0] if prepared is not None else fault_runtime.bindings())
        fired: Callable[[], bool] = lambda: False
        if bindings_factory is not None:
            extra, fired = bindings_factory()
            vm.bind_all(extra)
        return vm, fired

    def golden(
        self, runner: Runner, bindings_factory: BindingsFactory | None = None
    ) -> GoldenRun:
        interval = self.checkpoint_interval
        rt = self._count_runtime
        if rt is None:
            rt = FaultRuntime(MODE_COUNT, checkpoint_interval=interval)
            self._count_runtime = rt
            self._count_prepared = (
                (rt.entries(), rt.spans())
                if self._plan is not None
                else (rt.bindings(),)
            )
        else:
            rt.reset_counting()
        vm, fired = self._prepare_vm(rt, bindings_factory, self._count_prepared)
        tape = None
        if interval:
            tape = CheckpointTape(interval, self.module.version)
            vm.block_hook = self._recording_hook(rt, tape)
        output = runner(vm)
        if tape is not None:
            self.checkpoint_stats["tapes_recorded"] += 1
            self.checkpoint_stats["checkpoints_recorded"] += len(tape)
        return GoldenRun(
            output=output,
            dynamic_sites=rt.dynamic_count,
            dynamic_instructions=vm.stats.total,
            detector_fired=fired(),
            site_widths=bytes(rt.site_widths),
            checkpoints=tape,
        )

    def _recording_hook(self, rt: FaultRuntime, tape: CheckpointTape):
        """Golden-run block hook: snapshot at interval boundaries.

        The runtime raises ``checkpoint_pending`` when the dynamic-site
        counter crosses an interval mark; the snapshot itself waits for the
        next depth-1 block start — the one program point the interpreter
        can later re-enter with nothing live but (memory, registers, block
        cursor, phi edge).
        """

        def hook(vm, decoded, regs, current, prev_block):
            if not rt.checkpoint_pending:
                return
            rt.acknowledge_checkpoint()
            stats = vm.stats
            tape.record(
                Checkpoint(
                    invocation=vm.current_invocation,
                    dynamic_count=rt.dynamic_count,
                    stats_total=stats.total,
                    stats_scalar=stats.scalar,
                    stats_vector=stats.vector,
                    by_opcode=(
                        stats.by_opcode.copy() if vm.count_opcodes else None
                    ),
                    frame=FrameState(
                        function_name=decoded.name,
                        block=current.source,
                        prev_block=prev_block,
                        regs=copy_regs(regs),
                    ),
                    memory=vm.memory.snapshot(tape.last_memory),
                )
            )

        return hook

    def cached_golden(
        self, runner: Runner, bindings_factory: BindingsFactory | None = None
    ) -> GoldenRun:
        """The golden run for ``runner``, memoized by ``runner.input_key``.

        Runners without a stable ``input_key`` attribute (or with one of
        ``None``) always execute — the cache only ever serves inputs it can
        identify.  A golden during which a detector fired is returned but
        never stored: it signals broken invariants and must keep failing
        loudly on every experiment, not be masked by a stale cache entry.
        """
        key = getattr(runner, "input_key", None)
        if key is None:
            return self.golden(runner, bindings_factory)
        cached = self.golden_cache.get(key)
        if cached is not None:
            return cached
        golden = self.golden(runner, bindings_factory)
        if not golden.detector_fired:
            self.golden_cache.put(key, golden)
        return golden

    def experiment(
        self,
        runner: Runner,
        rng: Random,
        bindings_factory: BindingsFactory | None = None,
        golden: GoldenRun | None = None,
    ) -> ExperimentResult:
        """Run one complete fault-injection experiment.

        ``golden`` may be passed in when the caller reuses one input for
        many experiments (the detector study does); otherwise it comes from
        the input-keyed golden cache — the paper's two-execution protocol
        with the first execution amortized across same-input experiments.
        """
        if golden is None:
            golden = self.cached_golden(runner, bindings_factory)
        if golden.detector_fired:
            raise InjectionError(
                "detector fired during the golden run: the invariants are "
                "wrong or the program is miscompiled"
            )
        n = golden.dynamic_sites
        if n == 0:
            raise InjectionError(
                f"program exercised no dynamic fault sites in category "
                f"{self.category!r}"
            )
        k = rng.randint(1, n)
        widths = golden.site_widths
        if widths is not None and len(widths) >= n:
            # Pre-draw the bit from the count run's recorded site width:
            # the same value, from the same RNG-stream position, as the
            # lazy draw the faulty run would have made at site k.
            return self.faulty(
                runner, golden, k, bit=rng.randrange(widths[k - 1]),
                bindings_factory=bindings_factory,
            )
        return self.faulty(
            runner, golden, k, rng=rng, bindings_factory=bindings_factory
        )

    def faulty(
        self,
        runner: Runner,
        golden: GoldenRun,
        k: int,
        bit: int | None = None,
        rng: Random | None = None,
        bindings_factory: BindingsFactory | None = None,
    ) -> ExperimentResult:
        """Run and classify the faulty half of one experiment.

        Flips ``bit`` (or an rng-drawn bit) of dynamic site ``k`` and
        classifies the outcome against ``golden``.  This is the unit of work
        a parallel campaign ships to workers: the schedule ``(input, k,
        bit)`` is drawn in the parent, so results are bit-identical to
        serial execution at any worker count.

        When ``golden`` carries a checkpoint tape (this injector has a
        ``checkpoint_interval``), the run fast-forwards: it restores the
        latest checkpoint strictly before site ``k`` and executes only the
        suffix — same outcome, records, and dynamic-instruction totals as
        the full replay, just without the pre-fault prefix.  With
        ``convergence_exit``, a post-injection run whose architectural
        state re-converges bit-for-bit with a recorded golden checkpoint is
        classified Benign immediately.
        """
        n = golden.dynamic_sites
        rt = FaultRuntime(MODE_INJECT, target_index=k, rng=rng, bit=bit)
        vm, fired = self._prepare_vm(rt, bindings_factory)
        cstats = self.checkpoint_stats
        tape = golden.checkpoints if self.checkpoint_interval else None
        if tape is not None and (
            not tape.checkpoints
            or tape.module_version != self.module.version
            # A detector fired somewhere in this golden run: skipping (or
            # early-exiting) the replay could skip firings, so fall back to
            # full replay for the exact detected flag.
            or golden.detector_fired
        ):
            tape = None
        restored = None
        if tape is not None:
            restored = tape.best_for(k)
            if restored is not None:
                vm.pending_resume = ResumePoint(
                    invocation=restored.invocation,
                    checkpoint=restored,
                    on_restore=self._runtime_restorer(rt, restored),
                )
                cstats["restores"] += 1
                cstats["sites_skipped"] += restored.dynamic_count
            else:
                cstats["full_replays"] += 1
            if self.convergence_exit and not vm.count_opcodes:
                hook = self._convergence_hook(rt, tape, restored)
                if hook is not None:
                    vm.block_hook = hook
        try:
            output = runner(vm)
        except ConvergedToGolden:
            cstats["convergence_exits"] += 1
            detected = fired()
            if rt.record is None:  # pragma: no cover - hook arms post-injection
                raise InjectionError("convergence exit before any injection")
            return ExperimentResult(
                outcome=Outcome.BENIGN,
                detected=detected,
                injection=rt.record,
                dynamic_sites=n,
                target_index=k,
                site_categories=self._categories_of(rt),
                golden_dynamic_instructions=golden.dynamic_instructions,
                faulty_dynamic_instructions=golden.dynamic_instructions,
                notes={"converged_early": True},
            )
        except VMTrap as trap:
            return ExperimentResult(
                outcome=Outcome.CRASH,
                crash_kind=trap.kind,
                detected=fired(),
                injection=rt.record,
                dynamic_sites=n,
                target_index=k,
                site_categories=self._categories_of(rt),
                golden_dynamic_instructions=golden.dynamic_instructions,
                faulty_dynamic_instructions=vm.stats.total,
            )
        if vm.pending_resume is not None:
            # The runner finished without re-invoking the checkpointed
            # function (it called run() fewer times than the golden run
            # did).  The execution simply replayed in full from site 1 —
            # correct, just unaccelerated — but it signals a runner whose
            # invocation structure is input-dependent.
            vm.pending_resume = None
            cstats["unconsumed_resumes"] += 1
        detected = fired()
        if rt.record is None:
            raise InjectionError(
                f"faulty run never reached dynamic site {k} of {n}; "
                "the program is nondeterministic"
            )
        outcome = (
            Outcome.BENIGN if outputs_equal(golden.output, output) else Outcome.SDC
        )
        return ExperimentResult(
            outcome=outcome,
            detected=detected,
            injection=rt.record,
            dynamic_sites=n,
            target_index=k,
            site_categories=self._categories_of(rt),
            golden_dynamic_instructions=golden.dynamic_instructions,
            faulty_dynamic_instructions=vm.stats.total,
        )

    @staticmethod
    def _runtime_restorer(rt: FaultRuntime, checkpoint: Checkpoint):
        """Fast-forward the fault runtime to the checkpoint's position.

        Runs inside the interpreter's restore, after memory and stats: the
        suffix then consumes dynamic sites ``dynamic_count+1 ..`` exactly
        as the full replay would.
        """

        def on_restore(count=checkpoint.dynamic_count):
            rt.dynamic_count = count

        return on_restore

    def _convergence_hook(self, rt: FaultRuntime, tape: CheckpointTape, restored):
        """Faulty-run block hook: exit Benign on golden re-convergence.

        Sound because a checkpoint pins *all* state the continuation
        depends on: once the (invocation, block, phi edge, stats,
        dynamic-site position) coordinates line up and registers plus
        memory compare bit-for-bit, the remaining execution is the golden
        suffix — the final output equals the golden output and no further
        site can be the (already-hit) target.  Comparisons are bitwise
        (floats by bit pattern), so -0.0 vs 0.0 or a different NaN payload
        never converges.
        """
        checkpoints = tape.checkpoints
        # Convergence can only happen *after* the restore point (or, on a
        # full replay, after injection — the pre-injection guard below).
        idx = restored.index + 1 if restored is not None else 0
        if idx >= len(checkpoints):
            return None
        records = rt.records
        last = len(checkpoints)

        def hook(vm, decoded, regs, current, prev_block):
            nonlocal idx
            if not records:
                return  # pre-injection: the prefix matches golden trivially
            count = rt.dynamic_count
            inv = vm.current_invocation
            while True:
                cp = checkpoints[idx]
                if cp.invocation > inv or (
                    cp.invocation == inv and cp.dynamic_count >= count
                ):
                    break
                idx += 1
                if idx >= last:
                    vm.block_hook = None  # ran past the tape: give up
                    return
            if cp.invocation != inv or cp.dynamic_count != count:
                return
            stats = vm.stats
            if (
                cp.frame.block is not current.source
                or cp.frame.prev_block is not prev_block
                or cp.stats_total != stats.total
                or cp.stats_scalar != stats.scalar
                or cp.stats_vector != stats.vector
            ):
                return
            if not regs_match(regs, cp.frame.regs):
                return
            if not cp.memory.matches(vm.memory):
                return
            raise ConvergedToGolden(cp)

        return hook

    def _categories_of(self, rt: FaultRuntime) -> frozenset[str]:
        if rt.record is None:
            return frozenset()
        site = self._site_by_id.get(rt.record.site_id)
        return site.categories if site is not None else frozenset()
