"""The fault-injection engine: VULFI's two-execution strategy (paper §IV-B).

One *experiment*:

1. **Golden run** — execute the instrumented program with the runtime in
   ``count`` mode: record the output and the number ``N`` of dynamic fault
   sites encountered.
2. Choose a dynamic site index ``k ~ U{1..N}`` and (at injection time) a
   uniformly random bit of the site's value.
3. **Faulty run** — re-execute with the runtime in ``inject`` mode; the
   ``k``-th dynamic site gets one bit flipped.
4. Classify: Crash if the run trapped (or hung past the step budget), SDC
   if the output differs from the golden run, Benign otherwise; record
   whether any inserted detector fired.

The engine instruments a structural *clone* of the module (meta-preserving,
see :mod:`repro.ir.clone`), so the caller's IR is never mutated and one engine can serve thousands of
experiments — the instrumented module is reusable because all mutable
injection state lives in the per-run :class:`~repro.core.runtime.FaultRuntime`.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable

from ..errors import InjectionError, VMTrap
from ..ir.clone import clone_module
from ..ir.module import Module
from ..vm.interpreter import DEFAULT_STEP_LIMIT, Interpreter
from .instrument import instrument_module
from .outcomes import ExperimentResult, Outcome, outputs_equal
from .runtime import FaultRuntime, MODE_COUNT, MODE_INJECT
from .sites import StaticSite, enumerate_module_sites, filter_sites

#: A runner drives one complete program execution against a fresh
#: interpreter (allocate inputs, call the kernel, gather outputs) and must
#: be deterministic: the golden and faulty runs replay the same runner.
Runner = Callable[[Interpreter], dict]

#: Supplies extra host bindings (detector runtimes); returns the bindings
#: plus a zero-argument "did any detector fire?" probe.
BindingsFactory = Callable[[], tuple[dict, Callable[[], bool]]]


@dataclass
class GoldenRun:
    output: dict
    dynamic_sites: int
    dynamic_instructions: int
    detector_fired: bool


class FaultInjector:
    """Instruments a module once and runs experiments against it."""

    def __init__(
        self,
        module: Module,
        category: str = "all",
        functions: list[str] | None = None,
        step_limit: int = DEFAULT_STEP_LIMIT,
        clone: bool = True,
        respect_masks: bool = True,
    ):
        self.category = category
        self.step_limit = step_limit
        self.respect_masks = respect_masks
        self.module = clone_module(module) if clone else module
        all_sites = enumerate_module_sites(self.module, functions)
        self.sites: list[StaticSite] = filter_sites(all_sites, category)
        if not self.sites:
            raise InjectionError(
                f"no fault sites in category {category!r}"
            )
        instrument_module(self.module, self.sites, respect_masks=respect_masks)
        self._site_by_id = {s.site_id: s for s in self.sites}

    # -- execution ------------------------------------------------------------

    def _prepare_vm(
        self,
        fault_runtime: FaultRuntime,
        bindings_factory: BindingsFactory | None,
    ) -> tuple[Interpreter, Callable[[], bool]]:
        vm = Interpreter(self.module, step_limit=self.step_limit)
        vm.bind_all(fault_runtime.bindings())
        fired: Callable[[], bool] = lambda: False
        if bindings_factory is not None:
            extra, fired = bindings_factory()
            vm.bind_all(extra)
        return vm, fired

    def golden(
        self, runner: Runner, bindings_factory: BindingsFactory | None = None
    ) -> GoldenRun:
        rt = FaultRuntime(MODE_COUNT)
        vm, fired = self._prepare_vm(rt, bindings_factory)
        output = runner(vm)
        return GoldenRun(
            output=output,
            dynamic_sites=rt.dynamic_count,
            dynamic_instructions=vm.stats.total,
            detector_fired=fired(),
        )

    def experiment(
        self,
        runner: Runner,
        rng: Random,
        bindings_factory: BindingsFactory | None = None,
        golden: GoldenRun | None = None,
    ) -> ExperimentResult:
        """Run one complete fault-injection experiment.

        ``golden`` may be passed in when the caller reuses one input for
        many experiments (the detector study does); otherwise the golden
        run is performed here, as in the paper's two-execution protocol.
        """
        if golden is None:
            golden = self.golden(runner, bindings_factory)
        if golden.detector_fired:
            raise InjectionError(
                "detector fired during the golden run: the invariants are "
                "wrong or the program is miscompiled"
            )
        n = golden.dynamic_sites
        if n == 0:
            raise InjectionError(
                f"program exercised no dynamic fault sites in category "
                f"{self.category!r}"
            )
        k = rng.randint(1, n)

        rt = FaultRuntime(MODE_INJECT, target_index=k, rng=rng)
        vm, fired = self._prepare_vm(rt, bindings_factory)
        try:
            output = runner(vm)
        except VMTrap as trap:
            return ExperimentResult(
                outcome=Outcome.CRASH,
                crash_kind=trap.kind,
                detected=fired(),
                injection=rt.record,
                dynamic_sites=n,
                target_index=k,
                site_categories=self._categories_of(rt),
                golden_dynamic_instructions=golden.dynamic_instructions,
            )
        detected = fired()
        if rt.record is None:
            raise InjectionError(
                f"faulty run never reached dynamic site {k} of {n}; "
                "the program is nondeterministic"
            )
        outcome = (
            Outcome.BENIGN if outputs_equal(golden.output, output) else Outcome.SDC
        )
        return ExperimentResult(
            outcome=outcome,
            detected=detected,
            injection=rt.record,
            dynamic_sites=n,
            target_index=k,
            site_categories=self._categories_of(rt),
            golden_dynamic_instructions=golden.dynamic_instructions,
        )

    def _categories_of(self, rt: FaultRuntime) -> frozenset[str]:
        if rt.record is None:
            return frozenset()
        site = self._site_by_id.get(rt.record.site_id)
        return site.categories if site is not None else frozenset()
