"""VULFI's runtime fault-injection API.

The instrumentor (:mod:`repro.core.instrument`) rewrites every fault site
into a call to one of the ``injectFault<Ty>Ty`` entry points below, passing
``(value, active, site_id)``.  ``active`` is 1 when the lane's execution
mask is on (always 1 for unmasked sites) — an inactive lane's call returns
the value untouched and does **not** count as a dynamic fault site, matching
§II's treatment of masked vector instructions.

A :class:`FaultRuntime` instance is bound into the interpreter for one
program execution and operates in one of two modes:

* ``count``  — the golden run: count dynamic sites, perturb nothing;
* ``inject`` — flip one uniformly random bit of the ``target_index``-th
  dynamic site (1-based), chosen by the campaign driver as
  ``U{1..N}`` with ``N`` from the count run (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..errors import InjectionError
from ..ir.types import F32, F64, FunctionType, I1, I32, I64
from ..ir.module import Module
from ..vm.bits import flip_bit_float, flip_bit_int

MODE_COUNT = "count"
MODE_INJECT = "inject"

#: name -> (value IR type, bit width, is_float)
API = {
    "injectFaultBoolTy": (I1, 1, False),
    "injectFaultIntTy": (I32, 32, False),
    "injectFaultInt64Ty": (I64, 64, False),
    "injectFaultFloatTy": (F32, 32, True),
    "injectFaultDoubleTy": (F64, 64, True),
}

#: Entry-point name -> position in :meth:`FaultRuntime.entries`.  The direct
#: execution engine dispatches on these small integers instead of names.
ENTRY_INDEX = {name: index for index, name in enumerate(API)}


def api_name_for(scalar_type) -> str:
    """Runtime entry point for a scalar IR type (pointers go via i64)."""
    if scalar_type.is_pointer():
        return "injectFaultInt64Ty"
    if scalar_type.is_float():
        return "injectFaultFloatTy" if scalar_type.bits == 32 else "injectFaultDoubleTy"
    if scalar_type.bits == 1:
        return "injectFaultBoolTy"
    if scalar_type.bits == 64:
        return "injectFaultInt64Ty"
    return "injectFaultIntTy"


def declare_api(module: Module) -> None:
    """Declare all runtime entry points in ``module``."""
    for name, (vty, _bits, _isf) in API.items():
        module.declare_function(
            name, FunctionType(vty, (vty, I32, I32)), attributes=("vulfi-runtime",)
        )


@dataclass
class InjectionRecord:
    """What a single injection actually did."""

    site_id: int
    dynamic_index: int
    bit: int
    type_name: str
    original: float | int
    corrupted: float | int


class FaultRuntime:
    """Per-execution injection state; bind with :meth:`bindings`.

    The paper's fault model injects exactly one single-bit flip per
    execution (``target_index``).  As an extension, ``target_indices`` may
    supply *several* dynamic-site indices to corrupt in one run — a
    multiple-fault model for studying detector behaviour under burst upsets
    (each hit still flips one uniformly chosen bit).
    """

    def __init__(
        self,
        mode: str = MODE_COUNT,
        target_index: int | None = None,
        rng: Random | None = None,
        bit: int | None = None,
        target_indices: list[int] | None = None,
        checkpoint_interval: int | None = None,
    ):
        if mode not in (MODE_COUNT, MODE_INJECT):
            raise InjectionError(f"unknown runtime mode {mode!r}")
        if target_indices is not None and target_index is not None:
            raise InjectionError("pass target_index or target_indices, not both")
        if mode == MODE_INJECT:
            if target_indices is not None:
                if not target_indices or min(target_indices) < 1:
                    raise InjectionError("target_indices must be 1-based and non-empty")
            elif target_index is None or target_index < 1:
                raise InjectionError("inject mode needs a 1-based target_index")
            if rng is None and bit is None:
                raise InjectionError("inject mode needs an rng or a fixed bit")
        self.mode = mode
        self.targets = (
            frozenset(target_indices)
            if target_indices is not None
            else (frozenset({target_index}) if target_index is not None else frozenset())
        )
        self.target_index = target_index
        #: Largest target index (0 when counting) — the compiled engine's
        #: chain prologues compare the dynamic counter against this to skip
        #: span checks once every target is behind them.
        self.max_target = max(self.targets) if self.targets else 0
        self.rng = rng
        self.fixed_bit = bit
        self.dynamic_count = 0
        self.records: list[InjectionRecord] = []
        # Count mode records each dynamic site's API bit width, so a
        # campaign driver can pre-draw the injected bit for site ``k`` as
        # ``rng.randrange(site_widths[k - 1])`` — the same value (and the
        # same RNG-stream position) the lazy in-run draw would produce.
        # This is what makes parallel scheduling bit-identical to serial.
        self.site_widths = bytearray() if mode == MODE_COUNT else None
        # Checkpoint scheduling (count mode only): when the dynamic-site
        # counter crosses the next interval mark, ``checkpoint_pending`` is
        # raised; the interpreter's block hook takes the snapshot at the
        # next depth-1 block boundary and calls
        # :meth:`acknowledge_checkpoint`.
        self.checkpoint_interval = (
            checkpoint_interval if mode == MODE_COUNT else None
        )
        self.checkpoint_pending = False
        self._next_checkpoint = checkpoint_interval or 0

    @property
    def record(self) -> InjectionRecord | None:
        """The first (paper model: only) injection performed this run."""
        return self.records[0] if self.records else None

    def reset_counting(self) -> None:
        """Rewind a count-mode runtime for reuse by the next golden run.

        The entry/span closures built by :meth:`entries`/:meth:`spans`
        capture this runtime and its width tape *by object*, so clearing
        state in place keeps them valid — golden runs pay the closure
        construction once per injector instead of once per run.  Inject
        runtimes are never pooled (targets and RNG state are per-run).
        """
        if self.mode != MODE_COUNT:
            raise InjectionError("only count-mode runtimes are reusable")
        self.dynamic_count = 0
        self.site_widths.clear()
        self.checkpoint_pending = False
        self._next_checkpoint = self.checkpoint_interval or 0

    def span_hits(self, lo: int, hi: int) -> bool:
        """True when any target index lies in the half-open span ``(lo, hi]``.

        The compiled engine calls this once per superblock chain with the
        chain's *maximum* possible site consumption: a hit sends the head
        block to the decoded fallback, where the per-group span advancers
        reproduce the injection exactly.
        """
        for t in self.targets:
            if lo < t <= hi:
                return True
        return False

    def acknowledge_checkpoint(self) -> None:
        """Snapshot taken: clear the flag, arm the next interval mark."""
        self.checkpoint_pending = False
        self._next_checkpoint = self.dynamic_count + self.checkpoint_interval

    # -- entry point factory ---------------------------------------------------

    def _entry(self, bits: int, is_float: bool, type_name: str):
        # Hoist every per-call attribute lookup into closure locals: this
        # closure runs once per dynamic fault site, which for category="all"
        # campaigns means once per executed instruction lane.  Mode, targets,
        # and the bit policy are frozen at construction, so nothing here can
        # go stale.
        widths = self.site_widths
        injecting = self.mode == MODE_INJECT
        targets = self.targets
        fixed_bit = self.fixed_bit
        rng = self.rng
        records = self.records
        flip = flip_bit_float if is_float else flip_bit_int
        # None except in a checkpointing count run, so the inject-mode hot
        # path never tests it (``widths`` is None there).
        interval = self.checkpoint_interval

        def inject(value, active, site_id):
            if not active:
                return value
            count = self.dynamic_count + 1
            self.dynamic_count = count
            if widths is not None:
                widths.append(bits)
                if interval is not None and count >= self._next_checkpoint:
                    self.checkpoint_pending = True
            if injecting and count in targets:
                # A fixed bit position wraps modulo the value's width so bit
                # sweeps remain well-defined when a site is narrower (an i1
                # mask lane during an f32 sweep, say).
                bit = fixed_bit % bits if fixed_bit is not None else rng.randrange(bits)
                corrupted = flip(value, bit, bits)
                records.append(
                    InjectionRecord(
                        site_id=site_id,
                        dynamic_index=count,
                        bit=bit,
                        type_name=type_name,
                        original=value,
                        corrupted=corrupted,
                    )
                )
                return corrupted
            return value

        return inject

    def _span_entry(self, bits: int):
        # The batched counterpart of :meth:`_entry`: advance the dynamic-site
        # counter over ``n`` consecutive *active* same-width sites in one
        # call.  Returns False — without consuming anything — when a target
        # index falls inside the span; the caller then replays those sites
        # through the per-lane entry points so the injection (and its RNG
        # draw) happens at exactly the site it would have under per-lane
        # dispatch.
        widths = self.site_widths
        record_widths = widths.extend if widths is not None else None
        targets = self.targets  # empty in count mode
        byte = bytes((bits,))
        interval = self.checkpoint_interval

        def span(n):
            count = self.dynamic_count
            if targets:
                hi = count + n
                for t in targets:
                    if count < t <= hi:
                        return False
            count += n
            self.dynamic_count = count
            if record_widths is not None:
                record_widths(byte * n)
                if interval is not None and count >= self._next_checkpoint:
                    self.checkpoint_pending = True
            return True

        return span

    def bindings(self) -> dict:
        return {
            name: self._entry(bits, is_float, name.replace("injectFault", "").replace("Ty", ""))
            for name, (_ty, bits, is_float) in API.items()
        }

    def entries(self) -> tuple:
        """The API entry points as a tuple indexed by :data:`ENTRY_INDEX`.

        The direct engine's decoded closures call these directly — same
        counting, RNG draws, and records as the named bindings, minus the
        name lookup and the interpreted call instruction.
        """
        return tuple(
            self._entry(bits, is_float, name.replace("injectFault", "").replace("Ty", ""))
            for name, (_ty, bits, is_float) in API.items()
        )

    def spans(self) -> tuple:
        """Batched span advancers, indexed by :data:`ENTRY_INDEX`.

        ``spans()[i](n)`` consumes ``n`` consecutive active sites of entry
        ``i``'s width, or returns False (consuming nothing) when a target
        lies within the span.  The direct engine's group closures use these
        to skip whole uninjected vector groups in one call.
        """
        return tuple(
            self._span_entry(bits) for _ty, bits, _isf in API.values()
        )

    @property
    def injected(self) -> bool:
        return bool(self.records)
