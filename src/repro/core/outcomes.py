"""Outcome classification for fault-injection experiments (paper §IV-B).

* **SDC** — the faulty run terminates but its output differs from the
  golden run's;
* **Benign** — outputs are identical;
* **Crash** — the faulty run traps (simulated segfault/SIGFPE), exceeds its
  step budget (a hang, killed by the watchdog), or otherwise fails in a way
  "that could easily be detected by the end user".

Orthogonally, a run is **detected** when an inserted error detector fired —
the paper reports detection *within* the SDC population (Fig. 12), so
detection is a flag on the result, not a fourth outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from .runtime import InjectionRecord


class Outcome(str, Enum):
    SDC = "sdc"
    BENIGN = "benign"
    CRASH = "crash"


def values_equal(a, b) -> bool:
    """Bitwise-faithful comparison of one output item (array or scalar).

    NaNs compare equal to NaNs in the same positions: a faulty run that
    produces the *same* NaN pattern as the golden run is not a corruption.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a = np.asarray(a)
        b = np.asarray(b)
        if a.shape != b.shape:
            return False
        if a.dtype.kind == "f" or b.dtype.kind == "f":
            return bool(np.array_equal(a, b, equal_nan=True))
        return bool(np.array_equal(a, b))
    if isinstance(a, float) and isinstance(b, float):
        return (a == b) or (a != a and b != b)
    return a == b


def outputs_equal(golden: dict, faulty: dict) -> bool:
    if golden.keys() != faulty.keys():
        return False
    return all(values_equal(golden[k], faulty[k]) for k in golden)


@dataclass
class ExperimentResult:
    """Everything recorded about one fault-injection experiment."""

    outcome: Outcome
    detected: bool = False
    crash_kind: str | None = None  # errors.VMTrap.kind when outcome == CRASH
    injection: InjectionRecord | None = None
    dynamic_sites: int = 0  # N from the golden run
    target_index: int = 0  # k chosen uniformly from {1..N}
    site_categories: frozenset[str] = frozenset()
    golden_dynamic_instructions: int = 0
    #: Dynamic-instruction total of the faulty run itself (at the trap, for
    #: crashes).  A convergence early-exit reports the golden total — the
    #: exit's premise is that the remaining suffix *is* the golden suffix,
    #: so the completed run's total provably equals it.
    faulty_dynamic_instructions: int = 0
    notes: dict = field(default_factory=dict)

    @property
    def is_sdc(self) -> bool:
        return self.outcome is Outcome.SDC

    @property
    def is_crash(self) -> bool:
        return self.outcome is Outcome.CRASH

    @property
    def is_benign(self) -> bool:
        return self.outcome is Outcome.BENIGN
