"""VULFI's instrumentation pass (paper §II-D, Figs 4-5).

For every selected fault site the pass splices a call to the runtime API
into the def-use graph:

* **scalar Lvalue** — ``%inj = call @injectFault<Ty>Ty(%v, active, id)``
  right after the defining instruction; all other users of ``%v`` are
  redirected to ``%inj``;
* **vector Lvalue** — the Fig.-4 workflow: walk the lanes of a clone,
  ``extractelement`` each scalar, pass it (with its execution-mask lane)
  to the runtime, ``insertelement`` the result back, and finally replace
  every user of the original register with the instrumented clone;
* **store value** (plain ``store``, ``maskstore``, ``scatter``) — the same
  chain inserted *before* the store, rewriting only the store's operand
  (§II-B: the value is considered for injection prior to the store).

Masked intrinsics get their per-lane ``active`` flag decoded from the mask
operand using the intrinsic registry's convention (sign-bit for AVX,
``i1`` for the generic masked ops) — the distinction §II calls "crucial in
deciding whether or not to target a particular vector lane".

Pointers are bit-flipped as 64-bit integers via a ``ptrtoint`` /
``inttoptr`` sandwich.

All instructions the pass creates carry ``meta['vulfi']`` so they are never
themselves enumerated as fault sites.
"""

from __future__ import annotations

from ..errors import InjectionError
from ..ir.builder import IRBuilder
from ..ir.instructions import Call, Instruction, Store
from ..ir.intrinsics import MASK_I1, MASK_SIGN
from ..ir.module import Module
from ..ir.types import I32, I64, PointerType, Type, pointer, vector
from ..ir.values import Value, const_int
from .runtime import api_name_for, declare_api
from .sites import MaskSpec, StaticSite, assign_site_ids


class Instrumentor:
    """Rewrites a module in place; returns the sites with ids assigned.

    ``respect_masks=False`` is an ablation switch: it instruments masked
    intrinsics as if every lane were always active (``active=1``), i.e. a
    mask-unaware injector in the style of pre-VULFI scalar tools.  §II calls
    the masked/unmasked distinction "crucial in deciding whether or not to
    target a particular vector lane"; the ablation benchmark quantifies what
    ignoring it does to the outcome distribution.
    """

    def __init__(self, module: Module, respect_masks: bool = True):
        self.module = module
        self.respect_masks = respect_masks
        declare_api(module)

    # -- public -----------------------------------------------------------------

    def instrument(self, sites: list[StaticSite]) -> list[StaticSite]:
        # Group the per-lane sites of one register so the whole vector is
        # cloned once, lanes in order (Fig. 4).  Ids come from the shared
        # assignment so the direct engine's plan enumerates the same ones.
        for group in assign_site_ids(sites):
            self._instrument_group(group)
        return sites

    # -- helpers -------------------------------------------------------------------

    def _mark(self, value: Value) -> Value:
        if isinstance(value, Instruction):
            value.meta["vulfi"] = True
        return value

    def _api(self, scalar_type: Type):
        return self.module.get_function(api_name_for(scalar_type))

    def _lane_active(
        self, b: IRBuilder, mask_value: Value | None, spec: MaskSpec | None, lane: int | None
    ) -> Value:
        """The i32 ``active`` flag for one lane."""
        if spec is None or mask_value is None or not self.respect_masks:
            return const_int(I32, 1)
        assert lane is not None, "masked sites are always vector lanes"
        ext = self._mark(b.extractelement(mask_value, lane, "extmask"))
        lane_ty = mask_value.type.scalar_type
        if spec.convention == MASK_I1:
            return self._mark(b.zext(ext, I32, "active"))
        # Sign-bit convention: active iff the lane's sign bit is set.
        if lane_ty.is_float():
            as_int = self._mark(b.bitcast(ext, I32, "maskbits"))
        else:
            as_int = ext
        return self._mark(b.lshr(as_int, const_int(I32, 31), "active"))

    def _inject_scalar(self, b: IRBuilder, value: Value, site: StaticSite) -> Value:
        """Wrap one scalar value in a runtime call (with pointer casts)."""
        active = self._lane_active(
            b,
            site.instr.operands[site.mask.operand_index] if site.mask else None,
            site.mask,
            site.lane,
        )
        sid = const_int(I32, site.site_id)
        if isinstance(site.scalar_type, PointerType):
            as_int = self._mark(b.cast("ptrtoint", value, I64, "ptrbits"))
            injected = self._mark(
                b.call(self._api(site.scalar_type), [as_int, active, sid], "injptr")
            )
            return self._mark(
                b.cast("inttoptr", injected, site.scalar_type, "inj")
            )
        return self._mark(
            b.call(self._api(site.scalar_type), [value, active, sid], "inj")
        )

    # -- per-register instrumentation --------------------------------------------------

    def _instrument_group(self, group: list[StaticSite]) -> None:
        first = group[0]
        instr = first.instr
        if instr.parent is None:
            raise InjectionError("cannot instrument a detached instruction")

        b = IRBuilder()
        if first.targets_store_value:
            b.position_before(instr)
            target_value = instr.operands[first.operand_index]
            new_value = self._build_chain(b, target_value, group)
            instr.set_operand(first.operand_index, new_value)
        else:
            # Lvalue target: remember the existing users, build the chain
            # after the definition, then redirect exactly those users.
            uses_before = list(instr.uses)
            b.position_after(instr)
            new_value = self._build_chain(b, instr, group)
            for user, index in uses_before:
                user.set_operand(index, new_value)

    def _build_chain(self, b: IRBuilder, value: Value, group: list[StaticSite]) -> Value:
        first = group[0]
        if first.lane is None:
            (site,) = group
            return self._inject_scalar(b, value, site)
        # Vector register: clone-and-walk (Fig. 4).  Lanes not selected by
        # the site filter are left untouched.
        current = value
        for site in group:
            ext = self._mark(
                b.extractelement(current, site.lane, f"ext{site.lane}")
            )
            inj = self._inject_scalar(b, ext, site)
            current = self._mark(
                b.insertelement(current, inj, site.lane, f"ins{site.lane}")
            )
        return current


def instrument_module(
    module: Module, sites: list[StaticSite], respect_masks: bool = True
) -> list[StaticSite]:
    """Convenience wrapper: instrument ``module`` in place for ``sites``."""
    return Instrumentor(module, respect_masks=respect_masks).instrument(sites)
