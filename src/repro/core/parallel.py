"""Deterministic parallel experiment execution.

The paper's experiments are embarrassingly parallel — every injection is an
independent (input, site ``k``, bit) triple — but naive fan-out would give
each worker its own RNG and change the published numbers.  Here the *parent*
pre-draws the complete schedule with the one campaign ``Random(seed)``
stream (input draw, then ``k ~ U{1..N}``, then the bit from the golden run's
recorded site width — exactly the serial draw order), and workers only
execute the faulty halves.  Results come back in schedule order, so a
campaign summary is bit-identical to serial execution at any ``--jobs``.

Workers are initialized once per process with a :class:`WorkerContext`: the
pristine module travels pickled, and each worker rebuilds its own
:class:`~repro.core.injector.FaultInjector` from it (instrumentation is
deterministic, so site ids agree with the parent's).  Golden runs stay in
the parent where the input-keyed cache lives; with ``Pool.imap`` over a lazy
schedule generator they overlap with worker faulty runs.
"""

from __future__ import annotations

import functools
import multiprocessing
from dataclasses import dataclass, field
from typing import Callable

from .injector import BindingsFactory, FaultInjector, GoldenRun, Runner
from .outcomes import ExperimentResult


@dataclass
class WorkerContext:
    """Everything a worker process needs; must be picklable.

    ``bindings_factory_maker`` is called once per worker to produce the
    per-run bindings factory (the factory itself is usually a closure, so
    the picklable *maker* — e.g. ``functools.partial(
    detector_bindings_factory, halt_on_detection=False)`` — travels
    instead).
    """

    injector: dict = field(repr=False)  # FaultInjector kwargs incl. module
    make_runner: Callable[[dict], Runner]
    bindings_factory_maker: Callable[[], BindingsFactory] | None = None


@dataclass
class ScheduledExperiment:
    """One pre-drawn experiment: rebuild the runner, flip, classify."""

    params: dict
    k: int
    bit: int
    golden_output: dict
    dynamic_sites: int
    golden_dynamic_instructions: int


#: Tasks shipped per pickle round-trip.  Faulty runs take milliseconds, so
#: one-task batches leave workers starved on IPC; a small constant batch
#: keeps the pipeline full without delaying the in-order result stream.
DEFAULT_CHUNKSIZE = 4

class _WorkerEngine:
    """One worker process's execution state for one campaign cell.

    Built exactly once per (worker, cell) — at fork for single-cell pools
    and for every cell of a sweep (:func:`_init_sweep_worker`), so no task
    ever pays injector construction or module re-decode.  Checkpoint tapes
    are process-local (register files are keyed by live IR instruction
    objects), so a checkpointing worker rebuilds the golden run — tape and
    all — *adaptively*: only for input keys it sees a second time.  A
    worker in the unique-input regime therefore never doubles its golden
    work, while the pooled-input regime records each hot input's tape once
    and fast-forwards every later experiment on it.
    """

    def __init__(self, context: WorkerContext):
        self.context = context
        self.injector = FaultInjector(**context.injector)
        # Decode — and for engine="compiled", exec-compile — every defined
        # function now, at fork, so no faulty run ever pays one-time code
        # generation inside its timed window.
        self.injector.warm()
        self.bindings_factory = (
            context.bindings_factory_maker()
            if context.bindings_factory_maker is not None
            else None
        )
        self._seen_keys: set = set()

    def run_task(self, task: ScheduledExperiment) -> ExperimentResult:
        runner = self.context.make_runner(task.params)
        golden = self._golden_for(runner, task)
        return self.injector.faulty(
            runner,
            golden,
            task.k,
            bit=task.bit,
            bindings_factory=self.bindings_factory,
        )

    def _golden_for(self, runner, task: ScheduledExperiment) -> GoldenRun:
        injector = self.injector
        key = getattr(runner, "input_key", None)
        if injector.checkpoint_interval and key is not None:
            if key in self._seen_keys:
                golden = injector.cached_golden(runner, self.bindings_factory)
                if (
                    golden.dynamic_sites != task.dynamic_sites
                    or golden.dynamic_instructions
                    != task.golden_dynamic_instructions
                ):
                    from ..errors import InjectionError

                    raise InjectionError(
                        "worker golden run disagrees with the parent's "
                        "schedule: the program is nondeterministic"
                    )
                return golden
            self._seen_keys.add(key)
        return GoldenRun(
            output=task.golden_output,
            dynamic_sites=task.dynamic_sites,
            dynamic_instructions=task.golden_dynamic_instructions,
            detector_fired=False,
        )


_worker_engine: _WorkerEngine | None = None

#: Sweep-mode worker state: one eagerly-built engine per cell (fork-time
#: initialization, so serving a task never re-decodes the module).
_sweep_engines: dict = {}


def _init_worker(context: WorkerContext) -> None:
    global _worker_engine
    _worker_engine = _WorkerEngine(context)


def _run_scheduled(task: ScheduledExperiment) -> ExperimentResult:
    assert _worker_engine is not None
    return _worker_engine.run_task(task)


def _init_sweep_worker(contexts: dict) -> None:
    _sweep_engines.clear()
    for key, context in contexts.items():
        _sweep_engines[key] = _WorkerEngine(context)


def _run_sweep_scheduled(keyed_task) -> ExperimentResult:
    key, task = keyed_task
    return _sweep_engines[key].run_task(task)


class ExperimentPool:
    """A worker pool executing pre-drawn schedules in order.

    Thin wrapper over ``multiprocessing.Pool`` so campaign code reads as
    "map the schedule"; ``imap`` keeps the parent producing goldens while
    workers chew on faulty runs.
    """

    def __init__(self, jobs: int, context: WorkerContext):
        self.jobs = jobs
        self._pool = multiprocessing.get_context().Pool(
            processes=jobs, initializer=_init_worker, initargs=(context,)
        )

    def imap(self, schedule, chunksize: int = DEFAULT_CHUNKSIZE):
        return self._pool.imap(_run_scheduled, schedule, chunksize)

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "ExperimentPool":
        return self

    def __exit__(self, *exc) -> None:
        self._pool.terminate()
        self._pool.join()


class SweepPool:
    """One worker pool shared by every cell of an experiment sweep.

    Fig. 11 runs dozens of (benchmark, ISA, category) cells; spawning a
    fresh pool per cell pays fork + module-pickle + injector-build dozens
    of times over.  A sweep pool forks *once* with all cells' contexts, and
    each worker lazily builds injectors only for the cells whose tasks it
    actually receives.  :meth:`cell` returns a view that campaign drivers
    use exactly like an :class:`ExperimentPool` (closing the view is a
    no-op — the sweep owns the processes).
    """

    def __init__(self, jobs: int, contexts: dict):
        self.jobs = jobs
        self._pool = multiprocessing.get_context().Pool(
            processes=jobs, initializer=_init_sweep_worker, initargs=(contexts,)
        )

    def cell(self, key) -> "SweepCell":
        return SweepCell(self, key)

    def imap_keyed(self, key, schedule, chunksize: int = DEFAULT_CHUNKSIZE):
        return self._pool.imap(
            _run_sweep_scheduled, ((key, task) for task in schedule), chunksize
        )

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, *exc) -> None:
        self._pool.terminate()
        self._pool.join()


class SweepCell:
    """One cell's pool-compatible view of a :class:`SweepPool`."""

    def __init__(self, pool: SweepPool, key):
        self._pool = pool
        self.key = key

    def imap(self, schedule, chunksize: int = DEFAULT_CHUNKSIZE):
        return self._pool.imap_keyed(self.key, schedule, chunksize)

    def close(self) -> None:
        """No-op: the owning :class:`SweepPool` manages worker lifetime."""


@dataclass(frozen=True)
class EngineSpec:
    """A by-name recipe for one campaign cell's execution engine.

    Unlike :class:`WorkerContext` — which ships the pickled module itself —
    a spec is a few strings: workers rebuild the module by compiling the
    named registry workload locally (compilation and site enumeration are
    deterministic, so the rebuilt engine is bit-identical to the parent's).
    That makes specs cheap enough to ride along with *every* task, which is
    what lets one persistent pool serve campaigns that did not exist when
    the pool forked: a worker receiving a spec it has never seen builds the
    engine once, caches it, and every later campaign on the same spec —
    any tenant, any seed — reuses it warm.
    """

    workload: str
    target: str
    category: str
    engine: str = "direct"
    step_limit: int = 2_000_000
    respect_masks: bool = True
    checkpoint_interval: int | None = None


def _spec_context(spec: EngineSpec) -> WorkerContext:
    """Build a :class:`WorkerContext` from a by-name spec (worker side)."""
    from ..workloads.registry import build_runner, get_workload

    module = get_workload(spec.workload).compile(spec.target)
    return WorkerContext(
        injector={
            "module": module,
            "category": spec.category,
            "step_limit": spec.step_limit,
            "respect_masks": spec.respect_masks,
            "engine": spec.engine,
            "checkpoint_interval": spec.checkpoint_interval,
        },
        make_runner=functools.partial(build_runner, spec.workload),
    )


#: Service-mode worker state: engines built on first use and kept warm for
#: every later campaign with the same spec (the handoff the campaign
#: service's warm-submission speedup rests on).  Maps EngineSpec ->
#: _WorkerEngine; lives for the worker process's whole life.
_service_engines: dict = {}


def _run_service_task(keyed_task) -> ExperimentResult:
    spec, task = keyed_task
    engine = _service_engines.get(spec)
    if engine is None:
        engine = _service_engines[spec] = _WorkerEngine(_spec_context(spec))
    return engine.run_task(task)


def _warm_service_engine(spec: EngineSpec) -> bool:
    """Pre-build one worker's engine for ``spec``; True if it was cold."""
    if spec in _service_engines:
        return False
    _service_engines[spec] = _WorkerEngine(_spec_context(spec))
    return True


class ServicePool:
    """One persistent worker pool shared by every campaign of a service.

    The sweep pool forks with all cell contexts known upfront; a service
    cannot know its future submissions, so its pool forks *empty* and
    workers build engines lazily from the :class:`EngineSpec` riding along
    with each task, keeping them cached across campaigns and tenants.
    Concurrent ``imap`` calls from different scheduler threads are safe —
    ``multiprocessing.Pool`` serializes its task queue — and results of
    each campaign still stream back in that campaign's schedule order.
    """

    def __init__(self, jobs: int):
        self.jobs = jobs
        self._pool = multiprocessing.get_context().Pool(processes=jobs)

    def cell(self, spec: EngineSpec) -> "ServiceCell":
        return ServiceCell(self, spec)

    def imap_spec(
        self, spec: EngineSpec, schedule, chunksize: int = DEFAULT_CHUNKSIZE
    ):
        return self._pool.imap(
            _run_service_task, ((spec, task) for task in schedule), chunksize
        )

    def prewarm(self, spec: EngineSpec) -> int:
        """Build ``spec``'s engine in every worker; returns cold builds.

        Best-effort: ``map`` hands the batch to whichever workers are
        free, so a busy pool may warm fewer than ``jobs`` processes — the
        stragglers build on first task instead, which is correct, just
        colder.
        """
        return sum(
            self._pool.map(_warm_service_engine, [spec] * self.jobs, chunksize=1)
        )

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def terminate(self) -> None:
        self._pool.terminate()
        self._pool.join()

    def __enter__(self) -> "ServicePool":
        return self

    def __exit__(self, *exc) -> None:
        self.terminate()


class ServiceCell:
    """One campaign's pool-compatible view of a :class:`ServicePool`."""

    def __init__(self, pool: ServicePool, spec: EngineSpec):
        self._pool = pool
        self.spec = spec

    def imap(self, schedule, chunksize: int = DEFAULT_CHUNKSIZE):
        return self._pool.imap_spec(self.spec, schedule, chunksize)

    def close(self) -> None:
        """No-op: the owning :class:`ServicePool` manages worker lifetime."""


def draw_experiment(
    injector: FaultInjector,
    runner: Runner,
    rng,
    bindings_factory: BindingsFactory | None = None,
) -> tuple[GoldenRun, int, int]:
    """Draw one experiment's ``(golden, k, bit)`` in the parent.

    Consumes the RNG stream exactly as :meth:`FaultInjector.experiment`
    does: ``k = rng.randint(1, n)`` then ``bit = rng.randrange(width_k)``.
    Raises the same :class:`~repro.errors.InjectionError` as the serial path
    for detector-tainted goldens and site-free programs.  Shared by the
    parallel scheduler and the store-recorded serial path, which both need
    the schedule triple *before* (or instead of) the faulty run.
    """
    from ..errors import InjectionError

    golden = injector.cached_golden(runner, bindings_factory)
    if golden.detector_fired:
        raise InjectionError(
            "detector fired during the golden run: the invariants are "
            "wrong or the program is miscompiled"
        )
    n = golden.dynamic_sites
    if n == 0:
        raise InjectionError(
            f"program exercised no dynamic fault sites in category "
            f"{injector.category!r}"
        )
    k = rng.randint(1, n)
    bit = rng.randrange(golden.site_widths[k - 1])
    return golden, k, bit


def make_schedule_entry(
    injector: FaultInjector,
    runner: Runner,
    rng,
    bindings_factory: BindingsFactory | None = None,
) -> ScheduledExperiment:
    """Draw one experiment's schedule entry in the parent (see
    :func:`draw_experiment` for the RNG-stream contract)."""
    from ..errors import InjectionError

    golden, k, bit = draw_experiment(injector, runner, rng, bindings_factory)
    params = getattr(runner, "params", None)
    if params is None:
        raise InjectionError(
            "parallel campaigns need runners that carry their input params "
            "(build them via Workload.build_runner / runner_factory)"
        )
    return ScheduledExperiment(
        params=params,
        k=k,
        bit=bit,
        golden_output=golden.output,
        dynamic_sites=golden.dynamic_sites,
        golden_dynamic_instructions=golden.dynamic_instructions,
    )
