"""Deterministic parallel experiment execution.

The paper's experiments are embarrassingly parallel — every injection is an
independent (input, site ``k``, bit) triple — but naive fan-out would give
each worker its own RNG and change the published numbers.  Here the *parent*
pre-draws the complete schedule with the one campaign ``Random(seed)``
stream (input draw, then ``k ~ U{1..N}``, then the bit from the golden run's
recorded site width — exactly the serial draw order), and workers only
execute the faulty halves.  Results come back in schedule order, so a
campaign summary is bit-identical to serial execution at any ``--jobs``.

Workers are initialized once per process with a :class:`WorkerContext`: the
pristine module travels pickled, and each worker rebuilds its own
:class:`~repro.core.injector.FaultInjector` from it (instrumentation is
deterministic, so site ids agree with the parent's).  Golden runs stay in
the parent where the input-keyed cache lives; with ``Pool.imap`` over a lazy
schedule generator they overlap with worker faulty runs.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable

from .injector import BindingsFactory, FaultInjector, GoldenRun, Runner
from .outcomes import ExperimentResult


@dataclass
class WorkerContext:
    """Everything a worker process needs; must be picklable.

    ``bindings_factory_maker`` is called once per worker to produce the
    per-run bindings factory (the factory itself is usually a closure, so
    the picklable *maker* — e.g. ``functools.partial(
    detector_bindings_factory, halt_on_detection=False)`` — travels
    instead).
    """

    injector: dict = field(repr=False)  # FaultInjector kwargs incl. module
    make_runner: Callable[[dict], Runner]
    bindings_factory_maker: Callable[[], BindingsFactory] | None = None


@dataclass
class ScheduledExperiment:
    """One pre-drawn experiment: rebuild the runner, flip, classify."""

    params: dict
    k: int
    bit: int
    golden_output: dict
    dynamic_sites: int
    golden_dynamic_instructions: int


_worker_injector: FaultInjector | None = None
_worker_context: WorkerContext | None = None
_worker_bindings_factory: BindingsFactory | None = None


def _init_worker(context: WorkerContext) -> None:
    global _worker_injector, _worker_context, _worker_bindings_factory
    _worker_context = context
    _worker_injector = FaultInjector(**context.injector)
    _worker_bindings_factory = (
        context.bindings_factory_maker()
        if context.bindings_factory_maker is not None
        else None
    )


def _run_scheduled(task: ScheduledExperiment) -> ExperimentResult:
    assert _worker_injector is not None and _worker_context is not None
    runner = _worker_context.make_runner(task.params)
    golden = GoldenRun(
        output=task.golden_output,
        dynamic_sites=task.dynamic_sites,
        dynamic_instructions=task.golden_dynamic_instructions,
        detector_fired=False,
    )
    return _worker_injector.faulty(
        runner,
        golden,
        task.k,
        bit=task.bit,
        bindings_factory=_worker_bindings_factory,
    )


class ExperimentPool:
    """A worker pool executing pre-drawn schedules in order.

    Thin wrapper over ``multiprocessing.Pool`` so campaign code reads as
    "map the schedule"; ``imap`` keeps the parent producing goldens while
    workers chew on faulty runs.
    """

    def __init__(self, jobs: int, context: WorkerContext):
        self.jobs = jobs
        self._pool = multiprocessing.get_context().Pool(
            processes=jobs, initializer=_init_worker, initargs=(context,)
        )

    def imap(self, schedule):
        return self._pool.imap(_run_scheduled, schedule)

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "ExperimentPool":
        return self

    def __exit__(self, *exc) -> None:
        self._pool.terminate()
        self._pool.join()


def make_schedule_entry(
    injector: FaultInjector,
    runner: Runner,
    rng,
    bindings_factory: BindingsFactory | None = None,
) -> ScheduledExperiment:
    """Draw one experiment's schedule in the parent.

    Consumes the RNG stream exactly as :meth:`FaultInjector.experiment`
    does: ``k = rng.randint(1, n)`` then ``bit = rng.randrange(width_k)``.
    Raises the same :class:`~repro.errors.InjectionError` as the serial path
    for detector-tainted goldens and site-free programs.
    """
    from ..errors import InjectionError

    golden = injector.cached_golden(runner, bindings_factory)
    if golden.detector_fired:
        raise InjectionError(
            "detector fired during the golden run: the invariants are "
            "wrong or the program is miscompiled"
        )
    n = golden.dynamic_sites
    if n == 0:
        raise InjectionError(
            f"program exercised no dynamic fault sites in category "
            f"{injector.category!r}"
        )
    k = rng.randint(1, n)
    bit = rng.randrange(golden.site_widths[k - 1])
    params = getattr(runner, "params", None)
    if params is None:
        raise InjectionError(
            "parallel campaigns need runners that carry their input params "
            "(build them via Workload.build_runner / runner_factory)"
        )
    return ScheduledExperiment(
        params=params,
        k=k,
        bit=bit,
        golden_output=golden.output,
        dynamic_sites=n,
        golden_dynamic_instructions=golden.dynamic_instructions,
    )
