"""Direct-injection plan builder: fault sites folded into the decoder.

The instrumented reference engine (paper §II-D) splices ``injectFault<Ty>Ty``
calls into a cloned module, which the VM then interprets — every vector site
costs an extract/mask-decode/call/insert chain of dynamic instructions on
*both* halves of every experiment.  The direct engine keeps the module
pristine: this module turns the same :class:`~repro.core.sites.StaticSite`
list into an :class:`~repro.vm.decode.InjectionPlan` whose per-lane
:class:`~repro.vm.decode.PlannedSite` descriptors the decoder folds into
specialised closures.

Bit-identical behaviour with the instrumented engine is engineered in, not
hoped for:

* site ids come from :func:`~repro.core.sites.assign_site_ids` — the same
  grouping the instrumentor uses, so both engines number sites identically;
* mask decoding and pointer handling compose the very :mod:`repro.vm.ops`
  evaluators the spliced chain's ``bitcast``/``lshr``/``zext``/``ptrtoint``/
  ``inttoptr`` instructions would execute;
* each descriptor carries the chain's dynamic-instruction *tax*
  (:func:`chain_tax`), charged to the VM's step accounting when the lane is
  visited, so step budgets, timeout crashes, and dynamic-instruction totals
  agree with the instrumented engine.

The same :class:`~repro.vm.decode.InjectionPlan` also feeds the block
compiler (:mod:`repro.vm.compile`, ``engine="compiled"``): compiled chains
inline the group counting and charge the same taxes, and fall back to the
decoded appliers built here for any block a target index could land in —
one plan, three engines, one stream of observables.
"""

from __future__ import annotations

import numpy as np

from ..ir.intrinsics import MASK_I1
from ..ir.types import I32, I64, IntType, PointerType
from ..vm import ops
from ..vm.decode import InjectionPlan, PlannedSite
from .runtime import ENTRY_INDEX, api_name_for
from .sites import StaticSite, assign_site_ids


def chain_tax(site: StaticSite, respect_masks: bool) -> tuple[int, int, int]:
    """The (total, scalar, vector) dynamic-instruction cost of the spliced
    chain this site would get under the instrumented engine.

    Scalar sites: the runtime call, plus the ptrtoint/inttoptr sandwich for
    pointers.  Vector lanes add the extract/insert pair, and masked lanes
    the mask-decode instructions (§II-D): extract + zext for ``i1`` masks,
    extract + bitcast + lshr for sign-bit float masks, extract + lshr for
    sign-bit integer masks.
    """
    # The runtime call itself (scalar: all operands are scalars).
    total, scalar, vector = 1, 1, 0
    if isinstance(site.scalar_type, PointerType):
        total += 2
        scalar += 2
    if site.lane is not None:
        # extractelement + insertelement around the call.
        total += 2
        vector += 2
        if site.mask is not None and respect_masks:
            mask_lane = site.instr.operands[site.mask.operand_index].type.scalar_type
            # extractelement of the mask lane...
            total += 1
            vector += 1
            if site.mask.convention == MASK_I1:
                # ...then zext i1 -> i32.
                total += 1
                scalar += 1
            elif mask_lane.is_float():
                # ...then bitcast to i32 and lshr by 31.
                total += 2
                scalar += 2
            else:
                # ...then lshr by 31 directly.
                total += 1
                scalar += 1
    return total, scalar, vector


def _active_fn(site: StaticSite):
    """The mask-lane -> ``active`` evaluator matching the spliced chain."""
    mask_lane = site.instr.operands[site.mask.operand_index].type.scalar_type
    if site.mask.convention == MASK_I1:
        return ops.cast_fn("zext", mask_lane, I32)
    if mask_lane.is_float():
        bitcast = ops.cast_fn("bitcast", mask_lane, I32)
        lshr = ops.binop_fn("lshr", I32)
        return lambda m: lshr(bitcast(m), 31)
    lshr = ops.binop_fn("lshr", mask_lane)
    return lambda m: lshr(m, 31)


def _bulk_active_fn(site: StaticSite):
    """A packed-mask -> active-lane-count evaluator, or ``None``.

    The batched compiled tier counts a whole mask vector's active lanes in
    one vectorized pass; the result must equal summing :func:`_active_fn`
    over the canonical lanes.  ``lshr(m, 31)`` masks the shift amount to the
    lane width, so for i8/i16/i32 mask lanes it extracts the *sign bit* —
    a ``< 0`` test — while for i64 lanes it extracts bit 31 (not 0/1), so
    those decline the bulk path.  Likewise f64 sign-bit masks: the spliced
    chain's ``bitcast`` to i32 has no packed equivalent, so they stay
    per-lane.
    """
    mask_lane = site.instr.operands[site.mask.operand_index].type.scalar_type
    if site.mask.convention == MASK_I1:
        # zext of canonical 0/1 lanes: active count == nonzero count.
        return lambda m: int(np.count_nonzero(m))
    if mask_lane.is_float():
        if mask_lane.bits == 32:
            return lambda m: int(np.signbit(m).sum())
        return None
    if isinstance(mask_lane, IntType):
        if mask_lane.bits == 1:
            return lambda m: int(np.count_nonzero(m))
        if mask_lane.bits in (8, 16, 32):
            return lambda m: int((m < 0).sum())
    return None


def _planned_site(site: StaticSite, respect_masks: bool) -> PlannedSite:
    scalar_type = site.scalar_type
    to_int = to_ptr = None
    if isinstance(scalar_type, PointerType):
        # Pointers are bit-flipped as 64-bit integers (§II-D).
        to_int = ops.cast_fn("ptrtoint", scalar_type, I64)
        to_ptr = ops.cast_fn("inttoptr", I64, scalar_type)
    masked = site.mask is not None and respect_masks
    return PlannedSite(
        site_id=site.site_id,
        lane=site.lane,
        entry_index=ENTRY_INDEX[api_name_for(scalar_type)],
        mask_operand_index=site.mask.operand_index if masked else None,
        active_fn=_active_fn(site) if masked else None,
        active_bulk_fn=_bulk_active_fn(site) if masked else None,
        to_int=to_int,
        to_ptr=to_ptr,
        tax=chain_tax(site, respect_masks),
    )


def build_injection_plan(
    sites: list[StaticSite], respect_masks: bool = True
) -> InjectionPlan:
    """Assign site ids and compile ``sites`` into an :class:`InjectionPlan`.

    ``respect_masks=False`` mirrors the instrumented engine's ablation
    switch: masked lanes are planned as always-active (and charged the
    cheaper unmasked chain tax, exactly like the chain the ablation would
    have spliced).
    """
    plan = InjectionPlan()
    for group in assign_site_ids(sites):
        first = group[0]
        descriptors = [_planned_site(site, respect_masks) for site in group]
        if first.targets_store_value:
            plan.store[first.instr] = (first.operand_index, descriptors)
        else:
            plan.lvalue[first.instr] = descriptors
    return plan
