"""MiniISPC: an ISPC-like SPMD compiler targeting the vector IR."""

from .codegen import CodeGenerator, generate_module
from .driver import compile_source
from .lexer import tokenize
from .parser import parse_source
from .sema import analyze
from .target import AVX, AVX512, SSE, TARGETS, Target, get_target

__all__ = [
    "CodeGenerator",
    "generate_module",
    "compile_source",
    "tokenize",
    "parse_source",
    "analyze",
    "AVX",
    "AVX512",
    "SSE",
    "TARGETS",
    "Target",
    "get_target",
]
