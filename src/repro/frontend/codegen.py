"""Vectorizing code generator: MiniISPC AST → vector IR.

Reproduces the code-generation discipline the paper reverse-engineered from
ISPC (§III), because the error detectors are synthesized *from* it:

* ``foreach`` lowers to the Fig.-7 skeleton — an ``allocas`` entry region
  computing ``nextras = n % Vl`` and ``aligned_end = n - nextras``, a rotated
  ``foreach_full_body`` loop stepping ``new_counter = counter + Vl`` with all
  lanes active, and a ``partial_inner_only`` tail executing the remaining
  ``n % Vl`` iterations under a lane mask;
* uniform values entering varying contexts are broadcast with the Fig.-9
  ``insertelement`` + ``shufflevector`` idiom;
* masked memory traffic uses the AVX x86 intrinsics (sign-bit masks) or the
  generic ``llvm.masked.*`` intrinsics (i1 masks) depending on the target;
* varying control flow is compiled to mask arithmetic with ``any(mask)``
  early-outs, the standard SPMD-on-SIMD lowering.

The generator marks the foreach latch branch, ``new_counter`` and
``aligned_end`` values with metadata so the detector pass
(:mod:`repro.detectors.foreach_invariants`) can find the invariants without
fragile name matching — modelling the "compiler explicates its invariants"
collaboration the paper advocates.

Local variables are emitted as allocas; run :func:`repro.passes.optimize`
afterwards to obtain the pruned-SSA form the paper analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FrontendError
from ..ir.builder import IRBuilder
from ..ir.instructions import Alloca, Instruction
from ..ir.intrinsics import declare_intrinsic
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import F32, FunctionType, I1, I8, I32, Type, VOID, pointer, vector
from ..ir.values import (
    ConstantFloat,
    ConstantInt,
    ConstantVector,
    Value,
    const_int,
    splat,
    zeroinitializer,
)
from . import ast
from .ast import UNIFORM, VARYING
from .target import Target

_SCALAR_IR = {"int": I32, "float": F32, "bool": I1}


@dataclass
class VarSlot:
    """A mutable local variable backed by an alloca."""

    addr: Value
    ir_type: Type
    qualifier: str
    src_type: str


@dataclass
class ArraySlot:
    """A uniform array parameter (a pointer)."""

    pointer: Value
    elem_type: str


@dataclass
class ValueSlot:
    """A read-only SSA binding (the foreach dimension variable)."""

    value: Value
    src_type: str
    qualifier: str


Slot = VarSlot | ArraySlot | ValueSlot


@dataclass
class ForeachContext:
    """Live while generating one copy of a foreach body."""

    var: str
    idx0: Value  # uniform i32: the source index of lane 0


class CodeGenerator:
    def __init__(self, program: ast.Program, target: Target, module_name: str = "miniispc"):
        self.program = program
        self.target = target
        self.module = Module(module_name)
        self.fn_map: dict[str, Function] = {}

    # -- type mapping ------------------------------------------------------------

    def scalar_ir(self, ty: str) -> Type:
        return _SCALAR_IR[ty]

    def ir_type(self, ty: str, vb: str) -> Type:
        scalar = self.scalar_ir(ty)
        if vb == VARYING:
            return vector(scalar, self.target.vector_width)
        return scalar

    # -- driver -----------------------------------------------------------------

    def generate(self) -> Module:
        for fn in self.program.functions:
            params: list[Type] = []
            names: list[str] = []
            for p in fn.params:
                if p.is_array:
                    params.append(pointer(self.scalar_ir(p.type)))
                else:
                    params.append(self.ir_type(p.type, p.qualifier))
                names.append(p.name)
            ret = (
                VOID
                if fn.return_type == "void"
                else self.ir_type(fn.return_type, fn.return_qualifier)
            )
            ir_fn = self.module.add_function(
                fn.name, FunctionType(ret, tuple(params)), names
            )
            if fn.export:
                ir_fn.attributes.add("export")
            self.fn_map[fn.name] = ir_fn
        for fn in self.program.functions:
            _FunctionEmitter(self, fn).emit()
        return self.module


class _FunctionEmitter:
    def __init__(self, cg: CodeGenerator, decl: ast.FuncDecl):
        self.cg = cg
        self.target = cg.target
        self.module = cg.module
        self.decl = decl
        self.fn = cg.fn_map[decl.name]
        self.builder = IRBuilder()
        self.scopes: list[dict[str, Slot]] = []
        self.mask: Value | None = None  # None == all lanes active
        self.foreach: ForeachContext | None = None
        self.loop_stack: list[tuple[BasicBlock, BasicBlock]] = []  # (break, continue)
        self._entry_block: BasicBlock | None = None
        self._alloca_count = 0
        self._foreach_count = 0

    # -- small helpers --------------------------------------------------------------

    @property
    def vl(self) -> int:
        return self.target.vector_width

    def iota(self) -> ConstantVector:
        return ConstantVector([const_int(I32, i) for i in range(self.vl)])

    def all_true(self) -> ConstantVector:
        return splat(const_int(I1, 1), self.vl)

    def current_mask(self) -> Value:
        return self.mask if self.mask is not None else self.all_true()

    def new_alloca(self, ir_type: Type, name: str) -> Value:
        """Allocas live at the top of the entry block ('allocas', as in the
        paper's Fig. 7) regardless of where codegen currently is."""
        assert self._entry_block is not None
        instr = Alloca(ir_type, 1, name)
        self._entry_block.insert(self._alloca_count, instr)
        instr.parent = self._entry_block
        self._alloca_count += 1
        return instr

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def bind(self, name: str, slot: Slot) -> None:
        self.scopes[-1][name] = slot

    def lookup(self, name: str) -> Slot:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise FrontendError(f"codegen: unbound name {name!r}")

    def intrinsic(self, name: str) -> Function:
        return declare_intrinsic(self.module, name)

    def broadcast(self, scalar: Value, name: str = "") -> Value:
        return self.builder.broadcast(scalar, self.vl, name or scalar.name or "u")

    def as_varying(self, value: Value, ty: str, vb: str, name: str = "") -> Value:
        if vb == VARYING:
            return value
        return self.broadcast(value, name)

    # -- function body ----------------------------------------------------------------

    def emit(self) -> None:
        entry = self.fn.add_block("allocas")
        self._entry_block = entry
        self.builder.position_at_end(entry)
        self.push_scope()
        for p, arg in zip(self.decl.params, self.fn.args):
            if p.is_array:
                self.bind(p.name, ArraySlot(arg, p.type))
            else:
                # Parameters are mutable in C; give them a slot.
                slot = VarSlot(
                    self.new_alloca(self.cg.ir_type(p.type, p.qualifier), p.name + ".addr"),
                    self.cg.ir_type(p.type, p.qualifier),
                    p.qualifier,
                    p.type,
                )
                self.builder.store(arg, slot.addr)
                self.bind(p.name, slot)
        self.gen_stmt(self.decl.body)
        if not self.builder.block.is_terminated:
            if self.decl.return_type == "void":
                self.builder.ret()
            else:
                raise FrontendError(
                    f"@{self.decl.name}: control reaches end of non-void function",
                    self.decl.line,
                )
        self.pop_scope()

    # -- statements ----------------------------------------------------------------------

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if self.builder.block.is_terminated:
            return  # unreachable source code after return/break
        if isinstance(stmt, ast.Block):
            self.push_scope()
            for s in stmt.statements:
                self.gen_stmt(s)
            self.pop_scope()
        elif isinstance(stmt, ast.VarDecl):
            self.gen_vardecl(stmt)
        elif isinstance(stmt, ast.Assign):
            self.gen_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.gen_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.ForeachStmt):
            self.gen_foreach(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                self.builder.ret()
            else:
                self.builder.ret(self.gen_expr(stmt.value))
        elif isinstance(stmt, ast.BreakStmt):
            self.builder.br(self.loop_stack[-1][0])
        elif isinstance(stmt, ast.ContinueStmt):
            self.builder.br(self.loop_stack[-1][1])
        else:  # pragma: no cover
            raise FrontendError(f"codegen: unknown statement {type(stmt).__name__}")

    def gen_vardecl(self, stmt: ast.VarDecl) -> None:
        ir_ty = self.cg.ir_type(stmt.type, stmt.qualifier)
        addr = self.new_alloca(ir_ty, stmt.name)
        slot = VarSlot(addr, ir_ty, stmt.qualifier, stmt.type)
        value = self.gen_expr(stmt.init)
        if stmt.qualifier == VARYING and stmt.init.vb == UNIFORM:
            value = self.broadcast(value, stmt.name)
        # A fresh variable is initialized in all lanes, mask or not.
        self.builder.store(value, addr)
        self.bind(stmt.name, slot)

    def _apply_compound(self, op: str, ty: str, vb: str, old: Value, rhs: Value) -> Value:
        expr_op = op[0]
        b = self.builder
        if ty == "float":
            return {"+": b.fadd, "-": b.fsub, "*": b.fmul, "/": b.fdiv}[expr_op](old, rhs)
        return {"+": b.add, "-": b.sub, "*": b.mul, "/": b.sdiv, "%": b.srem}[expr_op](
            old, rhs
        )

    def gen_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.NameRef):
            slot = self.lookup(target.name)
            if not isinstance(slot, VarSlot):
                raise FrontendError(f"cannot assign to {target.name!r}", stmt.line)
            value = self.gen_expr(stmt.value)
            if slot.qualifier == VARYING and stmt.value.vb == UNIFORM:
                value = self.broadcast(value)
            if stmt.op != "=":
                old = self.builder.load(slot.addr, target.name)
                value = self._apply_compound(
                    stmt.op, slot.src_type, slot.qualifier, old, value
                )
            if slot.qualifier == VARYING and self.mask is not None:
                old = self.builder.load(slot.addr, target.name)
                value = self.builder.select(self.mask, value, old)
            self.builder.store(value, slot.addr)
            return
        assert isinstance(target, ast.IndexExpr)
        value = self.gen_expr(stmt.value)
        if target.vb == VARYING and stmt.value.vb == UNIFORM:
            value = self.broadcast(value)
        if stmt.op != "=":
            old = self.gen_index_load(target)
            value = self._apply_compound(stmt.op, target.ty, target.vb, old, value)
        self.gen_index_store(target, value)

    # -- control flow -----------------------------------------------------------------------

    def gen_if(self, stmt: ast.IfStmt) -> None:
        if stmt.cond.vb == UNIFORM:
            cond = self.gen_expr(stmt.cond)
            then_bb = self.fn.add_block("if.then")
            end_bb = self.fn.add_block("if.end")
            else_bb = self.fn.add_block("if.else") if stmt.else_body else end_bb
            self.builder.condbr(cond, then_bb, else_bb)
            self.builder.position_at_end(then_bb)
            self.gen_stmt(stmt.then_body)
            if not self.builder.block.is_terminated:
                self.builder.br(end_bb)
            if stmt.else_body is not None:
                self.builder.position_at_end(else_bb)
                self.gen_stmt(stmt.else_body)
                if not self.builder.block.is_terminated:
                    self.builder.br(end_bb)
            self.builder.position_at_end(end_bb)
            return

        # Varying if: mask arithmetic with any() early-outs.
        cond_vec = self.gen_expr(stmt.cond)
        outer = self.mask
        m_then = (
            cond_vec if outer is None else self.builder.and_(outer, cond_vec, "mask.then")
        )
        saved = self.mask

        then_bb = self.fn.add_block("vif.then")
        then_done = self.fn.add_block("vif.then.done")
        any_then = self._any(m_then)
        self.builder.condbr(any_then, then_bb, then_done)
        self.builder.position_at_end(then_bb)
        self.mask = m_then
        self.gen_stmt(stmt.then_body)
        self.mask = saved
        self.builder.br(then_done)
        self.builder.position_at_end(then_done)

        if stmt.else_body is not None:
            not_cond = self.builder.xor(cond_vec, self.all_true(), "cond.not")
            m_else = (
                not_cond
                if outer is None
                else self.builder.and_(outer, not_cond, "mask.else")
            )
            else_bb = self.fn.add_block("vif.else")
            end_bb = self.fn.add_block("vif.end")
            any_else = self._any(m_else)
            self.builder.condbr(any_else, else_bb, end_bb)
            self.builder.position_at_end(else_bb)
            self.mask = m_else
            self.gen_stmt(stmt.else_body)
            self.mask = saved
            self.builder.br(end_bb)
            self.builder.position_at_end(end_bb)

    def gen_while(self, stmt: ast.WhileStmt) -> None:
        if stmt.cond.vb == UNIFORM:
            header = self.fn.add_block("while.cond")
            body = self.fn.add_block("while.body")
            end = self.fn.add_block("while.end")
            self.builder.br(header)
            self.builder.position_at_end(header)
            cond = self.gen_expr(stmt.cond)
            self.builder.condbr(cond, body, end)
            self.builder.position_at_end(body)
            self.loop_stack.append((end, header))
            self.gen_stmt(stmt.body)
            self.loop_stack.pop()
            if not self.builder.block.is_terminated:
                self.builder.br(header)
            self.builder.position_at_end(end)
            return

        # Varying while: lanes drop out as their condition fails.
        mask_ty = vector(I1, self.vl)
        mask_var = self.new_alloca(mask_ty, "while.mask")
        self.builder.store(self.current_mask(), mask_var)
        header = self.fn.add_block("vwhile.cond")
        body = self.fn.add_block("vwhile.body")
        end = self.fn.add_block("vwhile.end")
        saved = self.mask
        self.builder.br(header)
        self.builder.position_at_end(header)
        live = self.builder.load(mask_var, "live.mask")
        self.mask = live
        cond_vec = self.gen_expr(stmt.cond)
        m = self.builder.and_(live, cond_vec, "loop.mask")
        self.builder.store(m, mask_var)
        self.builder.condbr(self._any(m), body, end)
        self.builder.position_at_end(body)
        self.mask = m
        self.gen_stmt(stmt.body)
        self.mask = saved
        if not self.builder.block.is_terminated:
            self.builder.br(header)
        self.builder.position_at_end(end)

    def gen_for(self, stmt: ast.ForStmt) -> None:
        self.push_scope()
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        header = self.fn.add_block("for.cond")
        body = self.fn.add_block("for.body")
        step_bb = self.fn.add_block("for.inc")
        end = self.fn.add_block("for.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        if stmt.cond is not None:
            cond = self.gen_expr(stmt.cond)
            self.builder.condbr(cond, body, end)
        else:
            self.builder.br(body)
        self.builder.position_at_end(body)
        self.loop_stack.append((end, step_bb))
        self.gen_stmt(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(step_bb)
        self.builder.position_at_end(step_bb)
        if stmt.step is not None:
            self.gen_stmt(stmt.step)
        self.builder.br(header)
        self.builder.position_at_end(end)
        self.pop_scope()

    # -- foreach (paper Figs 6-8) --------------------------------------------------------------

    def gen_foreach(self, stmt: ast.ForeachStmt) -> None:
        dims = stmt.dims or [ast.ForeachDim(stmt.var, stmt.start, stmt.end)]
        if len(dims) > 1:
            self._gen_foreach_outer(dims, stmt)
            return
        self._gen_foreach_inner(dims[-1], stmt)

    def _gen_foreach_outer(self, dims: list, stmt: ast.ForeachStmt) -> None:
        """Outer foreach dimensions: uniform counted loops wrapping the
        vectorized innermost dimension (paper footnote 4's generalization)."""
        b = self.builder
        dim = dims[0]
        start_v = self.gen_expr(dim.start)
        end_v = self.gen_expr(dim.end)
        counter = self.new_alloca(I32, dim.var + ".outer")
        b.store(start_v, counter)
        header = self.fn.add_block(f"foreach_{dim.var}.cond")
        body = self.fn.add_block(f"foreach_{dim.var}.body")
        done = self.fn.add_block(f"foreach_{dim.var}.end")
        b.br(header)
        b.position_at_end(header)
        cur = b.load(counter, dim.var)
        b.condbr(b.icmp("slt", cur, end_v), body, done)
        b.position_at_end(body)
        self.push_scope()
        self.bind(dim.var, ValueSlot(cur, "int", UNIFORM))
        rest = dims[1:]
        if len(rest) > 1:
            self._gen_foreach_outer(rest, stmt)
        else:
            self._gen_foreach_inner(rest[0], stmt)
        self.pop_scope()
        b.store(b.add(cur, b.i32(1)), counter)
        b.br(header)
        b.position_at_end(done)

    def _gen_foreach_inner(self, dim, stmt: ast.ForeachStmt) -> None:
        b = self.builder
        vl = self.vl
        loop_id = self._foreach_count
        self._foreach_count += 1

        start_v = self.gen_expr(stmt.start)
        end_v = self.gen_expr(stmt.end)
        n_total = b.sub(end_v, start_v, "foreach_n")
        nextras = b.srem(n_total, b.i32(vl), "nextras")
        aligned_end = b.sub(n_total, nextras, "aligned_end")
        aligned_end.meta["foreach_role"] = "aligned_end"
        aligned_end.meta["foreach_id"] = loop_id

        counter_var = self.new_alloca(I32, "counter")
        b.store(b.i32(0), counter_var)

        lr_ph = self.fn.add_block("foreach_full_body.lr.ph")
        full = self.fn.add_block("foreach_full_body")
        partial_outer = self.fn.add_block("partial_inner_all_outer")
        partial = self.fn.add_block("partial_inner_only")
        reset = self.fn.add_block("foreach_reset")

        have_full = b.icmp("sgt", aligned_end, b.i32(0), "have_full")
        b.condbr(have_full, lr_ph, partial_outer)

        b.position_at_end(lr_ph)
        b.br(full)

        # Full body: all Vl lanes active, unit-stride memory where possible.
        b.position_at_end(full)
        c = b.load(counter_var, "counter")
        idx0 = b.add(c, start_v, "base_index")
        dim_bc = self.broadcast(idx0, "dim")
        dim_vec = b.add(dim_bc, self.iota(), stmt.var)
        self.push_scope()
        self.bind(stmt.var, ValueSlot(dim_vec, "int", VARYING))
        saved_fe, saved_mask = self.foreach, self.mask
        self.foreach = ForeachContext(stmt.var, idx0)
        self.mask = None
        self.gen_stmt(stmt.body)
        self.foreach, self.mask = saved_fe, saved_mask
        self.pop_scope()
        new_counter = b.add(c, b.i32(vl), "new_counter")
        new_counter.meta["foreach_role"] = "new_counter"
        new_counter.meta["foreach_id"] = loop_id
        b.store(new_counter, counter_var)
        more = b.icmp("slt", new_counter, aligned_end, "more_full")
        latch = b.condbr(more, full, partial_outer)
        latch.meta["foreach_role"] = "latch"
        latch.meta["foreach_id"] = loop_id
        latch.meta["foreach_new_counter"] = new_counter
        latch.meta["foreach_aligned_end"] = aligned_end
        latch.meta["foreach_vl"] = vl

        # Remainder: the last n % Vl iterations under a lane mask.
        b.position_at_end(partial_outer)
        have_extras = b.icmp("sgt", nextras, b.i32(0), "have_extras")
        b.condbr(have_extras, partial, reset)

        b.position_at_end(partial)
        idx0p = b.add(aligned_end, start_v, "partial_base_index")
        dim_bcp = self.broadcast(idx0p, "dim_partial")
        dim_vecp = b.add(dim_bcp, self.iota(), stmt.var)
        cnt_bc = self.broadcast(aligned_end, "cnt")
        cnt_vec = b.add(cnt_bc, self.iota(), "cntvec")
        n_bc = self.broadcast(n_total, "ntot")
        pmask = b.icmp("slt", cnt_vec, n_bc, "partial_mask")
        self.push_scope()
        self.bind(stmt.var, ValueSlot(dim_vecp, "int", VARYING))
        self.foreach = ForeachContext(stmt.var, idx0p)
        self.mask = pmask
        self.gen_stmt(stmt.body)
        self.foreach, self.mask = saved_fe, saved_mask
        self.pop_scope()
        b.br(reset)

        b.position_at_end(reset)

    # -- array access -------------------------------------------------------------------------

    def _linear_offset(self, expr: ast.Expr) -> ast.Expr | None:
        """If ``expr == dimvar + offset`` with a uniform ``offset``, return the
        offset AST (annotated uniform int); otherwise None."""
        if self.foreach is None:
            return None
        dim = self.foreach.var
        if isinstance(expr, ast.NameRef) and expr.name == dim:
            zero = ast.IntLit(value=0, line=expr.line)
            zero.ty, zero.vb = "int", UNIFORM
            return zero
        if isinstance(expr, ast.BinaryExpr) and expr.op in ("+", "-"):
            lhs_lin = (
                self._linear_offset(expr.lhs) if expr.lhs.vb == VARYING else None
            )
            if lhs_lin is not None and expr.rhs.vb == UNIFORM and expr.rhs.ty == "int":
                return self._combine(expr.op, lhs_lin, expr.rhs)
            if expr.op == "+" and expr.lhs.vb == UNIFORM and expr.lhs.ty == "int":
                rhs_lin = (
                    self._linear_offset(expr.rhs) if expr.rhs.vb == VARYING else None
                )
                if rhs_lin is not None:
                    return self._combine("+", rhs_lin, expr.lhs)
        return None

    @staticmethod
    def _combine(op: str, a: ast.Expr, b: ast.Expr) -> ast.Expr:
        if isinstance(a, ast.IntLit) and a.value == 0 and op == "+":
            return b
        node = ast.BinaryExpr(op=op, lhs=a, rhs=b, line=a.line)
        node.ty, node.vb = "int", UNIFORM
        return node

    def _elem_ir(self, ty: str) -> Type:
        return self.cg.scalar_ir(ty)

    def _mask_operand_x86(self, mask: Value, elem: Type) -> Value:
        """Convert an <N x i1> mask to the AVX sign-bit convention."""
        b = self.builder
        ivec = b.sext(mask, vector(I32, self.vl), "maski32")
        if elem.is_float():
            return b.bitcast(ivec, vector(F32, self.vl), "floatmask.i")
        return ivec

    def gen_index_load(self, expr: ast.IndexExpr) -> Value:
        slot = self.lookup(expr.base.name)
        assert isinstance(slot, ArraySlot)
        elem = self._elem_ir(slot.elem_type)
        b = self.builder

        if expr.vb == UNIFORM:
            idx = self.gen_expr(expr.index)
            p = b.gep(slot.pointer, idx)
            return b.load(p, expr.base.name + "_ld")

        offset = self._linear_offset(expr.index)
        vec_ty = vector(elem, self.vl)
        if offset is not None:
            base_idx = self._scalar_index(offset)
            p = b.gep(slot.pointer, base_idx, expr.base.name + "_ld_addr")
            if self.mask is None:
                vp = b.bitcast(p, pointer(vec_ty))
                return b.load(vp, expr.base.name + "_vld")
            return self._masked_load(p, elem, self.mask, expr.base.name)
        # Arbitrary varying index: gather.
        idx_vec = self.gen_varying_expr(expr.index)
        ptrs = b.gep(slot.pointer, idx_vec, expr.base.name + "_gather_addr")
        gather = self.intrinsic(self.target.gather_name(elem))
        passthru = zeroinitializer(vec_ty)
        return b.call(
            gather, [ptrs, self.current_mask(), passthru], expr.base.name + "_gather"
        )

    def gen_index_store(self, expr: ast.IndexExpr, value: Value) -> None:
        slot = self.lookup(expr.base.name)
        assert isinstance(slot, ArraySlot)
        elem = self._elem_ir(slot.elem_type)
        b = self.builder

        if expr.vb == UNIFORM:
            idx = self.gen_expr(expr.index)
            p = b.gep(slot.pointer, idx)
            b.store(value, p)
            return

        offset = self._linear_offset(expr.index)
        vec_ty = vector(elem, self.vl)
        if offset is not None:
            base_idx = self._scalar_index(offset)
            p = b.gep(slot.pointer, base_idx, expr.base.name + "_str_addr")
            if self.mask is None:
                vp = b.bitcast(p, pointer(vec_ty))
                b.store(value, vp)
                return
            self._masked_store(p, elem, self.mask, value)
            return
        idx_vec = self.gen_varying_expr(expr.index)
        ptrs = b.gep(slot.pointer, idx_vec, expr.base.name + "_scatter_addr")
        scatter = self.intrinsic(self.target.scatter_name(elem))
        b.call(scatter, [value, ptrs, self.current_mask()])

    def _scalar_index(self, offset: ast.Expr) -> Value:
        assert self.foreach is not None
        off_v = self.gen_expr(offset)
        if isinstance(off_v, ConstantInt) and off_v.value == 0:
            return self.foreach.idx0
        return self.builder.add(self.foreach.idx0, off_v)

    def _masked_load(self, p: Value, elem: Type, mask: Value, name: str) -> Value:
        b = self.builder
        if self.target.mask_style == "x86-sign":
            fn = self.intrinsic(self.target.masked_load_name(elem))
            i8p = b.bitcast(p, pointer(I8))
            m = self._mask_operand_x86(mask, elem)
            return b.call(fn, [i8p, m], name + "_mld")
        fn = self.intrinsic(self.target.masked_load_name(elem))
        vec_ty = vector(elem, self.vl)
        vp = b.bitcast(p, pointer(vec_ty))
        return b.call(fn, [vp, mask, zeroinitializer(vec_ty)], name + "_mld")

    def _masked_store(self, p: Value, elem: Type, mask: Value, value: Value) -> None:
        b = self.builder
        if self.target.mask_style == "x86-sign":
            fn = self.intrinsic(self.target.masked_store_name(elem))
            i8p = b.bitcast(p, pointer(I8))
            m = self._mask_operand_x86(mask, elem)
            b.call(fn, [i8p, m, value])
            return
        fn = self.intrinsic(self.target.masked_store_name(elem))
        vec_ty = vector(elem, self.vl)
        vp = b.bitcast(p, pointer(vec_ty))
        b.call(fn, [value, vp, mask])

    # -- expressions --------------------------------------------------------------------------------

    def gen_varying_expr(self, expr: ast.Expr) -> Value:
        value = self.gen_expr(expr)
        if expr.vb == UNIFORM:
            value = self.broadcast(value)
        return value

    def gen_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLit):
            return const_int(I32, expr.value)
        if isinstance(expr, ast.FloatLit):
            return ConstantFloat(F32, expr.value)
        if isinstance(expr, ast.BoolLit):
            return const_int(I1, int(expr.value))
        if isinstance(expr, ast.NameRef):
            return self.gen_name(expr)
        if isinstance(expr, ast.IndexExpr):
            return self.gen_index_load(expr)
        if isinstance(expr, ast.CastExpr):
            return self.gen_cast(expr)
        if isinstance(expr, ast.UnaryExpr):
            return self.gen_unary(expr)
        if isinstance(expr, ast.BinaryExpr):
            return self.gen_binary(expr)
        if isinstance(expr, ast.TernaryExpr):
            return self.gen_ternary(expr)
        if isinstance(expr, ast.CallExpr):
            return self.gen_call(expr)
        raise FrontendError(f"codegen: unknown expression {type(expr).__name__}")

    def gen_name(self, expr: ast.NameRef) -> Value:
        if expr.name == "programIndex":
            return self.iota()
        if expr.name == "programCount":
            return const_int(I32, self.vl)
        slot = self.lookup(expr.name)
        if isinstance(slot, ValueSlot):
            return slot.value
        if isinstance(slot, ArraySlot):
            return slot.pointer
        return self.builder.load(slot.addr, expr.name)

    def gen_cast(self, expr: ast.CastExpr) -> Value:
        value = self.gen_expr(expr.value)
        src, dst = expr.value.ty, expr.target
        if src == dst:
            return value
        b = self.builder
        varying = expr.value.vb == VARYING
        result_ty = self.cg.ir_type(dst, expr.value.vb)
        if src == "int" and dst == "float":
            return b.sitofp(value, result_ty)
        if src == "float" and dst == "int":
            return b.fptosi(value, result_ty)
        if src == "bool" and dst == "int":
            return b.zext(value, result_ty)
        if src == "int" and dst == "bool":
            zero = self._zero_like(expr.value)
            return b.icmp("ne", value, zero)
        if src == "bool" and dst == "float":
            as_int = b.zext(value, self.cg.ir_type("int", expr.value.vb))
            return b.sitofp(as_int, result_ty)
        if src == "float" and dst == "bool":
            zero = (
                splat(ConstantFloat(F32, 0.0), self.vl)
                if varying
                else ConstantFloat(F32, 0.0)
            )
            return b.fcmp("one", value, zero)
        raise FrontendError(f"cannot cast {src} to {dst}", expr.line)

    def _zero_like(self, expr: ast.Expr):
        scalar = self.cg.scalar_ir(expr.ty)
        if expr.vb == VARYING:
            return zeroinitializer(vector(scalar, self.vl))
        return zeroinitializer(scalar)

    def gen_unary(self, expr: ast.UnaryExpr) -> Value:
        v = self.gen_expr(expr.operand)
        b = self.builder
        if expr.op == "-":
            if expr.ty == "float":
                return b.fneg(v)
            return b.sub(self._zero_like(expr.operand), v)
        if expr.op == "!":
            ones = (
                self.all_true() if expr.operand.vb == VARYING else const_int(I1, 1)
            )
            return b.xor(v, ones)
        if expr.op == "~":
            minus1 = (
                splat(const_int(I32, -1), self.vl)
                if expr.operand.vb == VARYING
                else const_int(I32, -1)
            )
            return b.xor(v, minus1)
        raise FrontendError(f"codegen: unknown unary {expr.op}")

    _ICMP = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}
    _FCMP = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole", ">": "ogt", ">=": "oge"}
    _IBIN = {
        "+": "add",
        "-": "sub",
        "*": "mul",
        "/": "sdiv",
        "%": "srem",
        "<<": "shl",
        ">>": "ashr",
        "&": "and",
        "|": "or",
        "^": "xor",
    }
    _FBIN = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

    def gen_binary(self, expr: ast.BinaryExpr) -> Value:
        b = self.builder
        varying = expr.vb == VARYING or (
            expr.ty == "bool" and VARYING in (expr.lhs.vb, expr.rhs.vb)
        )
        if varying:
            lhs = self.gen_varying_expr(expr.lhs)
            rhs = self.gen_varying_expr(expr.rhs)
        else:
            lhs = self.gen_expr(expr.lhs)
            rhs = self.gen_expr(expr.rhs)
        op = expr.op
        operand_ty = expr.lhs.ty
        if op in ("&&", "||"):
            return b.and_(lhs, rhs) if op == "&&" else b.or_(lhs, rhs)
        if op in self._ICMP and operand_ty in ("int", "bool"):
            return b.icmp(self._ICMP[op], lhs, rhs)
        if op in self._FCMP and operand_ty == "float" and expr.ty == "bool":
            return b.fcmp(self._FCMP[op], lhs, rhs)
        if operand_ty == "float":
            return b.binop(self._FBIN[op], lhs, rhs)
        if operand_ty == "bool" and op in ("&", "|", "^"):
            return b.binop(self._IBIN[op], lhs, rhs)
        return b.binop(self._IBIN[op], lhs, rhs)

    def gen_ternary(self, expr: ast.TernaryExpr) -> Value:
        b = self.builder
        cond = self.gen_expr(expr.cond)
        if expr.vb == VARYING:
            on_true = self.gen_varying_expr(expr.on_true)
            on_false = self.gen_varying_expr(expr.on_false)
            if expr.cond.vb == UNIFORM:
                # Scalar i1 condition selecting between whole vectors.
                return b.select(cond, on_true, on_false)
            return b.select(cond, on_true, on_false)
        return b.select(cond, self.gen_expr(expr.on_true), self.gen_expr(expr.on_false))

    # -- calls ------------------------------------------------------------------------------------------

    _MATH_1 = {"sqrt", "exp", "log", "sin", "cos", "floor", "ceil"}

    def gen_call(self, expr: ast.CallExpr) -> Value:
        b = self.builder
        name = expr.name
        if name in self._MATH_1:
            arg = self.gen_expr(expr.args[0])
            varying = expr.args[0].vb == VARYING
            fn = self.intrinsic(self.target.math_name(name, F32, varying))
            return b.call(fn, [arg], name)
        if name == "abs":
            arg = self.gen_expr(expr.args[0])
            varying = expr.args[0].vb == VARYING
            if expr.ty == "float":
                fn = self.intrinsic(self.target.math_name("fabs", F32, varying))
                return b.call(fn, [arg], "abs")
            zero = self._zero_like(expr.args[0])
            neg = b.sub(zero, arg)
            is_neg = b.icmp("slt", arg, zero)
            return b.select(is_neg, neg, arg, "abs")
        if name == "pow":
            a0 = self.gen_expr(expr.args[0])
            a1 = self.gen_expr(expr.args[1])
            varying = expr.vb == VARYING
            if varying:
                if expr.args[0].vb == UNIFORM:
                    a0 = self.broadcast(a0)
                if expr.args[1].vb == UNIFORM:
                    a1 = self.broadcast(a1)
            fn = self.intrinsic(self.target.math_name("pow", F32, varying))
            return b.call(fn, [a0, a1], "pow")
        if name in ("min", "max"):
            a0 = self.gen_expr(expr.args[0])
            a1 = self.gen_expr(expr.args[1])
            varying = expr.vb == VARYING
            if varying:
                if expr.args[0].vb == UNIFORM:
                    a0 = self.broadcast(a0)
                if expr.args[1].vb == UNIFORM:
                    a1 = self.broadcast(a1)
            if expr.ty == "float":
                op = "minnum" if name == "min" else "maxnum"
                fn = self.intrinsic(self.target.math_name(op, F32, varying))
                return b.call(fn, [a0, a1], name)
            pred = "slt" if name == "min" else "sgt"
            cmp = b.icmp(pred, a0, a1)
            return b.select(cmp, a0, a1, name)
        if name == "reduce_add":
            arg = self.gen_expr(expr.args[0])
            if expr.ty == "float":
                fn = self.intrinsic(self.target.reduce_name("fadd", F32))
                return b.call(fn, [ConstantFloat(F32, 0.0), arg], "reduce_add")
            fn = self.intrinsic(self.target.reduce_name("add", I32))
            return b.call(fn, [arg], "reduce_add")
        if name in ("reduce_min", "reduce_max"):
            arg = self.gen_expr(expr.args[0])
            if expr.ty == "float":
                op = "fmin" if name == "reduce_min" else "fmax"
                fn = self.intrinsic(self.target.reduce_name(op, F32))
            else:
                op = "smin" if name == "reduce_min" else "smax"
                fn = self.intrinsic(self.target.reduce_name(op, I32))
            return b.call(fn, [arg], name)
        if name in ("any", "all"):
            arg = self.gen_expr(expr.args[0])
            op = "or" if name == "any" else "and"
            fn = self.intrinsic(self.target.mask_reduce_name(op))
            return b.call(fn, [arg], name)

        # User function call.
        callee = self.cg.fn_map[name]
        sig_params = self.cg.program.functions
        decl = next(f for f in sig_params if f.name == name)
        args: list[Value] = []
        for arg_expr, param in zip(expr.args, decl.params):
            if param.is_array:
                slot = self.lookup(arg_expr.base.name if isinstance(arg_expr, ast.IndexExpr) else arg_expr.name)  # type: ignore[union-attr]
                assert isinstance(slot, ArraySlot)
                args.append(slot.pointer)
                continue
            v = self.gen_expr(arg_expr)
            if param.qualifier == VARYING and arg_expr.vb == UNIFORM:
                v = self.broadcast(v)
            args.append(v)
        return b.call(callee, args, name if expr.ty != "void" else "")

    def _any(self, mask: Value) -> Value:
        fn = self.intrinsic(self.target.mask_reduce_name("or"))
        return self.builder.call(fn, [mask], "any")


def generate_module(program: ast.Program, target: Target, name: str = "miniispc") -> Module:
    return CodeGenerator(program, target, name).generate()
