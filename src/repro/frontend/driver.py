"""Convenience pipeline: MiniISPC source text → verified, optimized IR.

This is the equivalent of running ``ispc -O3 --emit-llvm`` in the paper's
workflow (Fig. 1's "Compiler Frontend" box): parse, type-check, vectorize,
then run the mid-end pipeline so the module is in the pruned-SSA shape that
VULFI's site selector analyses.
"""

from __future__ import annotations

from ..ir.module import Module
from ..ir.verifier import verify_module
from ..passes.manager import optimize
from .codegen import generate_module
from .parser import parse_source
from .sema import analyze
from .target import Target, get_target


def compile_source(
    source: str,
    target: Target | str = "avx",
    name: str = "miniispc",
    optimize_ir: bool = True,
    verify: bool = True,
    foreach_detectors: bool = False,
    uniform_detectors: bool = False,
) -> Module:
    """Compile MiniISPC ``source`` for ``target`` ('avx' or 'sse').

    ``foreach_detectors`` / ``uniform_detectors`` insert the §III error
    detectors between code generation and optimization — the point where
    the codegen's invariant metadata is authoritative.
    """
    if isinstance(target, str):
        target = get_target(target)
    program = analyze(parse_source(source))
    module = generate_module(program, target, name)
    if verify:
        verify_module(module)
    if foreach_detectors:
        from ..detectors.foreach_invariants import insert_foreach_detectors

        insert_foreach_detectors(module)
        if verify:
            verify_module(module)
    if uniform_detectors:
        from ..detectors.uniform_broadcast import insert_uniform_broadcast_detectors

        insert_uniform_broadcast_detectors(module)
        if verify:
            verify_module(module)
    if optimize_ir:
        optimize(module)
        if verify:
            verify_module(module)
    return module
