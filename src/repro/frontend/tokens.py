"""Token definitions for MiniISPC."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset(
    {
        "export",
        "uniform",
        "varying",
        "void",
        "int",
        "float",
        "bool",
        "double",
        "if",
        "else",
        "while",
        "for",
        "foreach",
        "return",
        "break",
        "continue",
        "true",
        "false",
    }
)

# Multi-character operators, longest first (the lexer tries these in order).
OPERATORS = (
    "...",
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "<<",
    ">>",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ";",
    ",",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'keyword' | 'int' | 'float' | 'op' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"
