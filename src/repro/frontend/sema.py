"""Semantic analysis for MiniISPC: types and uniform/varying qualifiers.

Annotates every expression node with ``ty`` (``int``/``float``/``bool``,
or ``T[]`` for array parameters) and ``vb`` (``uniform``/``varying``), checks
ISPC's qualifier rules, and inserts implicit ``int → float`` casts so the
code generator never has to coerce.

Key rules enforced (all mirror ISPC semantics, some conservatively):

* a varying value cannot be assigned to a uniform variable;
* a varying-indexed store must store a varying value (gather/scatter lane
  discipline); a uniform-indexed store must store a uniform value;
* ``foreach`` may not appear inside varying control flow or another foreach;
* ``break``/``continue``/``return`` may not appear under varying control flow;
* calls to user functions may not appear under varying control flow (the
  execution mask is not threaded through calls in this subset);
* the foreach dimension variable is read-only inside the loop body.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SemaError
from . import ast
from .ast import UNIFORM, VARYING

_NUMERIC = ("int", "float")
_SCALARS = ("int", "float", "bool")


@dataclass
class Symbol:
    qualifier: str
    type: str  # 'int' | 'float' | 'bool', or element type for arrays
    is_array: bool = False
    read_only: bool = False


@dataclass
class FunctionSignature:
    name: str
    return_qualifier: str
    return_type: str
    params: list[ast.Param]


#: Builtin scalar math functions: name -> (arg types accepted, result rule)
_MATH_1 = {"sqrt", "exp", "log", "sin", "cos", "floor", "ceil"}
_MATH_2 = {"pow", "atan2"}
_MINMAX = {"min", "max"}
_REDUCE = {"reduce_add", "reduce_min", "reduce_max"}
_MASKOPS = {"any", "all"}

BUILTIN_NAMES = _MATH_1 | _MATH_2 | _MINMAX | _REDUCE | _MASKOPS | {"abs"}
BUILTIN_VALUES = {"programIndex", "programCount"}


def _join_vb(*vbs: str) -> str:
    return VARYING if VARYING in vbs else UNIFORM


class SemanticAnalyzer:
    def __init__(self, program: ast.Program):
        self.program = program
        self.functions: dict[str, FunctionSignature] = {}
        self.scopes: list[dict[str, Symbol]] = []
        self.current: FunctionSignature | None = None
        # Control-context tracking.
        self.varying_depth = 0
        self.foreach_depth = 0
        self.uniform_loop_depth = 0
        # Loop depth *at entry of* innermost uniform loop, to validate break.
        self._loop_varying_depths: list[int] = []

    # -- scope helpers ----------------------------------------------------------

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, symbol: Symbol, line: int) -> None:
        if name in self.scopes[-1]:
            raise SemaError(f"redeclaration of {name!r}", line)
        if name in BUILTIN_VALUES or name in BUILTIN_NAMES:
            raise SemaError(f"{name!r} shadows a builtin", line)
        self.scopes[-1][name] = symbol

    def lookup(self, name: str, line: int) -> Symbol:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise SemaError(f"use of undeclared identifier {name!r}", line)

    # -- entry point -------------------------------------------------------------

    def analyze(self) -> ast.Program:
        for fn in self.program.functions:
            if fn.name in self.functions:
                raise SemaError(f"redefinition of function {fn.name!r}", fn.line)
            if fn.name in BUILTIN_NAMES or fn.name in BUILTIN_VALUES:
                raise SemaError(f"function {fn.name!r} shadows a builtin", fn.line)
            if fn.return_type == "double":
                raise SemaError("double is not supported in MiniISPC", fn.line)
            self.functions[fn.name] = FunctionSignature(
                fn.name, fn.return_qualifier, fn.return_type, fn.params
            )
        for fn in self.program.functions:
            self._analyze_function(fn)
        return self.program

    def _analyze_function(self, fn: ast.FuncDecl) -> None:
        self.current = self.functions[fn.name]
        self.varying_depth = 0
        self.foreach_depth = 0
        self.push_scope()
        for p in fn.params:
            if p.type == "double":
                raise SemaError("double is not supported in MiniISPC", p.line)
            if p.is_array and p.qualifier != UNIFORM:
                raise SemaError(
                    f"array parameter {p.name!r} must be uniform", p.line
                )
            if not p.is_array and p.qualifier == VARYING and fn.export:
                raise SemaError(
                    f"export function parameter {p.name!r} must be uniform "
                    "(called from scalar host code)",
                    p.line,
                )
            self.declare(
                p.name,
                Symbol(p.qualifier, p.type, is_array=p.is_array, read_only=p.is_array),
                p.line,
            )
        self._stmt(fn.body)
        self.pop_scope()
        self.current = None

    # -- statements -----------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.push_scope()
            for s in stmt.statements:
                self._stmt(s)
            self.pop_scope()
        elif isinstance(stmt, ast.VarDecl):
            self._vardecl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._for(stmt)
        elif isinstance(stmt, ast.ForeachStmt):
            self._foreach(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self._return(stmt)
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            kw = "break" if isinstance(stmt, ast.BreakStmt) else "continue"
            if not self._loop_varying_depths:
                raise SemaError(f"{kw} outside a loop", stmt.line)
            if self.varying_depth != self._loop_varying_depths[-1]:
                raise SemaError(f"{kw} under varying control flow", stmt.line)
        else:  # pragma: no cover
            raise SemaError(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _vardecl(self, stmt: ast.VarDecl) -> None:
        if stmt.type == "double":
            raise SemaError("double is not supported in MiniISPC", stmt.line)
        if stmt.qualifier == UNIFORM and self.varying_depth > 0 and stmt.init is not None:
            # Declaring+initializing a uniform under varying control is fine
            # only if the initializer is uniform (checked below anyway).
            pass
        if stmt.init is not None:
            self._expr(stmt.init)
            stmt.init = self._coerce(stmt.init, stmt.type, stmt.line)
            if stmt.qualifier == UNIFORM and stmt.init.vb == VARYING:
                raise SemaError(
                    f"cannot initialize uniform {stmt.name!r} with a varying value",
                    stmt.line,
                )
        else:
            raise SemaError(
                f"variable {stmt.name!r} must be initialized (MiniISPC has no "
                "default initialization)",
                stmt.line,
            )
        self.declare(stmt.name, Symbol(stmt.qualifier, stmt.type), stmt.line)

    def _assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        self._expr(stmt.value)
        if isinstance(target, ast.NameRef):
            sym = self.lookup(target.name, stmt.line)
            if sym.is_array:
                raise SemaError(f"cannot assign to array {target.name!r}", stmt.line)
            if sym.read_only:
                raise SemaError(f"{target.name!r} is read-only here", stmt.line)
            target.ty = sym.type
            target.vb = sym.qualifier
            stmt.value = self._coerce(stmt.value, sym.type, stmt.line)
            if sym.qualifier == UNIFORM:
                if stmt.value.vb == VARYING:
                    raise SemaError(
                        f"cannot assign a varying value to uniform {target.name!r}",
                        stmt.line,
                    )
                if self.varying_depth > 0:
                    raise SemaError(
                        f"cannot assign to uniform {target.name!r} under varying "
                        "control flow",
                        stmt.line,
                    )
        elif isinstance(target, ast.IndexExpr):
            self._index(target)
            stmt.value = self._coerce(stmt.value, target.ty, stmt.line)
            if target.vb == UNIFORM and stmt.value.vb == VARYING:
                raise SemaError(
                    "cannot store a varying value through a uniform index "
                    "(all lanes would collide)",
                    stmt.line,
                )
            if target.vb == UNIFORM and self.varying_depth > 0:
                raise SemaError(
                    "cannot store through a uniform index under varying control flow",
                    stmt.line,
                )
        else:
            raise SemaError("assignment target is not assignable", stmt.line)
        if stmt.op != "=":
            base_op = stmt.op[0]
            if target.ty == "bool":
                raise SemaError(f"{stmt.op} not defined for bool", stmt.line)
            if base_op == "%" and target.ty != "int":
                raise SemaError("% requires int operands", stmt.line)

    def _if(self, stmt: ast.IfStmt) -> None:
        self._expr(stmt.cond)
        if stmt.cond.ty != "bool":
            raise SemaError("if condition must be bool", stmt.line)
        if stmt.cond.vb == VARYING:
            self.varying_depth += 1
            self._stmt(stmt.then_body)
            if stmt.else_body is not None:
                self._stmt(stmt.else_body)
            self.varying_depth -= 1
        else:
            self._stmt(stmt.then_body)
            if stmt.else_body is not None:
                self._stmt(stmt.else_body)

    def _while(self, stmt: ast.WhileStmt) -> None:
        self._expr(stmt.cond)
        if stmt.cond.ty != "bool":
            raise SemaError("while condition must be bool", stmt.line)
        if stmt.cond.vb == VARYING:
            self.varying_depth += 1
            self._stmt(stmt.body)
            self.varying_depth -= 1
        else:
            self._loop_varying_depths.append(self.varying_depth)
            self._stmt(stmt.body)
            self._loop_varying_depths.pop()

    def _for(self, stmt: ast.ForStmt) -> None:
        self.push_scope()
        if stmt.init is not None:
            self._stmt(stmt.init)
        if stmt.cond is not None:
            self._expr(stmt.cond)
            if stmt.cond.ty != "bool":
                raise SemaError("for condition must be bool", stmt.line)
            if stmt.cond.vb == VARYING:
                raise SemaError(
                    "for condition must be uniform (use foreach or a varying "
                    "while for per-lane loops)",
                    stmt.line,
                )
        self._loop_varying_depths.append(self.varying_depth)
        self._stmt(stmt.body)
        if stmt.step is not None:
            self._stmt(stmt.step)
        self._loop_varying_depths.pop()
        self.pop_scope()

    def _foreach(self, stmt: ast.ForeachStmt) -> None:
        if self.varying_depth > 0:
            raise SemaError("foreach under varying control flow", stmt.line)
        if self.foreach_depth > 0:
            raise SemaError("nested foreach is not supported", stmt.line)
        dims = stmt.dims or [ast.ForeachDim(stmt.var, stmt.start, stmt.end)]
        seen_vars: set[str] = set()
        for dim in dims:
            if dim.var in seen_vars:
                raise SemaError(
                    f"duplicate foreach dimension variable {dim.var!r}", stmt.line
                )
            seen_vars.add(dim.var)
            for bound, label in ((dim.start, "start"), (dim.end, "end")):
                self._expr(bound)
                if bound.ty != "int" or bound.vb != UNIFORM:
                    raise SemaError(
                        f"foreach {label} bound must be a uniform int", stmt.line
                    )
        self.push_scope()
        # Outer dimensions lower to uniform loops (one value for all lanes);
        # only the innermost dimension distributes across lanes.
        for dim in dims[:-1]:
            self.declare(dim.var, Symbol(UNIFORM, "int", read_only=True), stmt.line)
        self.declare(
            dims[-1].var, Symbol(VARYING, "int", read_only=True), stmt.line
        )
        self.foreach_depth += 1
        self._stmt(stmt.body)
        self.foreach_depth -= 1
        self.pop_scope()

    def _return(self, stmt: ast.ReturnStmt) -> None:
        assert self.current is not None
        if self.varying_depth > 0:
            raise SemaError("return under varying control flow", stmt.line)
        if self.foreach_depth > 0:
            raise SemaError("return inside foreach", stmt.line)
        if self.current.return_type == "void":
            if stmt.value is not None:
                raise SemaError("void function returns a value", stmt.line)
            return
        if stmt.value is None:
            raise SemaError("non-void function must return a value", stmt.line)
        self._expr(stmt.value)
        stmt.value = self._coerce(stmt.value, self.current.return_type, stmt.line)
        if self.current.return_qualifier == UNIFORM and stmt.value.vb == VARYING:
            raise SemaError("returning a varying value from a uniform function", stmt.line)

    # -- expressions ----------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLit):
            expr.ty, expr.vb = "int", UNIFORM
        elif isinstance(expr, ast.FloatLit):
            expr.ty, expr.vb = "float", UNIFORM
        elif isinstance(expr, ast.BoolLit):
            expr.ty, expr.vb = "bool", UNIFORM
        elif isinstance(expr, ast.NameRef):
            self._name(expr)
        elif isinstance(expr, ast.IndexExpr):
            self._index(expr)
        elif isinstance(expr, ast.CastExpr):
            self._expr(expr.value)
            if expr.value.ty not in _SCALARS:
                raise SemaError(f"cannot cast {expr.value.ty}", expr.line)
            expr.ty, expr.vb = expr.target, expr.value.vb
        elif isinstance(expr, ast.UnaryExpr):
            self._unary(expr)
        elif isinstance(expr, ast.BinaryExpr):
            self._binary(expr)
        elif isinstance(expr, ast.TernaryExpr):
            self._ternary(expr)
        elif isinstance(expr, ast.CallExpr):
            self._call(expr)
        else:  # pragma: no cover
            raise SemaError(f"unknown expression {type(expr).__name__}", expr.line)

    def _name(self, expr: ast.NameRef) -> None:
        if expr.name == "programIndex":
            expr.ty, expr.vb = "int", VARYING
            return
        if expr.name == "programCount":
            expr.ty, expr.vb = "int", UNIFORM
            return
        sym = self.lookup(expr.name, expr.line)
        expr.ty = f"{sym.type}[]" if sym.is_array else sym.type
        expr.vb = sym.qualifier

    def _index(self, expr: ast.IndexExpr) -> None:
        self._name(expr.base)
        if not expr.base.ty.endswith("[]"):
            raise SemaError(f"{expr.base.name!r} is not an array", expr.line)
        self._expr(expr.index)
        if expr.index.ty != "int":
            raise SemaError("array index must be an int", expr.line)
        expr.ty = expr.base.ty[:-2]
        expr.vb = expr.index.vb

    def _unary(self, expr: ast.UnaryExpr) -> None:
        self._expr(expr.operand)
        op = expr.op
        ty = expr.operand.ty
        if op == "-":
            if ty not in _NUMERIC:
                raise SemaError("unary - requires a numeric operand", expr.line)
        elif op == "!":
            if ty != "bool":
                raise SemaError("! requires a bool operand", expr.line)
        elif op == "~":
            if ty != "int":
                raise SemaError("~ requires an int operand", expr.line)
        expr.ty, expr.vb = ty, expr.operand.vb

    _INT_ONLY_OPS = {"%", "<<", ">>", "&", "|", "^"}
    _CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}
    _LOGICAL_OPS = {"&&", "||"}

    def _binary(self, expr: ast.BinaryExpr) -> None:
        self._expr(expr.lhs)
        self._expr(expr.rhs)
        op = expr.op
        lt, rt = expr.lhs.ty, expr.rhs.ty
        vb = _join_vb(expr.lhs.vb, expr.rhs.vb)
        if op in self._LOGICAL_OPS:
            if lt != "bool" or rt != "bool":
                raise SemaError(f"{op} requires bool operands", expr.line)
            expr.ty, expr.vb = "bool", vb
            return
        if op in self._INT_ONLY_OPS:
            if lt == "bool" and op in ("&", "|", "^") and rt == "bool":
                expr.ty, expr.vb = "bool", vb
                return
            if lt != "int" or rt != "int":
                raise SemaError(f"{op} requires int operands", expr.line)
            expr.ty, expr.vb = "int", vb
            return
        # Arithmetic / comparisons with int->float promotion.
        if lt == "bool" or rt == "bool":
            if op in ("==", "!=") and lt == rt == "bool":
                expr.ty, expr.vb = "bool", vb
                return
            raise SemaError(f"{op} not defined for bool", expr.line)
        common = "float" if "float" in (lt, rt) else "int"
        expr.lhs = self._coerce(expr.lhs, common, expr.line)
        expr.rhs = self._coerce(expr.rhs, common, expr.line)
        if op in self._CMP_OPS:
            expr.ty = "bool"
        else:
            expr.ty = common
        expr.vb = vb

    def _ternary(self, expr: ast.TernaryExpr) -> None:
        self._expr(expr.cond)
        if expr.cond.ty != "bool":
            raise SemaError("?: condition must be bool", expr.line)
        self._expr(expr.on_true)
        self._expr(expr.on_false)
        common = (
            "float"
            if "float" in (expr.on_true.ty, expr.on_false.ty)
            else expr.on_true.ty
        )
        expr.on_true = self._coerce(expr.on_true, common, expr.line)
        expr.on_false = self._coerce(expr.on_false, common, expr.line)
        if expr.on_true.ty != expr.on_false.ty:
            raise SemaError("?: arms have mismatched types", expr.line)
        expr.ty = common
        expr.vb = _join_vb(expr.cond.vb, expr.on_true.vb, expr.on_false.vb)
        # A varying condition forces a varying blend even with uniform arms.
        if expr.cond.vb == VARYING:
            expr.vb = VARYING

    def _call(self, expr: ast.CallExpr) -> None:
        name = expr.name
        for a in expr.args:
            self._expr(a)

        if name in _MATH_1:
            self._expect_args(expr, 1)
            expr.args[0] = self._coerce(expr.args[0], "float", expr.line)
            expr.ty, expr.vb = "float", expr.args[0].vb
            return
        if name == "abs":
            self._expect_args(expr, 1)
            if expr.args[0].ty not in _NUMERIC:
                raise SemaError("abs requires a numeric argument", expr.line)
            expr.ty, expr.vb = expr.args[0].ty, expr.args[0].vb
            return
        if name in _MATH_2:
            self._expect_args(expr, 2)
            expr.args[0] = self._coerce(expr.args[0], "float", expr.line)
            expr.args[1] = self._coerce(expr.args[1], "float", expr.line)
            expr.ty = "float"
            expr.vb = _join_vb(expr.args[0].vb, expr.args[1].vb)
            return
        if name in _MINMAX:
            self._expect_args(expr, 2)
            common = "float" if "float" in (expr.args[0].ty, expr.args[1].ty) else "int"
            expr.args[0] = self._coerce(expr.args[0], common, expr.line)
            expr.args[1] = self._coerce(expr.args[1], common, expr.line)
            expr.ty = common
            expr.vb = _join_vb(expr.args[0].vb, expr.args[1].vb)
            return
        if name in _REDUCE:
            self._expect_args(expr, 1)
            if expr.args[0].vb != VARYING or expr.args[0].ty not in _NUMERIC:
                raise SemaError(f"{name} requires a varying numeric argument", expr.line)
            expr.ty, expr.vb = expr.args[0].ty, UNIFORM
            return
        if name in _MASKOPS:
            self._expect_args(expr, 1)
            if expr.args[0].vb != VARYING or expr.args[0].ty != "bool":
                raise SemaError(f"{name} requires a varying bool argument", expr.line)
            expr.ty, expr.vb = "bool", UNIFORM
            return

        sig = self.functions.get(name)
        if sig is None:
            raise SemaError(f"call to unknown function {name!r}", expr.line)
        if self.varying_depth > 0:
            raise SemaError(
                f"call to {name!r} under varying control flow is not supported",
                expr.line,
            )
        if len(expr.args) != len(sig.params):
            raise SemaError(
                f"{name} expects {len(sig.params)} arguments, got {len(expr.args)}",
                expr.line,
            )
        for i, (arg, param) in enumerate(zip(expr.args, sig.params)):
            if param.is_array:
                if arg.ty != f"{param.type}[]":
                    raise SemaError(
                        f"argument {i} of {name} must be a {param.type} array",
                        expr.line,
                    )
                continue
            expr.args[i] = self._coerce(expr.args[i], param.type, expr.line)
            if param.qualifier == UNIFORM and expr.args[i].vb == VARYING:
                raise SemaError(
                    f"argument {i} of {name} must be uniform", expr.line
                )
        expr.ty = sig.return_type
        expr.vb = sig.return_qualifier

    @staticmethod
    def _expect_args(expr: ast.CallExpr, n: int) -> None:
        if len(expr.args) != n:
            raise SemaError(f"{expr.name} expects {n} argument(s)", expr.line)

    # -- conversions -----------------------------------------------------------------

    @staticmethod
    def _coerce(expr: ast.Expr, target: str, line: int) -> ast.Expr:
        """Insert an implicit int→float cast when needed; reject narrowing."""
        if expr.ty == target:
            return expr
        if expr.ty == "int" and target == "float":
            cast = ast.CastExpr(target="float", value=expr, line=line)
            cast.ty, cast.vb = "float", expr.vb
            return cast
        raise SemaError(f"cannot implicitly convert {expr.ty} to {target}", line)


def analyze(program: ast.Program) -> ast.Program:
    return SemanticAnalyzer(program).analyze()
