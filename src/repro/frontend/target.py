"""Target descriptors: the AVX/SSE axis of the paper's evaluation.

At IR level the difference between the two instruction sets is (a) the
vector length ``Vl`` (8 × 32-bit lanes for AVX, 4 for SSE) and (b) how
masked memory operations are expressed:

* **AVX** uses the x86 intrinsics of paper Fig. 5
  (``llvm.x86.avx.maskload.ps.256`` / ``llvm.x86.avx2.maskload.d.256`` ...),
  whose execution masks are float/i32 vectors interpreted by *sign bit*;
* **SSE** (SSE4 has no masked moves) uses the generic ``llvm.masked.*``
  intrinsics with ``<4 x i1>`` masks — the blend-based lowering ISPC emits
  for that ISA, expressed at IR level.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FrontendError
from ..ir.types import FloatType, IntType, Type


@dataclass(frozen=True)
class Target:
    name: str
    vector_width: int  # Vl for 32-bit lanes
    mask_style: str  # 'x86-sign' | 'i1'

    def masked_load_name(self, elem: Type) -> str:
        if self.mask_style == "x86-sign":
            if isinstance(elem, FloatType) and elem.bits == 32:
                return (
                    "llvm.x86.avx.maskload.ps.256"
                    if self.vector_width == 8
                    else "llvm.x86.avx.maskload.ps"
                )
            if isinstance(elem, IntType) and elem.bits == 32:
                return (
                    "llvm.x86.avx2.maskload.d.256"
                    if self.vector_width == 8
                    else "llvm.x86.avx2.maskload.d"
                )
            raise FrontendError(f"no {self.name} masked load for element {elem}")
        return f"llvm.masked.load.{self._suffix(elem)}"

    def masked_store_name(self, elem: Type) -> str:
        if self.mask_style == "x86-sign":
            if isinstance(elem, FloatType) and elem.bits == 32:
                return (
                    "llvm.x86.avx.maskstore.ps.256"
                    if self.vector_width == 8
                    else "llvm.x86.avx.maskstore.ps"
                )
            if isinstance(elem, IntType) and elem.bits == 32:
                return (
                    "llvm.x86.avx2.maskstore.d.256"
                    if self.vector_width == 8
                    else "llvm.x86.avx2.maskstore.d"
                )
            raise FrontendError(f"no {self.name} masked store for element {elem}")
        return f"llvm.masked.store.{self._suffix(elem)}"

    def gather_name(self, elem: Type) -> str:
        return f"llvm.masked.gather.{self._suffix(elem)}"

    def scatter_name(self, elem: Type) -> str:
        return f"llvm.masked.scatter.{self._suffix(elem)}"

    def math_name(self, op: str, elem: Type, varying: bool) -> str:
        if varying:
            return f"llvm.{op}.{self._suffix(elem)}"
        kind = "f" if isinstance(elem, FloatType) else "i"
        return f"llvm.{op}.{kind}{elem.bits}"

    def reduce_name(self, op: str, elem: Type) -> str:
        return f"llvm.vector.reduce.{op}.{self._suffix(elem)}"

    def mask_reduce_name(self, op: str) -> str:
        return f"llvm.vector.reduce.{op}.v{self.vector_width}i1"

    def _suffix(self, elem: Type) -> str:
        kind = "f" if isinstance(elem, FloatType) else "i"
        return f"v{self.vector_width}{kind}{elem.bits}"


AVX = Target("avx", 8, "x86-sign")
SSE = Target("sse", 4, "i1")
#: Extension beyond the paper's AVX/SSE axis (§I promises the injector
#: "could be easily extended to support multiple vector formats"): an
#: AVX-512-style target — 16 x 32-bit lanes with native predicate masks,
#: which at IR level are exactly the generic ``llvm.masked.*`` i1 form.
AVX512 = Target("avx512", 16, "i1")

TARGETS: dict[str, Target] = {"avx": AVX, "sse": SSE, "avx512": AVX512}


def get_target(name: str) -> Target:
    try:
        return TARGETS[name.lower()]
    except KeyError:
        raise FrontendError(f"unknown target {name!r} (expected avx or sse)") from None
