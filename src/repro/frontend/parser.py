"""Recursive-descent parser for MiniISPC.

Grammar (C-like, ISPC-flavoured):

    program   := function*
    function  := 'export'? qual? type IDENT '(' params? ')' block
    param     := qual? type IDENT ('[' ']')?
    block     := '{' stmt* '}'
    stmt      := vardecl | ifstmt | whilestmt | forstmt | foreachstmt
               | returnstmt | breakstmt | continuestmt | block
               | assign-or-expr ';'
    vardecl   := qual? type IDENT ('=' expr)? (',' IDENT ('=' expr)?)* ';'
    foreach   := 'foreach' '(' dim (',' dim)* ')' stmt
    dim       := IDENT '=' expr '...' expr
    expr      := ternary; usual C precedence below that.

Casts are function-style: ``float(x)``, ``int(x)``.
"""

from __future__ import annotations

from ..errors import ParseError
from . import ast
from .lexer import tokenize
from .tokens import Token

_TYPE_NAMES = {"void", "int", "float", "bool", "double"}
_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%="}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing --------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, got {tok.text!r}", tok.line, tok.col)
        return tok

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    def at(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    # -- program / functions -----------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions = []
        while not self.at("eof"):
            functions.append(self.parse_function())
        return ast.Program(functions=functions)

    def parse_function(self) -> ast.FuncDecl:
        line = self.peek().line
        export = bool(self.accept("keyword", "export"))
        # Like ISPC, an unqualified return type is varying by default;
        # kernels that reduce to a scalar declare `uniform T` explicitly.
        qual = "varying"
        if self.at("keyword", "uniform") or self.at("keyword", "varying"):
            qual = self.next().text
        rtype = self.expect("keyword").text
        if rtype not in _TYPE_NAMES:
            raise ParseError(f"expected a return type, got {rtype!r}", line)
        name = self.expect("ident").text
        self.expect("op", "(")
        params: list[ast.Param] = []
        if not self.accept("op", ")"):
            while True:
                params.append(self.parse_param())
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        body = self.parse_block()
        return ast.FuncDecl(
            name=name,
            return_qualifier=qual,
            return_type=rtype,
            params=params,
            body=body,
            export=export,
            line=line,
        )

    def parse_param(self) -> ast.Param:
        line = self.peek().line
        qual = "varying"
        if self.at("keyword", "uniform") or self.at("keyword", "varying"):
            qual = self.next().text
        ptype = self.expect("keyword").text
        if ptype not in _TYPE_NAMES or ptype == "void":
            raise ParseError(f"bad parameter type {ptype!r}", line)
        name = self.expect("ident").text
        is_array = False
        if self.accept("op", "["):
            self.expect("op", "]")
            is_array = True
        return ast.Param(qualifier=qual, type=ptype, name=name, is_array=is_array, line=line)

    # -- statements -----------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        line = self.expect("op", "{").line
        stmts: list[ast.Stmt] = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_statement())
        return ast.Block(statements=stmts, line=line)

    def _at_decl_start(self) -> bool:
        tok = self.peek()
        if tok.kind != "keyword":
            return False
        if tok.text in ("uniform", "varying"):
            return True
        return tok.text in ("int", "float", "bool", "double")

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.kind == "op" and tok.text == "{":
            return self.parse_block()
        if self._at_decl_start():
            return self.parse_vardecl()
        if tok.kind == "keyword":
            if tok.text == "if":
                return self.parse_if()
            if tok.text == "while":
                return self.parse_while()
            if tok.text == "for":
                return self.parse_for()
            if tok.text == "foreach":
                return self.parse_foreach()
            if tok.text == "return":
                self.next()
                value = None
                if not self.at("op", ";"):
                    value = self.parse_expr()
                self.expect("op", ";")
                return ast.ReturnStmt(value=value, line=tok.line)
            if tok.text == "break":
                self.next()
                self.expect("op", ";")
                return ast.BreakStmt(line=tok.line)
            if tok.text == "continue":
                self.next()
                self.expect("op", ";")
                return ast.ContinueStmt(line=tok.line)
        stmt = self.parse_assign_or_expr()
        self.expect("op", ";")
        return stmt

    def parse_vardecl(self, require_semicolon: bool = True) -> ast.Stmt:
        line = self.peek().line
        qual = "varying"
        if self.at("keyword", "uniform") or self.at("keyword", "varying"):
            qual = self.next().text
        vtype = self.expect("keyword").text
        if vtype not in ("int", "float", "bool", "double"):
            raise ParseError(f"bad variable type {vtype!r}", line)
        decls: list[ast.Stmt] = []
        while True:
            name = self.expect("ident").text
            init = None
            if self.accept("op", "="):
                init = self.parse_expr()
            decls.append(
                ast.VarDecl(qualifier=qual, type=vtype, name=name, init=init, line=line)
            )
            if not self.accept("op", ","):
                break
        if require_semicolon:
            self.expect("op", ";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(statements=decls, line=line)

    def parse_assign_or_expr(self) -> ast.Stmt:
        line = self.peek().line
        expr = self.parse_expr()
        tok = self.peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            if not isinstance(expr, (ast.NameRef, ast.IndexExpr)):
                raise ParseError("left side of assignment is not assignable", tok.line)
            self.next()
            value = self.parse_expr()
            return ast.Assign(target=expr, op=tok.text, value=value, line=line)
        if tok.kind == "op" and tok.text in ("++", "--"):
            if not isinstance(expr, (ast.NameRef, ast.IndexExpr)):
                raise ParseError("operand of ++/-- is not assignable", tok.line)
            self.next()
            one = ast.IntLit(value=1, line=tok.line)
            op = "+=" if tok.text == "++" else "-="
            return ast.Assign(target=expr, op=op, value=one, line=line)
        return ast.ExprStmt(expr=expr, line=line)

    def parse_if(self) -> ast.IfStmt:
        line = self.expect("keyword", "if").line
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then_body = self.parse_statement()
        else_body = None
        if self.accept("keyword", "else"):
            else_body = self.parse_statement()
        return ast.IfStmt(cond=cond, then_body=then_body, else_body=else_body, line=line)

    def parse_while(self) -> ast.WhileStmt:
        line = self.expect("keyword", "while").line
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.WhileStmt(cond=cond, body=body, line=line)

    def parse_for(self) -> ast.ForStmt:
        line = self.expect("keyword", "for").line
        self.expect("op", "(")
        init: ast.Stmt | None = None
        if not self.accept("op", ";"):
            if self._at_decl_start():
                init = self.parse_vardecl(require_semicolon=False)
                self.expect("op", ";")
            else:
                init = self.parse_assign_or_expr()
                self.expect("op", ";")
        cond: ast.Expr | None = None
        if not self.at("op", ";"):
            cond = self.parse_expr()
        self.expect("op", ";")
        step: ast.Stmt | None = None
        if not self.at("op", ")"):
            step = self.parse_assign_or_expr()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.ForStmt(init=init, cond=cond, step=step, body=body, line=line)

    def parse_foreach(self) -> ast.ForeachStmt:
        line = self.expect("keyword", "foreach").line
        self.expect("op", "(")
        dims: list[ast.ForeachDim] = []
        while True:
            var = self.expect("ident").text
            self.expect("op", "=")
            start = self.parse_expr()
            self.expect("op", "...")
            end = self.parse_expr()
            dims.append(ast.ForeachDim(var=var, start=start, end=end))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        body = self.parse_statement()
        inner = dims[-1]
        return ast.ForeachStmt(
            var=inner.var, start=inner.start, end=inner.end, body=body,
            dims=dims, line=line,
        )

    # -- expressions (precedence climbing) ----------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.accept("op", "?"):
            on_true = self.parse_expr()
            self.expect("op", ":")
            on_false = self.parse_ternary()
            return ast.TernaryExpr(
                cond=cond, on_true=on_true, on_false=on_false, line=cond.line
            )
        return cond

    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        ops = self._PRECEDENCE[level]
        lhs = self.parse_binary(level + 1)
        while self.peek().kind == "op" and self.peek().text in ops:
            op = self.next().text
            rhs = self.parse_binary(level + 1)
            lhs = ast.BinaryExpr(op=op, lhs=lhs, rhs=rhs, line=lhs.line)
        return lhs

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!", "~", "+"):
            self.next()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return ast.UnaryExpr(op=tok.text, operand=operand, line=tok.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.at("op", "["):
                if not isinstance(expr, ast.NameRef):
                    raise ParseError("only named arrays can be indexed", self.peek().line)
                self.next()
                index = self.parse_expr()
                self.expect("op", "]")
                expr = ast.IndexExpr(base=expr, index=index, line=expr.line)
            else:
                break
        return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.next()
        if tok.kind == "int":
            return ast.IntLit(value=int(tok.text), line=tok.line)
        if tok.kind == "float":
            text = tok.text.rstrip("fF")
            return ast.FloatLit(value=float(text), line=tok.line)
        if tok.kind == "keyword" and tok.text in ("true", "false"):
            return ast.BoolLit(value=tok.text == "true", line=tok.line)
        if tok.kind == "keyword" and tok.text in ("int", "float", "bool"):
            # Function-style cast: float(x)
            self.expect("op", "(")
            value = self.parse_expr()
            self.expect("op", ")")
            return ast.CastExpr(target=tok.text, value=value, line=tok.line)
        if tok.kind == "ident":
            if self.at("op", "("):
                self.next()
                args: list[ast.Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", ")")
                return ast.CallExpr(name=tok.text, args=args, line=tok.line)
            return ast.NameRef(name=tok.text, line=tok.line)
        if tok.kind == "op" and tok.text == "(":
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)


def parse_source(source: str) -> ast.Program:
    return Parser(source).parse_program()
