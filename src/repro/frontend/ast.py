"""AST node definitions for MiniISPC.

Nodes are plain dataclasses.  Semantic analysis (:mod:`repro.frontend.sema`)
annotates expression nodes in place with ``ty`` (``"int" | "float" | "bool"``)
and ``vb`` (``"uniform" | "varying"``); the code generator relies on those
annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

UNIFORM = "uniform"
VARYING = "varying"


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)


# -- expressions ---------------------------------------------------------------


@dataclass
class Expr(Node):
    # Filled by sema:
    ty: str = field(default="", kw_only=True)
    vb: str = field(default="", kw_only=True)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class NameRef(Expr):
    name: str = ""


@dataclass
class IndexExpr(Expr):
    base: NameRef = None  # arrays are always named parameters
    index: Expr = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class CastExpr(Expr):
    target: str = ""  # 'int' | 'float' | 'bool'
    value: Expr = None


@dataclass
class UnaryExpr(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class BinaryExpr(Expr):
    op: str = ""
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class TernaryExpr(Expr):
    cond: Expr = None
    on_true: Expr = None
    on_false: Expr = None


# -- statements ----------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    qualifier: str = ""  # uniform | varying
    type: str = ""  # int | float | bool
    name: str = ""
    init: Expr | None = None


@dataclass
class Assign(Stmt):
    target: Expr = None  # NameRef or IndexExpr
    op: str = "="  # '=', '+=', '-=', '*=', '/=', '%='
    value: Expr = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class IfStmt(Stmt):
    cond: Expr = None
    then_body: Stmt = None
    else_body: Stmt | None = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class ForStmt(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: Stmt = None


@dataclass
class ForeachDim:
    """One `var = start ... end` dimension of a foreach statement."""

    var: str
    start: "Expr"
    end: "Expr"


@dataclass
class ForeachStmt(Stmt):
    """`foreach (j = a ... b, i = c ... d) body`.

    The innermost (last) dimension is vectorized across lanes; outer
    dimensions become uniform loops around it (ISPC's common lowering; the
    paper's footnote 4 notes its findings carry over to the multi-
    dimensional form).  `var`/`start`/`end` mirror the innermost dimension
    for single-dimension convenience.
    """

    var: str = ""
    start: Expr = None
    end: Expr = None
    body: Stmt = None
    dims: list["ForeachDim"] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# -- declarations ----------------------------------------------------------------


@dataclass
class Param(Node):
    qualifier: str = ""
    type: str = ""
    name: str = ""
    is_array: bool = False


@dataclass
class FuncDecl(Node):
    name: str = ""
    return_qualifier: str = ""
    return_type: str = "void"
    params: list[Param] = field(default_factory=list)
    body: Block = None
    export: bool = False


@dataclass
class Program(Node):
    functions: list[FuncDecl] = field(default_factory=list)
