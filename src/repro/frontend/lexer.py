"""Hand-written lexer for MiniISPC.

Supports ``//`` line comments and ``/* */`` block comments, decimal integer
and float literals (with optional exponent and ``f`` suffix, C-style), and
the operator set in :mod:`repro.frontend.tokens`.
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import KEYWORDS, OPERATORS, Token


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line, col = 1, 1
    i = 0
    n = len(source)

    def error(msg: str) -> LexError:
        return LexError(msg, line, col)

    while i < n:
        c = source[i]
        # Whitespace ---------------------------------------------------------
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        # Comments -----------------------------------------------------------
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # Numbers --------------------------------------------------------------
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            is_float = False
            while i < n and source[i].isdigit():
                i += 1
            if i < n and source[i] == ".":
                # Not the '...' range operator.
                if not source.startswith("...", i):
                    is_float = True
                    i += 1
                    while i < n and source[i].isdigit():
                        i += 1
            if i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j].isdigit():
                    is_float = True
                    i = j
                    while i < n and source[i].isdigit():
                        i += 1
            text = source[start:i]
            if i < n and source[i] in "fF":
                i += 1
                is_float = True
            tokens.append(Token("float" if is_float else "int", text, line, col))
            col += i - start
            continue
        # Identifiers / keywords --------------------------------------------------
        if c.isalpha() or c == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        # Operators -------------------------------------------------------------------
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise error(f"unexpected character {c!r}")

    tokens.append(Token("eof", "", line, col))
    return tokens
